//! Explorer for the paper's Observation 3.2 (Figures 2–4): the *interface*
//! of a part — all cyclic orders its half-embedded edges can take — is
//! exactly captured by the biconnected decomposition: per-block orders
//! fixed up to flips, free permutation around cut vertices.
//!
//! Prints, for a bow-tie part, the brute-forced achievable orders (over all
//! rotation systems of the part) next to the interface summary a merge
//! coordinator would receive.
//!
//! ```text
//! cargo run --release --example interface_explorer
//! ```

use planar_embedding::interface::{achievable_boundary_orders, InterfaceSummary};
use planar_graph::{Graph, VertexId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The bow-tie: two triangles sharing cut vertex 2 (the paper's
    // Figure 4 shape), with half-embedded edges e0..e3 hanging off the four
    // outer vertices.
    let part = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])?;
    let half_edges = [
        (VertexId(0), 0),
        (VertexId(1), 1),
        (VertexId(3), 2),
        (VertexId(4), 3),
    ];
    println!("part: bow-tie (two triangles at cut vertex v2)");
    println!("half-embedded edges: e0@v0 e1@v1 e2@v3 e3@v4\n");

    println!("achievable boundary orders (brute force over ALL rotation systems,");
    println!("canonicalized up to rotation+reflection):");
    for order in achievable_boundary_orders(&part, &half_edges) {
        let pretty: Vec<String> = order.iter().map(|e| format!("e{e}")).collect();
        println!("  ({})", pretty.join(" "));
    }
    println!("  -> exactly two classes: bundles of each triangle stay");
    println!("     consecutive (Figure 3); flipping one block swaps e2,e3");
    println!("     (Figure 2); interleavings like (e0 e2 e1 e3) never occur.\n");

    let relevant: Vec<VertexId> = half_edges.iter().map(|&(v, _)| v).collect();
    let summary = InterfaceSummary::compute(&part, &relevant)?;
    println!(
        "interface summary shipped to a merge coordinator ({} words):",
        summary.words()
    );
    for b in &summary.blocks {
        let order: Vec<String> = b.attachment_order.iter().map(|v| v.to_string()).collect();
        println!(
            "  block {}: boundary order [{}] (fixed up to flip)",
            b.id,
            order.join(" ")
        );
    }
    let cuts: Vec<String> = summary.cut_vertices.iter().map(|v| v.to_string()).collect();
    println!(
        "  cut vertices: [{}] (blocks permute freely around them)",
        cuts.join(" ")
    );
    println!("\nObservation 3.2: the summary determines the interface exactly —");
    println!("this is what makes O(log n)-word merge messages possible.");
    Ok(())
}
