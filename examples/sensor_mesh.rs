//! A realistic scenario from the paper's motivation: a city operator runs
//! many street-level sensor meshes (near-planar by construction — radios
//! on street corners), and each mesh keeps changing — links fail, links
//! come back, sensors arrive and depart. The embedding-as-a-service layer
//! (`planar-service`) keeps a planar embedding *resident* for every mesh
//! and refreshes it incrementally on each change, instead of re-embedding
//! the whole fleet from scratch.
//!
//! We admit a fleet of damaged grids as tenants, drive each with a seeded
//! churn stream, and report the path split (incremental vs full fallback
//! vs rejected) plus the incremental dividend measured against the full
//! re-embed oracle, which is armed on every delta — so this example also
//! *proves* the bit-identity contract on everything it prints.
//!
//! ```text
//! cargo run --release --example sensor_mesh
//! ```

use planar_graph::traversal::bfs;
use planar_graph::{Graph, VertexId};
use planar_service::{ChurnGen, OracleMode, ServiceConfig, ServiceState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A `side x side` street mesh with ~`failure_pct`% of links failed
/// (never disconnecting the mesh).
fn damaged_mesh(side: usize, failure_pct: u32, seed: u64) -> Graph {
    let full = planar_lib::gen::grid(side, side);
    let mut rng = StdRng::seed_from_u64(seed);
    let tree = bfs(&full, VertexId(0));
    let mut g = Graph::new(full.vertex_count());
    for e in full.edges() {
        let is_tree_edge = tree.parent[e.lo().index()] == Some(e.hi())
            || tree.parent[e.hi().index()] == Some(e.lo());
        if is_tree_edge || rng.gen_range(0..100u32) >= failure_pct {
            g.add_edge(e.lo(), e.hi()).expect("copying grid edges");
        }
    }
    g
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const FLEET: usize = 24;
    const DELTAS: usize = 6;

    // Oracle armed: every applied delta is diffed against a full re-embed
    // of the same mutated mesh (rotation, certificates, verdict).
    let mut svc = ServiceState::new(ServiceConfig {
        oracle: OracleMode::Always,
        ..ServiceConfig::default()
    });

    println!("admitting {FLEET} damaged street meshes as service tenants...");
    let mut tenants = Vec::new();
    for i in 0..FLEET {
        let side = 6 + i % 3 * 2; // 6x6, 8x8, 10x10 meshes
        let mesh = damaged_mesh(side, 20, 0xC0FFEE + i as u64);
        let id = svc.create_tenant(mesh)?;
        tenants.push(id);
    }

    println!("churning each tenant with {DELTAS} seeded link/node events...\n");
    for (i, &id) in tenants.iter().enumerate() {
        let mut churn = ChurnGen::new(0xBEE5 + i as u64);
        for _ in 0..DELTAS {
            let delta = churn.next_delta(svc.tenant(id).unwrap().graph());
            svc.apply(id, delta)?;
        }
    }

    println!("tenant  n    deltas  incremental  fallback  rejected  p50 incr(us)  p50 full(us)");
    println!("--------------------------------------------------------------------------------");
    let mut applied = 0usize;
    let mut incremental = 0usize;
    for (id, tenant) in svc.tenants() {
        let stats = tenant.stats();
        applied += stats.applied;
        incremental += stats.incremental;
        let mut incr_us: Vec<u128> = tenant
            .records()
            .iter()
            .filter(|r| r.oracle_nanos.is_some())
            .map(|r| r.service_nanos / 1000)
            .collect();
        let mut full_us: Vec<u128> = tenant
            .records()
            .iter()
            .filter_map(|r| r.oracle_nanos)
            .map(|ns| ns / 1000)
            .collect();
        incr_us.sort_unstable();
        full_us.sort_unstable();
        let mid = |v: &[u128]| v.get(v.len() / 2).copied().unwrap_or(0);
        println!(
            "{:<6}  {:<3}  {:<6}  {:<11}  {:<8}  {:<8}  {:<12}  {:<12}",
            id.to_string().trim_start_matches("tenant#"),
            tenant.graph().vertex_count(),
            tenant.records().len(),
            stats.incremental,
            stats.full_fallbacks,
            stats.rejected_nonplanar,
            mid(&incr_us),
            mid(&full_us),
        );
        assert!(tenant.rotation().is_planar_embedding());
        assert!(tenant.certification().is_some_and(|c| c.accepted()));
    }

    println!(
        "\nfleet: {applied} deltas applied ({incremental} incrementally), \
         {} oracle divergences",
        svc.divergences()
    );
    assert_eq!(
        svc.divergences(),
        0,
        "every incremental re-embedding matched its full re-embed oracle"
    );
    println!("every incremental result was bit-identical to a from-scratch re-embed.");
    Ok(())
}
