//! A realistic scenario from the paper's motivation: a city-scale sensor
//! mesh (near-planar by construction — radios on street corners) needs a
//! planar embedding as the first step of downstream network optimization
//! (the paper's part II uses it for MST and min-cut).
//!
//! We build a damaged grid — a street mesh with a percentage of failed
//! links — and compare the distributed embedder against the trivial
//! gather-everything baseline as the mesh grows.
//!
//! ```text
//! cargo run --release --example sensor_mesh
//! ```

use congest_sim::SimConfig;
use planar_embedding::{embed_baseline, embed_distributed, EmbedderConfig};
use planar_graph::traversal::{bfs, diameter_exact};
use planar_graph::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A `side x side` street mesh with ~`failure_pct`% of links failed
/// (never disconnecting the mesh).
fn damaged_mesh(side: usize, failure_pct: u32, seed: u64) -> Graph {
    let full = planar_lib::gen::grid(side, side);
    let mut rng = StdRng::seed_from_u64(seed);
    let tree = bfs(&full, VertexId(0));
    let mut g = Graph::new(full.vertex_count());
    for e in full.edges() {
        let is_tree_edge = tree.parent[e.lo().index()] == Some(e.hi())
            || tree.parent[e.hi().index()] == Some(e.lo());
        if is_tree_edge || rng.gen_range(0..100u32) >= failure_pct {
            g.add_edge(e.lo(), e.hi()).expect("copying grid edges");
        }
    }
    g
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("side  n     D    ours(rounds)  baseline(rounds)  speedup");
    println!("----------------------------------------------------------");
    let cfg = EmbedderConfig {
        check_invariants: false,
        ..Default::default()
    };
    for side in [8usize, 16, 24, 32] {
        let mesh = damaged_mesh(side, 20, 0xC0FFEE);
        let d = diameter_exact(&mesh).expect("mesh is connected");
        let ours = embed_distributed(&mesh, &cfg)?;
        assert!(ours.rotation.is_planar_embedding());
        let base = embed_baseline(&mesh, &SimConfig::default())?;
        println!(
            "{:<4}  {:<4}  {:<3}  {:<12}  {:<16}  {:.2}x",
            side,
            mesh.vertex_count(),
            d,
            ours.metrics.rounds,
            base.metrics.rounds,
            base.metrics.rounds as f64 / ours.metrics.rounds as f64,
        );
    }
    println!("\nThe distributed algorithm scales with D*log n; the baseline with n.");
    println!("On low-diameter meshes the gap widens without bound:");
    for n in [512usize, 2048] {
        // A hub-and-ring topology (outerplanar, diameter 2).
        let mesh = planar_lib::gen::fan(n);
        let ours = embed_distributed(&mesh, &cfg)?;
        let base = embed_baseline(&mesh, &SimConfig::default())?;
        println!(
            "  fan n={n}: ours = {} rounds, baseline = {} rounds ({:.1}x)",
            ours.metrics.rounds,
            base.metrics.rounds,
            base.metrics.rounds as f64 / ours.metrics.rounds as f64
        );
    }
    Ok(())
}
