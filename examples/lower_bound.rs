//! The `Omega(D)` lower-bound instance (footnote 1 of the paper): take
//! `K_4` and replace each edge with a path of `L` edges. The four degree-3
//! vertices are pairwise `L` hops apart, yet in any planar embedding their
//! clockwise orders must be globally consistent — so `Omega(D)` rounds are
//! unavoidable even with unbounded messages.
//!
//! This example sweeps `L`, confirms the algorithm's output is globally
//! consistent (genus 0), and shows its round count growing linearly in `D`
//! while staying `O(D log n)`.
//!
//! ```text
//! cargo run --release --example lower_bound
//! ```

use planar_embedding::{embed_distributed, EmbedderConfig};
use planar_graph::traversal::diameter_exact;
use planar_lib::gen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = EmbedderConfig {
        check_invariants: false,
        ..Default::default()
    };
    println!("L    n     D     rounds  rounds/D  planar-consistent");
    println!("-----------------------------------------------------");
    for l in [4usize, 8, 16, 32, 64] {
        let g = gen::k4_subdivided(l);
        let d = diameter_exact(&g).expect("connected") as usize;
        let out = embed_distributed(&g, &cfg)?;
        let ok = out.rotation.is_planar_embedding();
        println!(
            "{:<4} {:<5} {:<5} {:<7} {:<8.1}  {}",
            l,
            g.vertex_count(),
            d,
            out.metrics.rounds,
            out.metrics.rounds as f64 / d as f64,
            ok
        );
        assert!(out.metrics.rounds >= d, "no algorithm can beat D here");

        // The consistency the lower bound talks about: each original K4
        // vertex has degree 3; its rotation fixes an orientation. Tally the
        // four branch vertices' cyclic orders.
        if l == 8 {
            println!("\n  rotations of the four degree-3 branch vertices (L = 8):");
            for v in g.vertices().take(4) {
                let order: Vec<String> = out
                    .rotation
                    .order_at(v)
                    .iter()
                    .map(|w| w.to_string())
                    .collect();
                println!("    {v}: [{}]", order.join(", "));
            }
            println!("  (consistent: the embedding has Euler genus 0)\n");
        }
    }
    println!("\nrounds grow linearly in D (the trivial lower bound), with the");
    println!("O(min(log n, D)) factor visible in the rounds/D column.");
    Ok(())
}
