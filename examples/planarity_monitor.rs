//! The embedding service as a distributed planarity *monitor*: a topology
//! operator submits link additions as typed deltas, and the service
//! answers — with the pre-flight gate where the answer is free, with an
//! incremental re-embedding where it is not — before any change reaches
//! the production network. Planarity-breaking deltas are rejected and the
//! resident embedding is left untouched, so the monitor can keep serving
//! routes (e.g. the planar-only O(D)-round MST of the paper's part II)
//! throughout.
//!
//! The gate is one-sided (Levi–Medina–Ron style): `DefinitelyPlanar` and
//! `DefinitelyNonPlanar` are certain, `Unknown` defers to the embedder.
//!
//! ```text
//! cargo run --release --example planarity_monitor
//! ```

use planar_graph::VertexId;
use planar_service::{Delta, DeltaOutcome, GateVerdict, OracleMode, ServiceConfig, ServiceState};

fn verdict(v: GateVerdict) -> &'static str {
    match v {
        GateVerdict::DefinitelyPlanar => "gate: definitely planar",
        GateVerdict::DefinitelyNonPlanar => "gate: definitely NON-planar",
        GateVerdict::Unknown => "gate: unknown, embedder decides",
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Oracle armed: every decision below is cross-checked against a full
    // re-embed, so the printout doubles as a correctness demonstration.
    let mut svc = ServiceState::new(ServiceConfig {
        oracle: OracleMode::Always,
        ..ServiceConfig::default()
    });

    // A healthy planar backbone becomes a resident tenant.
    let id = svc.create_tenant(planar_lib::gen::grid(5, 5))?;
    println!(
        "5x5 grid backbone admitted: planar, {} faces, certificates accepted\n",
        svc.tenant(id).unwrap().rotation().face_count()
    );

    // Operators submit cross-links one by one. The monitor accepts each
    // one that keeps the accepted topology planar and rejects the one
    // that would not — and a rejection costs the network nothing.
    let proposals = [
        (
            "short diagonal 0-6",
            Delta::InsertEdge(VertexId(0), VertexId(6)),
        ),
        (
            "cross-link 2-10",
            Delta::InsertEdge(VertexId(2), VertexId(10)),
        ),
        (
            "cross-link 2-14",
            Delta::InsertEdge(VertexId(2), VertexId(14)),
        ),
        (
            "cross-link 2-22",
            Delta::InsertEdge(VertexId(2), VertexId(22)),
        ),
        (
            "cross-link 10-14",
            Delta::InsertEdge(VertexId(10), VertexId(14)),
        ),
        (
            "cross-link 10-22",
            Delta::InsertEdge(VertexId(10), VertexId(22)),
        ),
        (
            "cross-link 14-22",
            Delta::InsertEdge(VertexId(14), VertexId(22)),
        ),
    ];
    for (name, delta) in proposals {
        let outcome = svc.apply(id, delta)?;
        match outcome {
            DeltaOutcome::Applied { report, gate } => println!(
                "{name}: ACCEPTED ({}; {} path)",
                verdict(gate),
                if report.is_incremental() {
                    "incremental"
                } else {
                    "full re-embed"
                }
            ),
            DeltaOutcome::RejectedNonPlanar { gate } => println!(
                "{name}: REJECTED — would destroy planarity ({})",
                verdict(gate)
            ),
            DeltaOutcome::RejectedInvalid { error } => {
                println!("{name}: INVALID — {error}")
            }
        }
    }

    // The rejected delta never touched the resident embedding: the tenant
    // still serves a planar rotation for the accepted topology.
    let tenant = svc.tenant(id).unwrap();
    println!(
        "\nresident topology after monitoring: n = {}, m = {}, planar = {}, certified = {}",
        tenant.graph().vertex_count(),
        tenant.graph().edge_count(),
        tenant.rotation().is_planar_embedding(),
        tenant.certification().is_some_and(|c| c.accepted()),
    );

    // Density-violating proposals are rejected by the gate alone — no
    // re-embedding runs at all. Admit a maximal planar tenant and try.
    let maximal = planar_lib::gen::random_maximal_planar(12, 3);
    let dense = svc.create_tenant(maximal.clone())?;
    let (u, v) = {
        let mut pick = None;
        'outer: for a in maximal.vertices() {
            for b in maximal.vertices() {
                if a < b && !maximal.has_edge(a, b) {
                    pick = Some((a, b));
                    break 'outer;
                }
            }
        }
        pick.expect("a 12-vertex maximal planar graph is not complete")
    };
    match svc.apply(dense, Delta::InsertEdge(u, v))? {
        DeltaOutcome::RejectedNonPlanar { gate } => println!(
            "\nmaximal planar tenant + any edge: REJECTED by the density bound ({}) — \
             zero embedding work spent",
            verdict(gate)
        ),
        other => panic!("density-violating insert must be gate-rejected, got {other:?}"),
    }
    assert_eq!(
        svc.tenant(dense).unwrap().stats().gate_short_circuits,
        1,
        "the gate, not the embedder, rejected the dense proposal"
    );

    assert_eq!(svc.divergences(), 0);
    println!("\nevery verdict above was cross-checked bit-identical against a full re-embed.");
    Ok(())
}
