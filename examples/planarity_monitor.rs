//! The embedding algorithm as a distributed planarity *test*: when a merge
//! discovers a part whose half-embedded edges cannot share a face, the
//! network is provably non-planar (contrapositive of the safety property's
//! guarantee, Section 3).
//!
//! A topology monitor can use this to detect when link additions have
//! destroyed planarity — e.g. before relying on planar-only optimizations
//! such as the O(D)-round MST of the paper's part II.
//!
//! ```text
//! cargo run --release --example planarity_monitor
//! ```

use planar_embedding::{embed_distributed, EmbedError, EmbedderConfig};
use planar_graph::{Graph, VertexId};

fn check(name: &str, g: &Graph) {
    match embed_distributed(g, &EmbedderConfig::default()) {
        Ok(out) => println!(
            "{name}: PLANAR — embedding computed in {} rounds, {} faces",
            out.metrics.rounds,
            out.rotation.face_count()
        ),
        Err(EmbedError::NonPlanar) => println!("{name}: NON-PLANAR — rejected"),
        Err(e) => println!("{name}: error — {e}"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A healthy planar backbone.
    let mut backbone = planar_lib::gen::grid(5, 5);
    check("5x5 grid backbone", &backbone);

    // Operators add long-range shortcuts one by one; most keep planarity...
    backbone.add_edge(VertexId(0), VertexId(6))?; // a diagonal in one cell
    check("backbone + short diagonal", &backbone);

    // ...but careless cross-links can destroy it.
    let mut sabotaged = backbone.clone();
    sabotaged.add_edge(VertexId(2), VertexId(10))?;
    sabotaged.add_edge(VertexId(2), VertexId(14))?;
    sabotaged.add_edge(VertexId(2), VertexId(22))?;
    sabotaged.add_edge(VertexId(10), VertexId(14))?;
    sabotaged.add_edge(VertexId(10), VertexId(22))?;
    sabotaged.add_edge(VertexId(14), VertexId(22))?;
    check("backbone + K4 of cross-links", &sabotaged);

    // Classical obstructions, detected without the density shortcut.
    let k33 = Graph::from_edges(
        6,
        [
            (0, 3),
            (0, 4),
            (0, 5),
            (1, 3),
            (1, 4),
            (1, 5),
            (2, 3),
            (2, 4),
            (2, 5),
        ],
    )?;
    check("K3,3", &k33);

    let k5 = planar_lib::gen::complete(5);
    check("K5", &k5);

    // A subdivided K5 dodges every density bound; only the real algorithm
    // catches it.
    let mut k5sub = Graph::new(5 + 10);
    let mut mid = 5u32;
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            k5sub.add_edge(VertexId(u), VertexId(mid))?;
            k5sub.add_edge(VertexId(mid), VertexId(v))?;
            mid += 1;
        }
    }
    check("subdivided K5 (sparse!)", &k5sub);
    Ok(())
}
