//! Quickstart: run the distributed planar embedding algorithm on a small
//! grid network and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use planar_embedding::{embed_distributed, EmbedderConfig};
use planar_lib::gen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4x5 grid network: 20 nodes, diameter 7.
    let network = gen::grid(4, 5);
    println!(
        "network: {} nodes, {} edges",
        network.vertex_count(),
        network.edge_count()
    );

    // Run the algorithm of Theorem 1.1. Every message of every protocol is
    // simulated and charged against the CONGEST per-edge budget.
    let outcome = embed_distributed(&network, &EmbedderConfig::default())?;

    println!("\ncost: {}", outcome.metrics);
    println!(
        "recursion depth: {} (Lemma 4.3 bound: log_1.5 n = {:.1})",
        outcome.stats.depth,
        (network.vertex_count() as f64).ln() / 1.5f64.ln()
    );
    println!(
        "largest part ratio: {:.3} (Lemma 4.2 bound: 2/3)",
        outcome.stats.max_child_ratio()
    );

    // The output: each vertex knows the clockwise cyclic order of its
    // incident edges. Verify it is a genus-0 (planar) rotation system.
    assert!(outcome.rotation.is_planar_embedding());
    println!("\nembedding verified planar (Euler genus 0). Rotations:");
    for v in network.vertices().take(6) {
        let order: Vec<String> = outcome
            .rotation
            .order_at(v)
            .iter()
            .map(|w| w.to_string())
            .collect();
        println!("  {v}: [{}]", order.join(", "));
    }
    println!("  ... ({} more vertices)", network.vertex_count() - 6);

    // Euler's formula on the whole embedding: V - E + F = 2.
    let f = outcome.rotation.face_count();
    println!(
        "\nEuler check: V - E + F = {} - {} + {} = {}",
        network.vertex_count(),
        network.edge_count(),
        f,
        network.vertex_count() as i64 - network.edge_count() as i64 + f as i64
    );
    Ok(())
}
