//! End-to-end integration tests spanning all crates: distributed embedder
//! vs trivial baseline vs centralized DMP on every workload family, output
//! validation, error surfaces and the paper's structural bounds.

use congest_sim::SimConfig;
use planar_embedding::{embed_baseline, embed_distributed, EmbedError, EmbedderConfig};
use planar_graph::traversal::diameter_exact;
use planar_graph::{Graph, VertexId};
use planar_lib::gen;

fn families(n: usize, seed: u64) -> Vec<(&'static str, Graph)> {
    let side = (n as f64).sqrt().round() as usize;
    vec![
        ("path", gen::path(n)),
        ("cycle", gen::cycle(n)),
        ("star", gen::star(n)),
        ("tree", gen::random_tree(n, seed)),
        ("grid", gen::grid(side, side)),
        ("tri-grid", gen::triangulated_grid(side, side)),
        ("fan", gen::fan(n)),
        ("wheel", gen::wheel(n)),
        ("theta", gen::theta(4, n / 4)),
        ("outerplanar", gen::random_outerplanar(n, seed)),
        ("maximal-planar", gen::random_maximal_planar(n, seed)),
        ("random-planar", gen::random_planar(n, 2 * n, seed)),
        ("k4-subdivided", gen::k4_subdivided(n / 6 + 1)),
        ("wheel-chain", gen::wheel_chain(3, n / 3)),
    ]
}

#[test]
fn distributed_embedding_is_planar_on_all_families() {
    for (name, g) in families(36, 1) {
        let out = embed_distributed(&g, &EmbedderConfig::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(out.rotation.is_planar_embedding(), "{name}: genus != 0");
        assert_eq!(
            out.rotation.to_graph(),
            g,
            "{name}: rotation covers wrong graph"
        );
    }
}

#[test]
fn baseline_and_distributed_agree_on_planarity() {
    for (name, g) in families(30, 2) {
        let a = embed_distributed(&g, &EmbedderConfig::default());
        let b = embed_baseline(&g, &SimConfig::default());
        assert!(a.is_ok(), "{name} distributed failed");
        assert!(b.is_ok(), "{name} baseline failed");
        assert!(b.unwrap().rotation.is_planar_embedding(), "{name}");
    }
}

#[test]
fn structural_bounds_hold_on_all_families() {
    for (name, g) in families(48, 3) {
        let out = embed_distributed(&g, &EmbedderConfig::default()).unwrap();
        // Lemma 4.2.
        assert!(
            out.stats.max_child_ratio() <= 2.0 / 3.0 + 1e-9,
            "{name}: child ratio {}",
            out.stats.max_child_ratio()
        );
        // Lemma 4.3: recursion depth <= min(log_1.5 n, bfs-depth) + slack.
        let n = g.vertex_count() as f64;
        let bound = (n.ln() / 1.5f64.ln()).min(out.stats.bfs_depth.max(1) as f64);
        assert!(
            out.stats.depth as f64 <= bound + 3.0,
            "{name}: depth {} > bound {bound}",
            out.stats.depth
        );
        // CONGEST discipline (T6).
        assert!(out.metrics.max_words_edge_round <= SimConfig::default().budget_words);
    }
}

#[test]
fn rounds_beat_baseline_on_low_diameter_networks() {
    // The paper's raison d'etre: on low-diameter planar networks the
    // distributed algorithm is much faster than gathering the topology.
    let g = gen::fan(2048);
    let ours = embed_distributed(
        &g,
        &EmbedderConfig {
            check_invariants: false,
            ..Default::default()
        },
    )
    .unwrap();
    let base = embed_baseline(&g, &SimConfig::default()).unwrap();
    assert!(
        ours.metrics.rounds * 10 < base.metrics.rounds,
        "ours {} vs baseline {}",
        ours.metrics.rounds,
        base.metrics.rounds
    );
}

#[test]
fn rounds_scale_with_diameter_not_n() {
    // Fix the family, grow n: rounds / (D log n) stays bounded by a
    // constant (Theorem 1.1).
    let cfg = EmbedderConfig {
        check_invariants: false,
        ..Default::default()
    };
    let mut ratios = Vec::new();
    for side in [8usize, 16, 24] {
        let g = gen::grid(side, side);
        let d = diameter_exact(&g).unwrap() as f64;
        let out = embed_distributed(&g, &cfg).unwrap();
        ratios.push(out.metrics.rounds as f64 / (d * (g.vertex_count() as f64).log2()));
    }
    let (min, max) = (
        ratios.iter().cloned().fold(f64::INFINITY, f64::min),
        ratios.iter().cloned().fold(0.0, f64::max),
    );
    assert!(
        max / min < 2.0,
        "normalized rounds should be near-constant: {ratios:?}"
    );
}

#[test]
fn nonplanar_inputs_rejected_by_both() {
    let k5 = gen::complete(5);
    let k33 = Graph::from_edges(
        6,
        [
            (0, 3),
            (0, 4),
            (0, 5),
            (1, 3),
            (1, 4),
            (1, 5),
            (2, 3),
            (2, 4),
            (2, 5),
        ],
    )
    .unwrap();
    // A subdivided K3,3 defeats density checks.
    let mut k33sub = Graph::new(6 + 9);
    let mut mid = 6u32;
    for u in 0..3u32 {
        for v in 3..6u32 {
            k33sub.add_edge(VertexId(u), VertexId(mid)).unwrap();
            k33sub.add_edge(VertexId(mid), VertexId(v)).unwrap();
            mid += 1;
        }
    }
    for g in [k5, k33, k33sub] {
        assert!(matches!(
            embed_distributed(&g, &EmbedderConfig::default()),
            Err(EmbedError::NonPlanar)
        ));
        assert!(matches!(
            embed_baseline(&g, &SimConfig::default()),
            Err(EmbedError::NonPlanar)
        ));
    }
}

#[test]
fn error_surface_for_bad_networks() {
    let disconnected = Graph::from_edges(5, [(0, 1), (2, 3)]).unwrap();
    assert!(matches!(
        embed_distributed(&disconnected, &EmbedderConfig::default()),
        Err(EmbedError::Disconnected)
    ));
    assert!(matches!(
        embed_distributed(&Graph::new(0), &EmbedderConfig::default()),
        Err(EmbedError::EmptyGraph)
    ));
}

#[test]
fn deterministic_across_runs() {
    let g = gen::random_planar(40, 70, 9);
    let a = embed_distributed(&g, &EmbedderConfig::default()).unwrap();
    let b = embed_distributed(&g, &EmbedderConfig::default()).unwrap();
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.rotation, b.rotation);
}

#[test]
fn facade_crate_reexports_work() {
    // The root package re-exports all crates under stable names.
    let g = planar_networks::planar::gen::cycle(8);
    let out = planar_networks::embedding::embed_distributed(&g, &Default::default()).unwrap();
    assert!(out.rotation.is_planar_embedding());
}
