//! Randomized-workload tests of the core invariants.
//!
//! Formerly proptest strategies; now deterministic seeded sweeps (48 cases
//! per property, mirroring the old `ProptestConfig::with_cases(48)`), since
//! the offline build environment cannot vendor proptest. Each case derives
//! its workload from a `StdRng` stream so the sweep stays reproducible and
//! the failure message names the offending case index.

use congest_sim::routing::{schedule, Transfer};
use congest_sim::SimConfig;
use planar_embedding::interface::achievable_boundary_orders;
use planar_embedding::{embed_distributed, EmbedderConfig};
use planar_graph::biconnected::BiconnectedDecomposition;
use planar_graph::cyclic::{canonical_rotation_reflect, cyclic_eq_reflect};
use planar_graph::{Graph, VertexId};
use planar_lib::gen;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 48;

/// Case `i`: a random connected planar graph (family selector, size, seed),
/// matching the old `planar_graph_strategy`.
fn planar_graph_case(rng: &mut StdRng) -> Graph {
    let family = rng.gen_range(0u32..6);
    let n = rng.gen_range(4usize..40);
    let seed = rng.gen_range(0u64..=u64::MAX);
    match family {
        0 => gen::random_tree(n, seed),
        1 => gen::random_outerplanar(n.max(3), seed),
        2 => gen::random_maximal_planar(n.max(3), seed),
        3 => gen::random_planar(n.max(4), 2 * n, seed),
        4 => gen::grid(2 + n % 5, 2 + n / 5),
        _ => gen::k4_subdivided(n / 4 + 1),
    }
}

/// Theorem 1.1 output contract: the distributed embedding is always a
/// genus-0 rotation system of the exact input graph.
#[test]
fn distributed_embedding_always_planar() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for case in 0..CASES {
        let g = planar_graph_case(&mut rng);
        let cfg = EmbedderConfig {
            check_invariants: false,
            ..Default::default()
        };
        let out = embed_distributed(&g, &cfg).expect("planar inputs embed");
        assert!(out.rotation.is_planar_embedding(), "case {case}");
        assert_eq!(out.rotation.to_graph(), g, "case {case}");
    }
}

/// Lemma 4.2 + CONGEST discipline on random inputs.
#[test]
fn structural_bounds() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for case in 0..CASES {
        let g = planar_graph_case(&mut rng);
        let out = embed_distributed(&g, &EmbedderConfig::default()).expect("planar inputs embed");
        assert!(
            out.stats.max_child_ratio() <= 2.0 / 3.0 + 1e-9,
            "case {case}"
        );
        assert!(
            out.metrics.max_words_edge_round <= SimConfig::default().budget_words,
            "case {case}"
        );
    }
}

/// The centralized DMP embedder agrees with the Euler-genus verifier.
#[test]
fn dmp_embeddings_verify() {
    let mut rng = StdRng::seed_from_u64(0xD321);
    for case in 0..CASES {
        let g = planar_graph_case(&mut rng);
        let rs = planar_lib::embed(&g).expect("planar inputs embed");
        assert!(rs.is_planar_embedding(), "case {case}");
        assert_eq!(
            rs.face_count() as i64,
            2 * planar_graph::traversal::connected_components(&g).len() as i64
                - g.vertex_count() as i64
                + g.edge_count() as i64,
            "case {case}"
        );
    }
}

/// Pinned embeddings really keep all pins on one face: adding an apex
/// adjacent to the pins keeps the graph planar.
#[test]
fn pinned_embedding_pins_cofacial() {
    let mut rng = StdRng::seed_from_u64(0x1997);
    for case in 0..CASES {
        let n = rng.gen_range(4usize..24);
        let seed = rng.gen_range(0u64..=u64::MAX);
        let k = rng.gen_range(2usize..6);
        let g = gen::random_outerplanar(n, seed);
        let pins: Vec<VertexId> = (0..k.min(n))
            .map(|i| VertexId((i * n / k.min(n)) as u32))
            .collect();
        let pe = planar_lib::embed_pinned(&g, &pins).expect("outerplanar parts pin");
        assert!(pe.rotation.is_planar_embedding(), "case {case}");
        let mut sorted = pe.pin_order.clone();
        sorted.sort();
        sorted.dedup();
        let mut expected = pins.clone();
        expected.sort();
        expected.dedup();
        assert_eq!(sorted, expected, "case {case}");
    }
}

/// Observation 3.2 consequence (Figure 2): over all achievable boundary
/// orders of a random outerplanar part, the suborder of half-edges attached
/// to any fixed biconnected block at non-cut vertices is the same up to
/// rotation+reflection.
#[test]
fn block_suborders_are_rigid() {
    let mut rng = StdRng::seed_from_u64(0x0B52);
    for case in 0..CASES {
        let n = rng.gen_range(4usize..8);
        let seed = rng.gen_range(0u64..=u64::MAX);
        let g = gen::sparse_outerplanar(n, 2, seed);
        let half: Vec<(VertexId, u32)> = g.vertices().map(|v| (v, v.0)).collect();
        let orders = achievable_boundary_orders(&g, &half);
        if orders.is_empty() {
            continue; // prop_assume!: skip unembeddable pin sets
        }
        let bc = BiconnectedDecomposition::compute(&g);
        for b in 0..bc.block_count() {
            let block_labels: Vec<u32> = bc
                .block_vertices(b)
                .into_iter()
                .filter(|&v| !bc.is_cut_vertex(v))
                .map(|v| v.0)
                .collect();
            if block_labels.len() < 3 {
                continue;
            }
            let mut reference: Option<Vec<u32>> = None;
            for order in &orders {
                let sub: Vec<u32> = order
                    .iter()
                    .copied()
                    .filter(|l| block_labels.contains(l))
                    .collect();
                match &reference {
                    None => reference = Some(sub),
                    Some(r) => assert!(
                        cyclic_eq_reflect(r, &sub),
                        "case {case}: block suborder changed across embeddings"
                    ),
                }
            }
        }
    }
}

/// Canonicalization is idempotent and reflection-invariant.
#[test]
fn canonical_rotation_properties() {
    let mut rng = StdRng::seed_from_u64(0xCA70);
    for case in 0..CASES {
        let len = rng.gen_range(1usize..12);
        let mut v: Vec<u32> = (0..len).map(|_| rng.gen_range(0u32..50)).collect();
        let c = canonical_rotation_reflect(&v);
        assert_eq!(canonical_rotation_reflect(&c), c, "case {case}");
        v.reverse();
        assert_eq!(canonical_rotation_reflect(&v), c, "case {case}");
    }
}

/// The routing scheduler is work-conserving: rounds are bounded by path
/// length + total contention, and at least max(path lengths).
#[test]
fn routing_bounds() {
    let mut rng = StdRng::seed_from_u64(0x2077);
    for case in 0..CASES {
        let n = rng.gen_range(3usize..30);
        let k = rng.gen_range(1usize..12);
        let words: Vec<usize> = (0..k).map(|_| rng.gen_range(1usize..30)).collect();
        let g = gen::path(n);
        let transfers: Vec<Transfer> = words
            .iter()
            .map(|&w| Transfer::new((0..n as u32).map(VertexId).collect(), w))
            .collect();
        let budget = 8;
        let m = schedule(&g, &transfers, budget).unwrap();
        let hops = n - 1;
        let total_packets: usize = words.iter().map(|w| w.div_ceil(budget)).sum();
        assert!(m.rounds >= hops, "case {case}");
        assert!(m.rounds <= hops + total_packets, "case {case}");
        assert!(m.max_words_edge_round <= budget, "case {case}");
    }
}

/// Biconnected decomposition partitions the edge set.
#[test]
fn blocks_partition_edges() {
    let mut rng = StdRng::seed_from_u64(0xB10C);
    for case in 0..CASES {
        let g = planar_graph_case(&mut rng);
        let bc = BiconnectedDecomposition::compute(&g);
        let total: usize = (0..bc.block_count()).map(|b| bc.block_edges(b).len()).sum();
        assert_eq!(total, g.edge_count(), "case {case}");
        for e in g.edges() {
            assert!(bc.block_of_edge(e).is_some(), "case {case}");
        }
    }
}
