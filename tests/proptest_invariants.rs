//! Property-based tests of the core invariants, over randomized planar
//! workloads.

use proptest::prelude::*;

use congest_sim::routing::{schedule, Transfer};
use congest_sim::SimConfig;
use planar_embedding::interface::achievable_boundary_orders;
use planar_embedding::{embed_distributed, EmbedderConfig};
use planar_graph::biconnected::BiconnectedDecomposition;
use planar_graph::cyclic::{canonical_rotation_reflect, cyclic_eq_reflect};
use planar_graph::{Graph, VertexId};
use planar_lib::gen;

/// Strategy: a random connected planar graph described by (family selector,
/// size, seed).
fn planar_graph_strategy() -> impl Strategy<Value = Graph> {
    (0u8..6, 4usize..40, any::<u64>()).prop_map(|(family, n, seed)| match family {
        0 => gen::random_tree(n, seed),
        1 => gen::random_outerplanar(n.max(3), seed),
        2 => gen::random_maximal_planar(n.max(3), seed),
        3 => gen::random_planar(n.max(4), 2 * n, seed),
        4 => gen::grid(2 + n % 5, 2 + n / 5),
        _ => gen::k4_subdivided(n / 4 + 1),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 1.1 output contract: the distributed embedding is always a
    /// genus-0 rotation system of the exact input graph.
    #[test]
    fn distributed_embedding_always_planar(g in planar_graph_strategy()) {
        let cfg = EmbedderConfig { check_invariants: false, ..Default::default() };
        let out = embed_distributed(&g, &cfg).expect("planar inputs embed");
        prop_assert!(out.rotation.is_planar_embedding());
        prop_assert_eq!(out.rotation.to_graph(), g);
    }

    /// Lemma 4.2 + CONGEST discipline on random inputs.
    #[test]
    fn structural_bounds(g in planar_graph_strategy()) {
        let out = embed_distributed(&g, &EmbedderConfig::default())
            .expect("planar inputs embed");
        prop_assert!(out.stats.max_child_ratio() <= 2.0 / 3.0 + 1e-9);
        prop_assert!(out.metrics.max_words_edge_round
            <= SimConfig::default().budget_words);
    }

    /// The centralized DMP embedder agrees with the Euler-genus verifier.
    #[test]
    fn dmp_embeddings_verify(g in planar_graph_strategy()) {
        let rs = planar_lib::embed(&g).expect("planar inputs embed");
        prop_assert!(rs.is_planar_embedding());
        prop_assert_eq!(rs.face_count() as i64,
            2 * planar_graph::traversal::connected_components(&g).len() as i64
                - g.vertex_count() as i64 + g.edge_count() as i64);
    }

    /// Pinned embeddings really keep all pins on one face: adding an apex
    /// adjacent to the pins keeps the graph planar.
    #[test]
    fn pinned_embedding_pins_cofacial(
        n in 4usize..24,
        seed in any::<u64>(),
        k in 2usize..6,
    ) {
        let g = gen::random_outerplanar(n, seed);
        let pins: Vec<VertexId> =
            (0..k.min(n)).map(|i| VertexId((i * n / k.min(n)) as u32)).collect();
        let pe = planar_lib::embed_pinned(&g, &pins).expect("outerplanar parts pin");
        prop_assert!(pe.rotation.is_planar_embedding());
        let mut sorted = pe.pin_order.clone();
        sorted.sort();
        sorted.dedup();
        let mut expected = pins.clone();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(sorted, expected);
    }

    /// Observation 3.2 consequence (Figure 2): over all achievable boundary
    /// orders of a random outerplanar part, the suborder of half-edges
    /// attached to any fixed biconnected block at non-cut vertices is the
    /// same up to rotation+reflection.
    #[test]
    fn block_suborders_are_rigid(n in 4usize..8, seed in any::<u64>()) {
        let g = gen::sparse_outerplanar(n, 2, seed);
        let half: Vec<(VertexId, u32)> =
            g.vertices().map(|v| (v, v.0)).collect();
        let orders = achievable_boundary_orders(&g, &half);
        prop_assume!(!orders.is_empty());
        let bc = BiconnectedDecomposition::compute(&g);
        for b in 0..bc.block_count() {
            let block_labels: Vec<u32> = bc
                .block_vertices(b)
                .into_iter()
                .filter(|&v| !bc.is_cut_vertex(v))
                .map(|v| v.0)
                .collect();
            if block_labels.len() < 3 {
                continue;
            }
            let mut reference: Option<Vec<u32>> = None;
            for order in &orders {
                let sub: Vec<u32> = order
                    .iter()
                    .copied()
                    .filter(|l| block_labels.contains(l))
                    .collect();
                match &reference {
                    None => reference = Some(sub),
                    Some(r) => prop_assert!(
                        cyclic_eq_reflect(r, &sub),
                        "block suborder changed across embeddings"
                    ),
                }
            }
        }
    }

    /// Canonicalization is idempotent and reflection-invariant.
    #[test]
    fn canonical_rotation_properties(mut v in prop::collection::vec(0u32..50, 1..12)) {
        let c = canonical_rotation_reflect(&v);
        prop_assert_eq!(canonical_rotation_reflect(&c).clone(), c.clone());
        v.reverse();
        prop_assert_eq!(canonical_rotation_reflect(&v), c);
    }

    /// The routing scheduler is work-conserving: rounds are bounded by
    /// path length + total contention, and at least max(path lengths).
    #[test]
    fn routing_bounds(
        n in 3usize..30,
        words in prop::collection::vec(1usize..30, 1..12),
    ) {
        let g = gen::path(n);
        let transfers: Vec<Transfer> = words
            .iter()
            .map(|&w| {
                Transfer::new((0..n as u32).map(VertexId).collect(), w)
            })
            .collect();
        let budget = 8;
        let m = schedule(&g, &transfers, budget).unwrap();
        let hops = n - 1;
        let total_packets: usize =
            words.iter().map(|w| w.div_ceil(budget)).sum();
        prop_assert!(m.rounds >= hops);
        prop_assert!(m.rounds <= hops + total_packets);
        prop_assert!(m.max_words_edge_round <= budget);
    }

    /// Biconnected decomposition partitions the edge set.
    #[test]
    fn blocks_partition_edges(g in planar_graph_strategy()) {
        let bc = BiconnectedDecomposition::compute(&g);
        let total: usize = (0..bc.block_count()).map(|b| bc.block_edges(b).len()).sum();
        prop_assert_eq!(total, g.edge_count());
        for e in g.edges() {
            prop_assert!(bc.block_of_edge(e).is_some());
        }
    }
}
