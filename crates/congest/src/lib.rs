//! # congest-sim
//!
//! A synchronous **CONGEST-model** network simulator: the distributed
//! substrate of the planar-networks workspace (the model of Peleg's book
//! \[Pel00\] the paper works in).
//!
//! Components:
//!
//! * [`run`] / [`NodeProgram`] — the message-passing kernel: synchronous
//!   rounds, per-directed-edge bandwidth budgets (in `O(log n)`-bit words,
//!   see [`message`]), quiescence detection and hard budget *enforcement* —
//!   protocols that try to move too much over an edge abort the run. The
//!   per-round loop is allocation-free in steady state, built on the
//!   graph's CSR arc index (see [`network`] for the architecture);
//!   [`reference::run_reference`] keeps the original kernel as the
//!   executable spec the fast kernel is conformance-tested against.
//! * [`run_many`] / [`Instance`] — the batched entry point: several
//!   vertex-disjoint subproblem instances run in *one* shared round
//!   lattice (one mailbox arena, one round loop), with per-instance
//!   metrics bit-identical to individual runs and kernel-enforced
//!   instance isolation ([`SimError::CrossInstanceSend`]). [`SimSession`]
//!   reuses the arc index and kernel buffers across the many phases an
//!   embedding pipeline runs over one graph.
//! * [`protocols`] — the standard protocol library: leader election + BFS
//!   tree, child discovery, convergecast, downcast, and the centroid walk of
//!   the paper's partitioning step.
//! * [`routing`] — the charged store-and-forward scheduler used to account
//!   for the merge phases' summary movements packet by packet.
//! * [`faults`] — deterministic, seeded fault injection ([`FaultPlan`] on
//!   [`SimConfig`]): per-link drop/duplicate/delay, per-node crash-stop,
//!   link-down windows; both kernels apply the identical schedule, and
//!   [`protocols::reliable`](protocols) provides an opt-in ack/retransmit
//!   wrapper on top.
//! * [`Metrics`] — rounds / messages / words / per-edge congestion (plus
//!   fault counters), with sequential and parallel composition.
//! * [`pool`] — the shared scoped-thread worker pool behind the kernel's
//!   multi-core round execution ([`SimConfig::threads`] /
//!   `PLANAR_THREADS`): static sharding and a deterministic replay keep
//!   outcomes, metrics and trace streams bit-identical at every thread
//!   count (see [`network`]'s module docs).
//! * [`trace`] — opt-in round-level tracing ([`TraceSink`] on
//!   [`SimConfig`], zero-cost when off) with typed per-message events, a
//!   JSONL writer, and a [`TraceAuditor`] that independently recomputes a
//!   run's [`Metrics`] from its event stream and diffs them against what
//!   the kernel reported.
//!
//! # Example
//!
//! ```
//! use congest_sim::protocols::LeaderBfs;
//! use congest_sim::{run, SimConfig};
//! use planar_graph::{Graph, VertexId};
//!
//! # fn main() -> Result<(), congest_sim::SimError> {
//! let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
//! let programs: Vec<LeaderBfs> = g
//!     .vertices()
//!     .map(|v| LeaderBfs::new(v, g.neighbors(v).to_vec()))
//!     .collect();
//! let out = run(&g, programs, &SimConfig::default())?;
//! assert!(out.programs.iter().all(|p| p.leader() == VertexId(3)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod message;
mod metrics;
pub mod network;
pub mod pool;
pub mod protocols;
pub mod reference;
pub mod routing;
pub mod session;
pub mod trace;

pub use faults::{
    mix_seed, splitmix64, CrashPolicy, Fate, FaultPlan, FaultPlanError, LinkDown, LinkFaults,
};
pub use message::{word_bits, BitReader, BitSink, Words};
pub use metrics::{Metrics, Phase, PhaseRounds};
pub use network::{
    parallel_plan, run, run_many, Instance, InstanceOutcome, MultiOutcome, NodeCtx, NodeProgram,
    ParallelPlan, SimConfig, SimError, SimOutcome, Simulator, DEFAULT_BUDGET_WORDS,
};
pub use session::{KernelCache, SimSession};
pub use trace::{
    AuditReport, AuditSink, JsonlSink, MemorySink, RoundProfile, TraceAuditor, TraceEvent,
    TraceHandle, TraceSink,
};
