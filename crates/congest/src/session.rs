//! Session-scoped reuse of kernel state across the phases of one graph.
//!
//! The embedding pipeline simulates the *same* graph many times: setup
//! protocols, every level of the partition recursion, merges,
//! certification. Before this module, each phase call paid for a fresh
//! [`ArcIndex`](planar_graph::ArcIndex) build (CSR arc tables plus the
//! reverse-arc table) and — unless the caller threaded a
//! [`Simulator`] around by hand — a cold mailbox arena. A [`SimSession`]
//! hoists both to per-graph scope: the arc index is built once in
//! [`SimSession::new`], and one [`Simulator`] per *message type* is cached
//! and reused, so repeated phases run over warm buffers.
//!
//! Reuse is outcome-invariant by the simulator's documented contract:
//! every run fully reinitializes logical state and only buffer *capacity*
//! survives, so a session-run phase is bit-identical to a one-shot
//! [`run`](crate::run) call. The session serves the fast kernel only — the
//! reference kernel stays a deliberately simple free function.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::fmt;

use planar_graph::{ArcIndex, Graph};

use crate::message::Words;
use crate::network::{
    Instance, MultiOutcome, NodeProgram, SimConfig, SimError, SimOutcome, Simulator,
};

/// A type-erased cached [`Simulator`]: downcasting for the typed entry
/// points plus the uniform queries the cache can answer without knowing
/// the message type (memory accounting for the bench harness's bytes/node
/// column and the service's per-tenant footprint).
trait CachedSim: Any {
    fn as_any_mut(&mut self) -> &mut dyn Any;
    fn memory_bytes(&self) -> usize;
}

impl<M: Words + Clone + 'static> CachedSim for Simulator<M> {
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn memory_bytes(&self) -> usize {
        Simulator::memory_bytes(self)
    }
}

/// The graph-independent half of a session: one warm [`Simulator`] per
/// message type. Simulators carry no logical state between runs — every
/// run `resize()`s its buffers to the graph at hand and reinitializes
/// them — so a cache can outlive the graph it was warmed on and be
/// rebound to a *different* graph (larger, smaller, different topology)
/// without affecting outcomes. Long-lived callers (the embedding service
/// re-running one tenant across edge deltas) keep a `KernelCache` per
/// tenant and thread it through successive [`SimSession`]s via
/// [`SimSession::with_cache`]/[`SimSession::into_cache`].
#[derive(Default)]
pub struct KernelCache {
    sims: HashMap<TypeId, Box<dyn CachedSim>>,
}

impl KernelCache {
    /// An empty cache; simulators are created on first use.
    pub fn new() -> Self {
        KernelCache::default()
    }

    /// Number of message types with a warm simulator.
    pub fn kernels(&self) -> usize {
        self.sims.len()
    }

    /// Heap bytes currently reserved across every cached simulator —
    /// the resident cost of keeping this cache warm (buffer capacities,
    /// see [`Simulator::memory_bytes`]).
    pub fn memory_bytes(&self) -> usize {
        self.sims.values().map(|s| s.memory_bytes()).sum()
    }
}

impl fmt::Debug for KernelCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelCache")
            .field("kernels", &self.sims.len())
            .finish()
    }
}

/// Per-graph simulation session: one arc index, one cached [`Simulator`]
/// per message type (programs of different phases exchange different
/// message enums; each gets its own typed mailbox arena).
pub struct SimSession<'g> {
    g: &'g Graph,
    idx: ArcIndex,
    cache: KernelCache,
}

impl<'g> SimSession<'g> {
    /// Opens a session over `g`, building its arc index once.
    pub fn new(g: &'g Graph) -> Self {
        SimSession::with_cache(g, KernelCache::new())
    }

    /// Opens a session over `g` reusing the warm simulators of `cache`
    /// (typically recovered from a previous session via
    /// [`into_cache`](SimSession::into_cache)). Outcome-invariant versus
    /// [`new`](SimSession::new): only buffer capacity survives in a cache.
    pub fn with_cache(g: &'g Graph, cache: KernelCache) -> Self {
        SimSession {
            g,
            idx: g.arc_index(),
            cache,
        }
    }

    /// Closes the session, returning its kernel cache for reuse against a
    /// later (possibly different) graph.
    pub fn into_cache(self) -> KernelCache {
        self.cache
    }

    /// The session's graph.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// The session's prebuilt arc index.
    pub fn arc_index(&self) -> &ArcIndex {
        &self.idx
    }

    /// Heap bytes currently reserved by the session: the arc index plus
    /// every cached simulator's buffers.
    pub fn memory_bytes(&self) -> usize {
        self.idx.memory_bytes() + self.cache.memory_bytes()
    }

    /// Runs `programs` over the session graph (see [`Simulator::run`]),
    /// reusing the session's arc index and cached kernel.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] like [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Panics if `programs.len()` differs from the graph's vertex count.
    pub fn run<P>(&mut self, programs: Vec<P>, cfg: &SimConfig) -> Result<SimOutcome<P>, SimError>
    where
        P: NodeProgram + Send,
        P::Msg: Send + Sync + 'static,
    {
        let SimSession { g, idx, cache } = self;
        sim_for::<P::Msg>(&mut cache.sims).run_with_index(g, idx, programs, cfg)
    }

    /// Runs vertex-disjoint instances in one shared round lattice over the
    /// session graph (see [`Simulator::run_many`]), reusing the session's
    /// arc index and cached kernel.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] like [`Simulator::run_many`].
    ///
    /// # Panics
    ///
    /// Panics if instances overlap or name vertices outside the graph.
    pub fn run_many<P>(
        &mut self,
        instances: Vec<Instance<P>>,
        cfg: &SimConfig,
    ) -> Result<MultiOutcome<P>, SimError>
    where
        P: NodeProgram + Send,
        P::Msg: Send + Sync + 'static,
    {
        let SimSession { g, idx, cache } = self;
        sim_for::<P::Msg>(&mut cache.sims).run_many_with_index(g, idx, instances, cfg)
    }
}

impl fmt::Debug for SimSession<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimSession")
            .field("vertices", &self.g.vertex_count())
            .field("arcs", &self.idx.arc_count())
            .field("cached_kernels", &self.cache.sims.len())
            .finish()
    }
}

/// The session's cached simulator for message type `M`, created on first
/// use.
fn sim_for<M: Words + Clone + 'static>(
    sims: &mut HashMap<TypeId, Box<dyn CachedSim>>,
) -> &mut Simulator<M> {
    sims.entry(TypeId::of::<M>())
        .or_insert_with(|| Box::new(Simulator::<M>::new()))
        .as_any_mut()
        .downcast_mut::<Simulator<M>>()
        .expect("simulator cache is keyed by message type")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::run;
    use planar_graph::VertexId;

    /// Forward a token along a path; quiesces in n-1 rounds.
    struct Relay;
    impl NodeProgram for Relay {
        type Msg = u32;
        fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
            if ctx.id == VertexId(0) {
                vec![(VertexId(1), 7)]
            } else {
                Vec::new()
            }
        }
        fn on_round(&mut self, ctx: &NodeCtx<'_>, _: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
            let next = VertexId(ctx.id.0 + 1);
            if ctx.neighbors.contains(&next) {
                vec![(next, 7)]
            } else {
                Vec::new()
            }
        }
    }
    use crate::network::NodeCtx;

    #[test]
    fn session_runs_match_one_shot_runs() {
        let n = 8;
        let g = Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap();
        let cfg = SimConfig::default();
        let mut session = SimSession::new(&g);
        // Two session runs back to back: both must equal the one-shot run.
        for _ in 0..2 {
            let mk = (0..n).map(|_| Relay).collect::<Vec<_>>();
            let session_out = session.run(mk, &cfg).unwrap();
            let oneshot = run(&g, (0..n).map(|_| Relay).collect::<Vec<_>>(), &cfg).unwrap();
            assert_eq!(session_out.metrics, oneshot.metrics);
        }
        assert_eq!(session.cache.kernels(), 1);
    }

    /// A kernel cache recovered from one session can be rebound to a
    /// different (here larger, then smaller) graph without changing any
    /// outcome versus a cold one-shot run.
    #[test]
    fn cache_reuse_across_graphs_matches_one_shot() {
        let cfg = SimConfig::default();
        let mut cache = KernelCache::new();
        for n in [6usize, 12, 4] {
            let g = Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap();
            let mut session = SimSession::with_cache(&g, cache);
            let warm = session
                .run((0..n).map(|_| Relay).collect::<Vec<_>>(), &cfg)
                .unwrap();
            let cold = run(&g, (0..n).map(|_| Relay).collect::<Vec<_>>(), &cfg).unwrap();
            assert_eq!(warm.metrics, cold.metrics, "n = {n}");
            cache = session.into_cache();
        }
        assert_eq!(cache.kernels(), 1);
    }
}
