//! Round, message and congestion accounting.

use serde::{Deserialize, Serialize};

use crate::message::word_bits;

/// The algorithm phases of the embedding pipeline, shared by the driver's
/// round tally, the trace stream's [`Phase`](crate::TraceEvent::Phase)
/// markers, and the [`PhaseRounds`] bucket selection.
///
/// A single typed enum (instead of the stringly `&'static str` labels the
/// drivers used to pass around) makes "charge these rounds to an unknown
/// phase" unrepresentable: every variant has a [`PhaseRounds`] bucket by
/// construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Leader election, BFS tree, subtree sizes, broadcasts.
    Setup,
    /// The recursive centroid-path partitioning.
    Partition,
    /// Symmetry breaking on virtual inter-part graphs (charged inside
    /// merges via Remark 1's virtual-round conversion).
    Symmetry,
    /// The path-coordinated merge phase (excluding its symmetry sub-step).
    Merge,
    /// Distributed certification (the `planar-cert` local verifier).
    Cert,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 5] = [
        Phase::Setup,
        Phase::Partition,
        Phase::Symmetry,
        Phase::Merge,
        Phase::Cert,
    ];

    /// The stable lower-case label used in traces, JSON records and error
    /// messages.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Setup => "setup",
            Phase::Partition => "partition",
            Phase::Symmetry => "symmetry",
            Phase::Merge => "merge",
            Phase::Cert => "cert",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Attribution of [`Metrics::rounds`] to the embedding algorithm's phases.
///
/// The kernel itself leaves this zeroed — it has no notion of phases. The
/// drivers in `planar-embedding` stamp each phase's outcome (`setup`,
/// `partition`, `symmetry`, `merge`, `cert`) before composing metrics, so a
/// run's round count can be broken down by where the rounds went.
///
/// Composition mirrors [`Metrics`]: [`Metrics::add`] (sequential) adds the
/// breakdown fieldwise, so `sum() == rounds` is preserved;
/// [`Metrics::join_parallel`] takes fieldwise maxima, so after a parallel
/// join `sum()` is an upper bound on `rounds` (the per-phase maxima need
/// not be achieved by the same branch). The driver's *sequential* tally —
/// the `rounds_used` reported by degraded runs — composes purely by `add`
/// and therefore satisfies `sum() == rounds_used` exactly; driver tests pin
/// that invariant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseRounds {
    /// Rounds attributed to the setup phase (leader election, BFS tree,
    /// subtree sizes, broadcasts).
    pub setup: usize,
    /// Rounds attributed to the recursive partitioning phase.
    pub partition: usize,
    /// Rounds attributed to symmetry breaking (charged inside merges via
    /// Remark 1's virtual-round conversion).
    pub symmetry: usize,
    /// Rounds attributed to the merge phase, excluding its symmetry-breaking
    /// sub-step (reported separately above).
    pub merge: usize,
    /// Rounds attributed to distributed certification (the `planar-cert`
    /// local verifier).
    pub cert: usize,
}

impl PhaseRounds {
    /// Total attributed rounds across all phases. Saturating, like all
    /// metrics arithmetic: counters pin at `usize::MAX` rather than wrap.
    pub fn sum(&self) -> usize {
        self.setup
            .saturating_add(self.partition)
            .saturating_add(self.symmetry)
            .saturating_add(self.merge)
            .saturating_add(self.cert)
    }

    /// Fieldwise addition (sequential composition).
    pub fn add(&mut self, other: PhaseRounds) {
        self.setup = self.setup.saturating_add(other.setup);
        self.partition = self.partition.saturating_add(other.partition);
        self.symmetry = self.symmetry.saturating_add(other.symmetry);
        self.merge = self.merge.saturating_add(other.merge);
        self.cert = self.cert.saturating_add(other.cert);
    }

    /// Fieldwise maximum (parallel composition).
    pub fn join_parallel(&mut self, other: PhaseRounds) {
        self.setup = self.setup.max(other.setup);
        self.partition = self.partition.max(other.partition);
        self.symmetry = self.symmetry.max(other.symmetry);
        self.merge = self.merge.max(other.merge);
        self.cert = self.cert.max(other.cert);
    }

    /// The bucket a [`Phase`]'s rounds are charged to.
    #[must_use]
    pub fn bucket(&self, phase: Phase) -> usize {
        match phase {
            Phase::Setup => self.setup,
            Phase::Partition => self.partition,
            Phase::Symmetry => self.symmetry,
            Phase::Merge => self.merge,
            Phase::Cert => self.cert,
        }
    }

    /// Mutable access to a [`Phase`]'s bucket. Every phase has a bucket by
    /// construction — the drivers' old stringly-typed label matches needed
    /// an `unreachable!` arm here; the enum does not.
    pub fn bucket_mut(&mut self, phase: Phase) -> &mut usize {
        match phase {
            Phase::Setup => &mut self.setup,
            Phase::Partition => &mut self.partition,
            Phase::Symmetry => &mut self.symmetry,
            Phase::Merge => &mut self.merge,
            Phase::Cert => &mut self.cert,
        }
    }
}

/// Cumulative cost of a distributed execution (one phase or a whole
/// algorithm).
///
/// All experiments in EXPERIMENTS.md report numbers from this structure:
/// `rounds` is the headline `O(D · min{log n, D})` quantity, and
/// `max_words_edge_round` certifies that the CONGEST discipline (constant
/// words = `O(log n)` bits per edge per round) was respected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Synchronous rounds consumed.
    pub rounds: usize,
    /// Total messages delivered.
    pub messages: usize,
    /// Total words (one word = one `O(log n)`-bit field) delivered.
    pub words: usize,
    /// The largest number of words that crossed any single directed edge in
    /// any single round.
    pub max_words_edge_round: usize,
    /// Messages discarded by fault injection: channel drops, link-down
    /// windows, and copies addressed to (or arriving at) crashed nodes.
    pub dropped: usize,
    /// Extra copies created by duplication faults.
    pub duplicated: usize,
    /// Messages delivered later than their nominal round by delay faults.
    pub delayed: usize,
    /// Data retransmissions performed by the reliable-delivery wrapper
    /// (`protocols::reliable`); always 0 for bare kernel runs.
    pub retransmissions: usize,
    /// Distinct nodes that crash-stopped during the run. Composes by `max`:
    /// phases of one run share the same fault plan, so crashes are not
    /// additive across phases.
    pub crashed_nodes: usize,
    /// Attribution of `rounds` to algorithm phases; zeroed by the kernel,
    /// stamped by the drivers. See [`PhaseRounds`] for composition rules.
    pub phase_rounds: PhaseRounds,
}

impl Metrics {
    /// A zeroed metrics record.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Sequential composition: the phases ran one after the other.
    ///
    /// All counter sums saturate at `usize::MAX` — a giant sweep that
    /// accumulates metrics across millions of runs must pin at the ceiling,
    /// never silently wrap to a small number.
    pub fn add(&mut self, other: Metrics) {
        self.rounds = self.rounds.saturating_add(other.rounds);
        self.messages = self.messages.saturating_add(other.messages);
        self.words = self.words.saturating_add(other.words);
        self.max_words_edge_round = self.max_words_edge_round.max(other.max_words_edge_round);
        self.dropped = self.dropped.saturating_add(other.dropped);
        self.duplicated = self.duplicated.saturating_add(other.duplicated);
        self.delayed = self.delayed.saturating_add(other.delayed);
        self.retransmissions = self.retransmissions.saturating_add(other.retransmissions);
        self.crashed_nodes = self.crashed_nodes.max(other.crashed_nodes);
        self.phase_rounds.add(other.phase_rounds);
    }

    /// Parallel composition: the phases ran concurrently on disjoint parts
    /// of the network; the slower one determines the elapsed rounds.
    /// Saturating, like [`Metrics::add`].
    pub fn join_parallel(&mut self, other: Metrics) {
        self.rounds = self.rounds.max(other.rounds);
        self.messages = self.messages.saturating_add(other.messages);
        self.words = self.words.saturating_add(other.words);
        self.max_words_edge_round = self.max_words_edge_round.max(other.max_words_edge_round);
        self.dropped = self.dropped.saturating_add(other.dropped);
        self.duplicated = self.duplicated.saturating_add(other.duplicated);
        self.delayed = self.delayed.saturating_add(other.delayed);
        self.retransmissions = self.retransmissions.saturating_add(other.retransmissions);
        self.crashed_nodes = self.crashed_nodes.max(other.crashed_nodes);
        self.phase_rounds.join_parallel(other.phase_rounds);
    }

    /// Total bits delivered, for an `n`-node network (`words · ceil(log2 n)`),
    /// saturating like the counter sums.
    pub fn bits(&self, n: usize) -> usize {
        self.words.saturating_mul(word_bits(n))
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rounds, {} msgs, {} words, max {} words/edge/round",
            self.rounds, self.messages, self.words, self.max_words_edge_round
        )?;
        if self.dropped + self.duplicated + self.delayed + self.retransmissions + self.crashed_nodes
            > 0
        {
            write!(
                f,
                " [faults: {} dropped, {} duplicated, {} delayed, {} retransmitted, {} crashed]",
                self.dropped,
                self.duplicated,
                self.delayed,
                self.retransmissions,
                self.crashed_nodes
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_composition() {
        let mut a = Metrics {
            rounds: 5,
            messages: 10,
            words: 20,
            max_words_edge_round: 3,
            ..Metrics::default()
        };
        let b = Metrics {
            rounds: 7,
            messages: 1,
            words: 2,
            max_words_edge_round: 4,
            ..Metrics::default()
        };
        a.add(b);
        assert_eq!(a.rounds, 12);
        assert_eq!(a.messages, 11);
        assert_eq!(a.words, 22);
        assert_eq!(a.max_words_edge_round, 4);
    }

    #[test]
    fn parallel_composition() {
        let mut a = Metrics {
            rounds: 5,
            messages: 10,
            words: 20,
            max_words_edge_round: 3,
            ..Metrics::default()
        };
        let b = Metrics {
            rounds: 7,
            messages: 1,
            words: 2,
            max_words_edge_round: 1,
            ..Metrics::default()
        };
        a.join_parallel(b);
        assert_eq!(a.rounds, 7);
        assert_eq!(a.messages, 11);
    }

    #[test]
    fn fault_counter_composition() {
        let mut a = Metrics {
            dropped: 3,
            duplicated: 1,
            delayed: 2,
            retransmissions: 4,
            crashed_nodes: 2,
            ..Metrics::default()
        };
        let b = Metrics {
            dropped: 5,
            duplicated: 2,
            delayed: 1,
            retransmissions: 1,
            crashed_nodes: 1,
            ..Metrics::default()
        };
        a.add(b);
        assert_eq!(
            (a.dropped, a.duplicated, a.delayed, a.retransmissions),
            (8, 3, 3, 5)
        );
        // Crashes are shared across phases of a run, not additive.
        assert_eq!(a.crashed_nodes, 2);
        let mut c = a;
        c.join_parallel(b);
        assert_eq!(c.dropped, 13);
        assert_eq!(c.crashed_nodes, 2);
    }

    #[test]
    fn display_hides_fault_counters_when_clean() {
        let clean = Metrics {
            rounds: 1,
            ..Metrics::default()
        };
        assert!(!format!("{clean}").contains("faults"));
        let faulty = Metrics {
            rounds: 1,
            dropped: 2,
            ..Metrics::default()
        };
        assert!(format!("{faulty}").contains("faults"));
    }

    #[test]
    fn phase_rounds_compose_with_metrics() {
        let mut a = Metrics {
            rounds: 5,
            phase_rounds: PhaseRounds {
                setup: 5,
                ..PhaseRounds::default()
            },
            ..Metrics::default()
        };
        let b = Metrics {
            rounds: 7,
            phase_rounds: PhaseRounds {
                partition: 4,
                merge: 3,
                ..PhaseRounds::default()
            },
            ..Metrics::default()
        };
        a.add(b);
        // Sequential composition preserves sum() == rounds.
        assert_eq!(a.rounds, 12);
        assert_eq!(a.phase_rounds.sum(), 12);
        assert_eq!((a.phase_rounds.setup, a.phase_rounds.partition), (5, 4));

        // Parallel composition takes fieldwise maxima: sum() bounds rounds
        // from above but need not equal it.
        let mut c = a;
        c.join_parallel(b);
        assert_eq!(c.rounds, 12);
        assert_eq!(c.phase_rounds.partition, 4);
        assert_eq!(c.phase_rounds.sum(), 5 + 4 + 3);
    }

    #[test]
    fn phase_buckets_cover_every_variant() {
        let mut p = PhaseRounds::default();
        for (i, phase) in Phase::ALL.into_iter().enumerate() {
            *p.bucket_mut(phase) += i + 1;
        }
        assert_eq!(
            (p.setup, p.partition, p.symmetry, p.merge, p.cert),
            (1, 2, 3, 4, 5)
        );
        for (i, phase) in Phase::ALL.into_iter().enumerate() {
            assert_eq!(p.bucket(phase), i + 1);
        }
        assert_eq!(p.sum(), 15);
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["setup", "partition", "symmetry", "merge", "cert"]);
    }

    #[test]
    fn phase_rounds_sum_covers_all_fields() {
        let p = PhaseRounds {
            setup: 1,
            partition: 2,
            symmetry: 3,
            merge: 4,
            cert: 5,
        };
        assert_eq!(p.sum(), 15);
        let mut q = p;
        q.add(p);
        assert_eq!(q.sum(), 30);
        let mut r = PhaseRounds::default();
        r.join_parallel(p);
        assert_eq!(r, p);
    }

    #[test]
    fn counter_arithmetic_saturates_at_the_boundary() {
        // A sweep that has already pinned a counter must stay pinned, not
        // wrap: usize::MAX + anything == usize::MAX.
        let big = Metrics {
            rounds: usize::MAX,
            messages: usize::MAX - 1,
            words: usize::MAX,
            dropped: usize::MAX,
            retransmissions: 7,
            ..Metrics::default()
        };
        let mut a = big;
        a.add(Metrics {
            rounds: 2,
            messages: 5,
            words: 1,
            dropped: 1,
            retransmissions: usize::MAX,
            ..Metrics::default()
        });
        assert_eq!(a.rounds, usize::MAX);
        assert_eq!(a.messages, usize::MAX);
        assert_eq!(a.words, usize::MAX);
        assert_eq!(a.dropped, usize::MAX);
        assert_eq!(a.retransmissions, usize::MAX);

        let mut b = big;
        b.join_parallel(big);
        assert_eq!(b.messages, usize::MAX);
        assert_eq!(b.words, usize::MAX);

        let p = PhaseRounds {
            setup: usize::MAX,
            partition: 3,
            ..PhaseRounds::default()
        };
        let mut q = p;
        q.add(p);
        assert_eq!(q.setup, usize::MAX);
        assert_eq!(q.sum(), usize::MAX);

        // bits() multiplies by ceil(log2 n); must pin too.
        let m = Metrics {
            words: usize::MAX / 2,
            ..Metrics::default()
        };
        assert_eq!(m.bits(1024), usize::MAX);
    }

    #[test]
    fn bits_scale_with_log_n() {
        let m = Metrics {
            rounds: 1,
            messages: 1,
            words: 10,
            max_words_edge_round: 1,
            ..Metrics::default()
        };
        assert_eq!(m.bits(1024), 100);
    }
}
