//! Round, message and congestion accounting.

use serde::{Deserialize, Serialize};

use crate::message::word_bits;

/// Cumulative cost of a distributed execution (one phase or a whole
/// algorithm).
///
/// All experiments in EXPERIMENTS.md report numbers from this structure:
/// `rounds` is the headline `O(D · min{log n, D})` quantity, and
/// `max_words_edge_round` certifies that the CONGEST discipline (constant
/// words = `O(log n)` bits per edge per round) was respected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Synchronous rounds consumed.
    pub rounds: usize,
    /// Total messages delivered.
    pub messages: usize,
    /// Total words (one word = one `O(log n)`-bit field) delivered.
    pub words: usize,
    /// The largest number of words that crossed any single directed edge in
    /// any single round.
    pub max_words_edge_round: usize,
}

impl Metrics {
    /// A zeroed metrics record.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Sequential composition: the phases ran one after the other.
    pub fn add(&mut self, other: Metrics) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.words += other.words;
        self.max_words_edge_round = self.max_words_edge_round.max(other.max_words_edge_round);
    }

    /// Parallel composition: the phases ran concurrently on disjoint parts
    /// of the network; the slower one determines the elapsed rounds.
    pub fn join_parallel(&mut self, other: Metrics) {
        self.rounds = self.rounds.max(other.rounds);
        self.messages += other.messages;
        self.words += other.words;
        self.max_words_edge_round = self.max_words_edge_round.max(other.max_words_edge_round);
    }

    /// Total bits delivered, for an `n`-node network (`words · ceil(log2 n)`).
    pub fn bits(&self, n: usize) -> usize {
        self.words * word_bits(n)
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rounds, {} msgs, {} words, max {} words/edge/round",
            self.rounds, self.messages, self.words, self.max_words_edge_round
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_composition() {
        let mut a = Metrics {
            rounds: 5,
            messages: 10,
            words: 20,
            max_words_edge_round: 3,
        };
        let b = Metrics {
            rounds: 7,
            messages: 1,
            words: 2,
            max_words_edge_round: 4,
        };
        a.add(b);
        assert_eq!(a.rounds, 12);
        assert_eq!(a.messages, 11);
        assert_eq!(a.words, 22);
        assert_eq!(a.max_words_edge_round, 4);
    }

    #[test]
    fn parallel_composition() {
        let mut a = Metrics {
            rounds: 5,
            messages: 10,
            words: 20,
            max_words_edge_round: 3,
        };
        let b = Metrics {
            rounds: 7,
            messages: 1,
            words: 2,
            max_words_edge_round: 1,
        };
        a.join_parallel(b);
        assert_eq!(a.rounds, 7);
        assert_eq!(a.messages, 11);
    }

    #[test]
    fn bits_scale_with_log_n() {
        let m = Metrics {
            rounds: 1,
            messages: 1,
            words: 10,
            max_words_edge_round: 1,
        };
        assert_eq!(m.bits(1024), 100);
    }
}
