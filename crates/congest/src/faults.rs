//! Deterministic, seeded fault injection for the CONGEST kernels.
//!
//! A [`FaultPlan`] describes which message-level faults a simulation should
//! inject: per-link drop / duplicate / delay probabilities, per-node
//! crash-stops, and link-down windows. The plan lives on
//! [`SimConfig`](crate::SimConfig) and is applied by **both** kernels — the
//! allocation-free kernel in [`crate::network`] and the seed oracle in
//! [`crate::reference`] — through the same decision function, so the
//! determinism conformance suite keeps pinning them equal under faults.
//!
//! # Replayability contract
//!
//! Every per-message decision is a pure function of
//! `(plan.seed, from, to, send_round, k)`, where `k` is the index of the
//! message among everything the sender emitted over the directed link
//! `(from, to)` in `send_round`. There is **no shared RNG stream**: the two
//! kernels iterate senders in different orders (first-delivery vs. sorted),
//! and a sequential stream would make the schedule depend on that order.
//! Instead each decision seeds a fresh vendored SplitMix64 [`StdRng`]
//! (`shims/rand`) from a hash of those fields, so a fixed `(seed, plan)`
//! replays to an identical [`SimOutcome`](crate::SimOutcome) on either
//! kernel, sequentially or under the parallel bench harness.
//!
//! # Fault semantics (shared by both kernels)
//!
//! For a message sent over `(from, to)` in round `s` (nominal delivery
//! round `s + 1`):
//!
//! 1. if a [`LinkDown`] window covers the *nominal* delivery round `s + 1`,
//!    the message is dropped;
//! 2. else it is dropped with probability `drop`;
//! 3. else it is duplicated with probability `duplicate` (two identical
//!    copies, delivered back to back);
//! 4. else/additionally it is delayed with probability `delay` by a uniform
//!    `d ∈ [1, max_delay]` rounds, arriving in round `s + 1 + d` (both
//!    copies of a duplicate travel together).
//!
//! Crash-stop: a node with crash round `r` does nothing from round `r` on
//! (crash at round 0 suppresses even `init`), and any message copy whose
//! arrival round is `>= r` is discarded at the sender's queue. Sends *to* an
//! already-crashed neighbor are governed by [`CrashPolicy`].
//!
//! Delivery order at a node is normalized identically by both kernels: the
//! inbox is grouped by sender in sender-id order; within one sender, on-time
//! messages come first (in emission order, duplicate copies adjacent),
//! followed by delayed arrivals ordered by `(send_round, k)`.
//!
//! Budget enforcement under faults charges the words the protocol
//! *attempted* to send on each link per round (faults cannot launder
//! bandwidth), while [`Metrics`](crate::Metrics) congestion counters keep
//! reporting *delivered* traffic.

use std::error::Error;
use std::fmt;

use planar_graph::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The SplitMix64 finalizer: a full-avalanche bijection on `u64`.
///
/// The workspace's one audited seed-mixing primitive. Every sub-seed
/// derivation — the per-message fate hash below, the chaos sweep's
/// per-trial seeds (`planar-bench`), and the DST scenario engine's
/// dimension draws (`crates/dst`) — goes through this function, so the
/// collision analysis done for PR 4 (distinct coordinate tuples map to
/// distinct seeds) holds everywhere instead of in one copy per crate.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a sub-seed from a base seed and a coordinate tuple.
///
/// Each coordinate is independently finalized through [`splitmix64`]
/// before being folded in, so coordinates cannot carry into each other's
/// bit ranges — the collision mode the old shift-and-add packings had
/// (e.g. `(0, 256)` packing to the same value as `(1, 0)`).
pub fn mix_seed(base: u64, coords: &[u64]) -> u64 {
    let mut seed = base;
    for &coord in coords {
        seed = splitmix64(seed ^ splitmix64(coord));
    }
    seed
}

/// Per-link fault probabilities (applied independently per message).
#[derive(Clone, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability a message is silently dropped.
    pub drop: f64,
    /// Probability a surviving message is delivered twice.
    pub duplicate: f64,
    /// Probability a surviving message is delayed.
    pub delay: f64,
    /// Maximum delay in rounds; delays are uniform on `[1, max_delay]`.
    /// With `max_delay == 0` the `delay` probability is inert.
    pub max_delay: usize,
}

impl LinkFaults {
    /// No faults on this link.
    pub const NONE: LinkFaults = LinkFaults {
        drop: 0.0,
        duplicate: 0.0,
        delay: 0.0,
        max_delay: 0,
    };

    fn is_none(&self) -> bool {
        self.drop <= 0.0 && self.duplicate <= 0.0 && (self.delay <= 0.0 || self.max_delay == 0)
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::NONE
    }
}

/// A window of rounds during which a directed link delivers nothing.
///
/// The window is matched against the *nominal* delivery round
/// (`send round + 1`), before any delay draw, and is inclusive-exclusive:
/// `start <= round < end`. For a bidirectional outage add one window per
/// direction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkDown {
    /// Sender side of the dead link.
    pub from: VertexId,
    /// Receiver side of the dead link.
    pub to: VertexId,
    /// First delivery round the outage covers.
    pub start: usize,
    /// First delivery round after the outage.
    pub end: usize,
}

/// What a send addressed to an already-crashed neighbor does.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CrashPolicy {
    /// The message vanishes (counted in `Metrics::dropped`); the sender
    /// cannot tell a crashed neighbor from a lossy link. The default, and
    /// the honest distributed-systems semantics.
    #[default]
    DropSilently,
    /// Abort the run with [`SimError::DestinationCrashed`]
    /// (`crate::SimError`) — a debugging aid for protocols that are supposed
    /// to know which neighbors are alive.
    Error,
}

/// The resolved fate of one attempted message send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fate {
    /// The message never arrives.
    Dropped,
    /// The message arrives as `copies` identical copies, `delay` rounds
    /// after its nominal delivery round.
    Deliver {
        /// 1 normally, 2 when duplicated.
        copies: u8,
        /// 0 for on-time delivery.
        delay: usize,
    },
}

/// A complete, replayable fault schedule for one simulation run.
///
/// `FaultPlan::default()` is the empty plan: both kernels detect it
/// ([`FaultPlan::is_empty`]) and stay on the fault-free hot path — no
/// per-message RNG work, byte-identical outcomes and metrics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault decision; `(seed, plan)` fully determines the
    /// schedule.
    pub seed: u64,
    /// Fault probabilities applied to every directed link without an
    /// override.
    pub link: LinkFaults,
    /// Per-directed-link overrides of [`FaultPlan::link`] (last match
    /// wins).
    pub link_overrides: Vec<((VertexId, VertexId), LinkFaults)>,
    /// Crash-stop schedule: `(node, round)` — the node does nothing from
    /// that round on. Duplicate entries take the earliest round.
    pub crashes: Vec<(VertexId, usize)>,
    /// Scheduled link outages.
    pub link_down: Vec<LinkDown>,
    /// Behavior of sends addressed to already-crashed nodes.
    pub on_crashed_send: CrashPolicy,
    /// **Test-only canary hook for the DST harness** (`crates/dst`): when
    /// non-zero, the fast kernel resolves message fates through
    /// [`FaultPlan::fate_canary`] with `seed ^ canary_skew` while the
    /// reference kernel keeps the honest [`FaultPlan::fate`] — a
    /// deliberately broken fate function that makes the two kernels
    /// diverge under any non-empty link-fault schedule. The DST shadow
    /// oracles must catch that divergence and the failing-seed minimizer
    /// must shrink it; nothing else may ever set this. Zero (the default)
    /// makes `fate_canary` identical to `fate`, byte for byte.
    #[doc(hidden)]
    pub canary_skew: u64,
}

impl FaultPlan {
    /// True iff this plan injects nothing, i.e. the kernels may take the
    /// fault-free hot path.
    pub fn is_empty(&self) -> bool {
        self.link.is_none()
            && self.link_overrides.iter().all(|(_, f)| f.is_none())
            && self.crashes.is_empty()
            && self.link_down.is_empty()
    }

    /// A uniform plan: every link drops/duplicates/delays with the given
    /// probabilities (delays up to `max_delay` rounds).
    pub fn uniform(seed: u64, drop: f64, duplicate: f64, delay: f64, max_delay: usize) -> Self {
        FaultPlan {
            seed,
            link: LinkFaults {
                drop,
                duplicate,
                delay,
                max_delay,
            },
            ..FaultPlan::default()
        }
    }

    /// The round at which `v` crash-stops, or `usize::MAX` if it never
    /// does.
    pub fn crash_round(&self, v: VertexId) -> usize {
        self.crashes
            .iter()
            .filter(|(c, _)| *c == v)
            .map(|(_, r)| *r)
            .min()
            .unwrap_or(usize::MAX)
    }

    /// The distinct crash-scheduled vertices, sorted.
    pub fn crash_victims(&self) -> Vec<VertexId> {
        let mut v: Vec<VertexId> = self.crashes.iter().map(|(c, _)| *c).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// How many distinct crash-scheduled vertices have crash rounds
    /// `<= round`.
    ///
    /// Plan-level only: a plan is graph-agnostic and may name vertices a
    /// given graph does not have, so this can exceed the number of nodes
    /// that actually crash in a run. The kernels report
    /// [`Metrics::crashed_nodes`](crate::Metrics) from their own per-vertex
    /// crash tables (in-range victims only) — use that for run-level
    /// accounting.
    pub fn crashed_by(&self, round: usize) -> usize {
        let mut v: Vec<VertexId> = self
            .crashes
            .iter()
            .filter(|(_, r)| *r <= round)
            .map(|(c, _)| *c)
            .collect();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// The fault parameters governing the directed link `(from, to)`.
    fn link_faults(&self, from: VertexId, to: VertexId) -> &LinkFaults {
        self.link_overrides
            .iter()
            .rev()
            .find(|((f, t), _)| *f == from && *t == to)
            .map(|(_, lf)| lf)
            .unwrap_or(&self.link)
    }

    /// Resolves the fate of message `k` sent over `(from, to)` in
    /// `send_round`. Pure in `(self, from, to, send_round, k)` — see the
    /// module docs for the replayability contract.
    pub fn fate(&self, from: VertexId, to: VertexId, send_round: usize, k: u32) -> Fate {
        self.fate_with_seed(self.seed, from, to, send_round, k)
    }

    /// The fast kernel's fate entry point: identical to [`FaultPlan::fate`]
    /// unless the test-only [`FaultPlan::canary_skew`] canary is armed, in
    /// which case the decision seed is skewed so the fast kernel's fault
    /// schedule deliberately diverges from the reference kernel's. See the
    /// field docs — this exists solely so the DST harness can prove its
    /// shadow oracles and minimizer catch a real cross-kernel divergence.
    #[doc(hidden)]
    pub fn fate_canary(&self, from: VertexId, to: VertexId, send_round: usize, k: u32) -> Fate {
        self.fate_with_seed(self.seed ^ self.canary_skew, from, to, send_round, k)
    }

    fn fate_with_seed(
        &self,
        seed: u64,
        from: VertexId,
        to: VertexId,
        send_round: usize,
        k: u32,
    ) -> Fate {
        let due = send_round + 1;
        if self
            .link_down
            .iter()
            .any(|w| w.from == from && w.to == to && w.start <= due && due < w.end)
        {
            return Fate::Dropped;
        }
        let lf = self.link_faults(from, to);
        if lf.is_none() {
            return Fate::Deliver {
                copies: 1,
                delay: 0,
            };
        }
        let mut rng = StdRng::seed_from_u64(mix(seed, from, to, send_round, k));
        // Fixed draw order — drop, duplicate, delay, delay amount — so the
        // schedule is stable under changes to *which* faults a plan enables.
        if unit(&mut rng) < lf.drop {
            return Fate::Dropped;
        }
        let copies = if unit(&mut rng) < lf.duplicate { 2 } else { 1 };
        let delay = if lf.max_delay > 0 && unit(&mut rng) < lf.delay {
            rng.gen_range(1..=lf.max_delay)
        } else {
            0
        };
        Fate::Deliver { copies, delay }
    }
}

/// A structural defect in a [`FaultPlan`], reported by
/// [`FaultPlan::validate`].
///
/// The kernels themselves deliberately tolerate these shapes — out-of-range
/// crash victims are ignored (pinned by the PR 4 regression suite), and
/// probabilities are only ever compared against a `[0, 1)` draw — but a
/// *generated* plan carrying one of them almost certainly means the
/// generator is buggy, silently testing less than it claims. The DST
/// scenario engine and callers constructing plans programmatically validate
/// before running.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum FaultPlanError {
    /// A drop/duplicate/delay probability is not a finite value in
    /// `[0, 1]`.
    ProbabilityOutOfRange {
        /// Which probability field (`"drop"`, `"duplicate"`, `"delay"`).
        field: &'static str,
        /// `None` for the global [`FaultPlan::link`] faults, `Some` for a
        /// per-link override.
        link: Option<(VertexId, VertexId)>,
        /// The offending value.
        value: f64,
    },
    /// A [`LinkDown`] window with `start >= end` covers no rounds: the
    /// outage it describes would silently never happen.
    EmptyLinkDownWindow {
        /// Sender side of the window's link.
        from: VertexId,
        /// Receiver side of the window's link.
        to: VertexId,
        /// The window's (inclusive) start round.
        start: usize,
        /// The window's (exclusive) end round.
        end: usize,
    },
    /// A crash entry names a vertex the graph does not have; the kernels
    /// would silently ignore it.
    CrashVictimOutOfRange {
        /// The out-of-range vertex.
        victim: VertexId,
        /// Its scheduled crash round.
        round: usize,
        /// The vertex count the plan was validated against.
        n: usize,
    },
    /// A link-down window or link override names a vertex the graph does
    /// not have; it could never match a real link.
    LinkEndpointOutOfRange {
        /// The out-of-range vertex.
        vertex: VertexId,
        /// The vertex count the plan was validated against.
        n: usize,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::ProbabilityOutOfRange { field, link, value } => match link {
                Some((a, b)) => write!(
                    f,
                    "{field} probability {value} on link override ({a}, {b}) is not in [0, 1]"
                ),
                None => write!(f, "{field} probability {value} is not in [0, 1]"),
            },
            FaultPlanError::EmptyLinkDownWindow {
                from,
                to,
                start,
                end,
            } => write!(
                f,
                "link-down window ({from}, {to}) [{start}, {end}) covers no rounds"
            ),
            FaultPlanError::CrashVictimOutOfRange { victim, round, n } => write!(
                f,
                "crash victim {victim} (round {round}) is out of range for a {n}-vertex graph"
            ),
            FaultPlanError::LinkEndpointOutOfRange { vertex, n } => write!(
                f,
                "link endpoint {vertex} is out of range for a {n}-vertex graph"
            ),
        }
    }
}

impl Error for FaultPlanError {}

fn validate_link_faults(
    lf: &LinkFaults,
    link: Option<(VertexId, VertexId)>,
) -> Result<(), FaultPlanError> {
    for (field, value) in [
        ("drop", lf.drop),
        ("duplicate", lf.duplicate),
        ("delay", lf.delay),
    ] {
        if !value.is_finite() || !(0.0..=1.0).contains(&value) {
            return Err(FaultPlanError::ProbabilityOutOfRange { field, link, value });
        }
    }
    Ok(())
}

impl FaultPlan {
    /// Validates the plan against an `n`-vertex graph: all probabilities
    /// finite and in `[0, 1]`, no empty/inverted link-down windows, every
    /// crash victim and link endpoint in range.
    ///
    /// Validation is opt-in and changes no kernel behavior: the kernels
    /// keep silently ignoring out-of-range victims (the documented PR 4
    /// semantics) so graph-agnostic plans stay usable. Callers that
    /// *generate* plans — the DST scenario engine, programmatic sweeps —
    /// call this (via [`SimConfig::validate`](crate::SimConfig::validate))
    /// to fail fast on plans that would silently test nothing.
    ///
    /// # Errors
    ///
    /// The first [`FaultPlanError`] found, in field order.
    pub fn validate(&self, n: usize) -> Result<(), FaultPlanError> {
        validate_link_faults(&self.link, None)?;
        for ((from, to), lf) in &self.link_overrides {
            for &v in [from, to] {
                if v.index() >= n {
                    return Err(FaultPlanError::LinkEndpointOutOfRange { vertex: v, n });
                }
            }
            validate_link_faults(lf, Some((*from, *to)))?;
        }
        for w in &self.link_down {
            for v in [w.from, w.to] {
                if v.index() >= n {
                    return Err(FaultPlanError::LinkEndpointOutOfRange { vertex: v, n });
                }
            }
            if w.start >= w.end {
                return Err(FaultPlanError::EmptyLinkDownWindow {
                    from: w.from,
                    to: w.to,
                    start: w.start,
                    end: w.end,
                });
            }
        }
        for &(victim, round) in &self.crashes {
            if victim.index() >= n {
                return Err(FaultPlanError::CrashVictimOutOfRange { victim, round, n });
            }
        }
        Ok(())
    }
}

/// Uniform draw in `[0, 1)` with 53 random bits (the shim RNG has no float
/// support; this is the standard mantissa construction).
fn unit(rng: &mut StdRng) -> f64 {
    const BITS: u64 = 1 << 53;
    rng.gen_range(0..BITS) as f64 / BITS as f64
}

/// Hashes the fault-decision coordinates into a seed for the per-message
/// generator (SplitMix64-style finalization per field).
fn mix(seed: u64, from: VertexId, to: VertexId, send_round: usize, k: u32) -> u64 {
    let mut h = seed ^ 0x51ED_2701_89AB_CDEF;
    for x in [from.0 as u64, to.0 as u64, send_round as u64, k as u64] {
        h ^= x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_fault_free() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(
            plan.fate(VertexId(0), VertexId(1), 3, 0),
            Fate::Deliver {
                copies: 1,
                delay: 0
            }
        );
        assert_eq!(plan.crash_round(VertexId(0)), usize::MAX);
        assert_eq!(plan.crashed_by(usize::MAX), 0);
    }

    #[test]
    fn fate_is_pure_in_its_coordinates() {
        let plan = FaultPlan::uniform(42, 0.3, 0.2, 0.3, 4);
        for k in 0..50u32 {
            let a = plan.fate(VertexId(3), VertexId(7), 11, k);
            let b = plan.fate(VertexId(3), VertexId(7), 11, k);
            assert_eq!(a, b);
        }
        // Different coordinates decouple: flipping any field may change the
        // fate, and at these rates some coordinate pair must differ.
        let fates: Vec<Fate> = (0..100)
            .map(|k| plan.fate(VertexId(0), VertexId(1), 1, k))
            .collect();
        assert!(fates.contains(&Fate::Dropped));
        assert!(fates
            .iter()
            .any(|f| matches!(f, Fate::Deliver { delay, .. } if *delay > 0)));
        assert!(fates
            .iter()
            .any(|f| matches!(f, Fate::Deliver { copies: 2, .. })));
    }

    #[test]
    fn drop_one_means_always_dropped() {
        let plan = FaultPlan::uniform(7, 1.0, 0.0, 0.0, 0);
        for r in 0..20 {
            assert_eq!(plan.fate(VertexId(1), VertexId(2), r, 0), Fate::Dropped);
        }
    }

    #[test]
    fn delay_respects_max_delay() {
        let plan = FaultPlan::uniform(9, 0.0, 0.0, 1.0, 3);
        for k in 0..200u32 {
            match plan.fate(VertexId(0), VertexId(1), 5, k) {
                Fate::Deliver { copies: 1, delay } => assert!((1..=3).contains(&delay)),
                other => panic!("unexpected fate {other:?}"),
            }
        }
    }

    #[test]
    fn link_down_window_matches_nominal_delivery_round() {
        let mut plan = FaultPlan::default();
        plan.link_down.push(LinkDown {
            from: VertexId(0),
            to: VertexId(1),
            start: 3,
            end: 5,
        });
        assert!(!plan.is_empty());
        // Sent in round 2 => due round 3: inside the window.
        assert_eq!(plan.fate(VertexId(0), VertexId(1), 2, 0), Fate::Dropped);
        assert_eq!(plan.fate(VertexId(0), VertexId(1), 3, 0), Fate::Dropped);
        // Due round 5 is past the (exclusive) end; due round 2 is before it.
        assert_eq!(
            plan.fate(VertexId(0), VertexId(1), 4, 0),
            Fate::Deliver {
                copies: 1,
                delay: 0
            }
        );
        assert_eq!(
            plan.fate(VertexId(0), VertexId(1), 1, 0),
            Fate::Deliver {
                copies: 1,
                delay: 0
            }
        );
        // The reverse direction is unaffected.
        assert_eq!(
            plan.fate(VertexId(1), VertexId(0), 2, 0),
            Fate::Deliver {
                copies: 1,
                delay: 0
            }
        );
    }

    #[test]
    fn overrides_shadow_the_global_link_faults() {
        let mut plan = FaultPlan::uniform(1, 1.0, 0.0, 0.0, 0);
        plan.link_overrides
            .push(((VertexId(0), VertexId(1)), LinkFaults::NONE));
        assert_eq!(
            plan.fate(VertexId(0), VertexId(1), 0, 0),
            Fate::Deliver {
                copies: 1,
                delay: 0
            }
        );
        assert_eq!(plan.fate(VertexId(1), VertexId(0), 0, 0), Fate::Dropped);
    }

    #[test]
    fn crash_bookkeeping() {
        let mut plan = FaultPlan::default();
        plan.crashes.push((VertexId(4), 7));
        plan.crashes.push((VertexId(4), 3)); // earliest entry wins
        plan.crashes.push((VertexId(2), 10));
        assert!(!plan.is_empty());
        assert_eq!(plan.crash_round(VertexId(4)), 3);
        assert_eq!(plan.crash_round(VertexId(2)), 10);
        assert_eq!(plan.crash_victims(), vec![VertexId(2), VertexId(4)]);
        assert_eq!(plan.crashed_by(2), 0);
        assert_eq!(plan.crashed_by(3), 1);
        assert_eq!(plan.crashed_by(10), 2);
    }

    #[test]
    fn mix_seed_is_collision_resistant_and_order_sensitive() {
        // The shared mixer must keep the PR 4 guarantee the chaos sweep
        // relied on: distinct coordinate tuples map to distinct seeds, and
        // coordinate order matters (no commutative folding).
        let mut seen = std::collections::HashSet::new();
        for a in 0..40u64 {
            for b in 0..40u64 {
                assert!(seen.insert(mix_seed(7, &[a, b])), "collision at ({a}, {b})");
            }
        }
        assert_ne!(mix_seed(7, &[1, 2]), mix_seed(7, &[2, 1]));
        assert_ne!(mix_seed(7, &[0]), mix_seed(8, &[0]));
        // The old carry-prone packing's canonical collision must not exist.
        assert_ne!(mix_seed(0, &[0, 256]), mix_seed(0, &[1, 0]));
    }

    #[test]
    fn validate_accepts_sane_plans_and_defaults() {
        assert_eq!(FaultPlan::default().validate(0), Ok(()));
        let mut plan = FaultPlan::uniform(3, 0.1, 0.05, 0.1, 3);
        plan.crashes.push((VertexId(9), 4));
        plan.link_down.push(LinkDown {
            from: VertexId(0),
            to: VertexId(1),
            start: 2,
            end: 5,
        });
        plan.link_overrides
            .push(((VertexId(1), VertexId(0)), LinkFaults::NONE));
        assert_eq!(plan.validate(10), Ok(()));
    }

    #[test]
    fn validate_rejects_out_of_range_probabilities() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let plan = FaultPlan::uniform(1, bad, 0.0, 0.0, 0);
            assert!(matches!(
                plan.validate(4),
                Err(FaultPlanError::ProbabilityOutOfRange { field: "drop", .. })
            ));
        }
        let mut plan = FaultPlan::default();
        plan.link_overrides.push((
            (VertexId(0), VertexId(1)),
            LinkFaults {
                drop: 0.0,
                duplicate: 2.0,
                delay: 0.0,
                max_delay: 0,
            },
        ));
        assert!(matches!(
            plan.validate(4),
            Err(FaultPlanError::ProbabilityOutOfRange {
                field: "duplicate",
                link: Some(_),
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_empty_windows_and_out_of_range_victims() {
        let mut plan = FaultPlan::default();
        plan.link_down.push(LinkDown {
            from: VertexId(0),
            to: VertexId(1),
            start: 5,
            end: 5,
        });
        assert!(matches!(
            plan.validate(4),
            Err(FaultPlanError::EmptyLinkDownWindow {
                start: 5,
                end: 5,
                ..
            })
        ));

        let mut plan = FaultPlan::default();
        plan.crashes.push((VertexId(4), 0));
        assert!(matches!(
            plan.validate(4),
            Err(FaultPlanError::CrashVictimOutOfRange {
                victim: VertexId(4),
                n: 4,
                ..
            })
        ));
        assert_eq!(plan.validate(5), Ok(()));

        let mut plan = FaultPlan::default();
        plan.link_down.push(LinkDown {
            from: VertexId(7),
            to: VertexId(1),
            start: 0,
            end: 2,
        });
        assert!(matches!(
            plan.validate(4),
            Err(FaultPlanError::LinkEndpointOutOfRange {
                vertex: VertexId(7),
                n: 4
            })
        ));
    }

    #[test]
    fn canary_skew_zero_is_the_honest_fate_function() {
        let plan = FaultPlan::uniform(42, 0.3, 0.2, 0.3, 4);
        assert_eq!(plan.canary_skew, 0, "default plan must be canary-free");
        for k in 0..100u32 {
            assert_eq!(
                plan.fate(VertexId(3), VertexId(7), 11, k),
                plan.fate_canary(VertexId(3), VertexId(7), 11, k)
            );
        }
    }

    #[test]
    fn canary_skew_diverges_from_the_honest_fates() {
        let mut plan = FaultPlan::uniform(42, 0.3, 0.2, 0.3, 4);
        plan.canary_skew = 0xDEAD_BEEF;
        let diverged = (0..200u32)
            .filter(|&k| {
                plan.fate(VertexId(0), VertexId(1), 1, k)
                    != plan.fate_canary(VertexId(0), VertexId(1), 1, k)
            })
            .count();
        assert!(diverged > 0, "skewed canary must change some fates");
    }

    #[test]
    fn drop_rate_is_roughly_respected() {
        let plan = FaultPlan::uniform(123, 0.25, 0.0, 0.0, 0);
        let dropped = (0..4000u32)
            .filter(|&k| plan.fate(VertexId(5), VertexId(6), 1, k) == Fate::Dropped)
            .count();
        // 4000 Bernoulli(0.25) trials: expect ~1000, allow a wide margin.
        assert!((800..1200).contains(&dropped), "dropped = {dropped}");
    }
}
