//! The original (seed) simulation kernel, kept verbatim as an executable
//! specification.
//!
//! [`run_reference`] is the `HashMap`-based kernel the workspace shipped
//! with before the allocation-free rewrite in [`crate::network`]. It is
//! deliberately simple — per-round hash maps for budget accounting and
//! inbox construction, explicit recipient sorting — and serves two
//! purposes:
//!
//! * the determinism conformance suite asserts the fast kernel produces
//!   **identical final states and [`Metrics`]** on every program it runs;
//! * the kernel throughput benchmark (`crates/bench/benches/kernel.rs` and
//!   `harness bench-kernel`) uses it as the baseline the speedup is
//!   measured against, recorded in `BENCH_kernel.json`.
//!
//! Do not optimize this module; its value is that it stays obviously
//! correct.

use std::collections::HashMap;

use planar_graph::{Graph, VertexId};

use crate::message::Words;
use crate::metrics::Metrics;
use crate::network::{NodeCtx, NodeProgram, SimConfig, SimError, SimOutcome};

/// Runs `programs` to quiescence with the original quadratic-allocation
/// kernel (see module docs). Semantics are identical to [`crate::run`].
///
/// # Errors
///
/// Propagates [`SimError`] exactly as [`crate::run`] does.
///
/// # Panics
///
/// Panics if `programs.len() != g.vertex_count()`.
pub fn run_reference<P: NodeProgram>(
    g: &Graph,
    mut programs: Vec<P>,
    cfg: &SimConfig,
) -> Result<SimOutcome<P>, SimError> {
    assert_eq!(
        programs.len(),
        g.vertex_count(),
        "need exactly one program per vertex"
    );
    let mut metrics = Metrics::new();

    // Messages in flight: sender -> (dest, msg), to be delivered next round.
    let mut in_flight: Vec<(VertexId, VertexId, P::Msg)> = Vec::new();

    // Init phase (round 0).
    for (i, program) in programs.iter_mut().enumerate() {
        let v = VertexId::from_index(i);
        let ctx = NodeCtx {
            id: v,
            neighbors: g.neighbors(v),
            round: 0,
        };
        for (dest, msg) in program.init(&ctx) {
            validate_dest(g, v, dest)?;
            in_flight.push((v, dest, msg));
        }
    }

    let mut round = 0usize;
    while !in_flight.is_empty() {
        round += 1;
        if round > cfg.max_rounds {
            return Err(SimError::MaxRoundsExceeded {
                limit: cfg.max_rounds,
            });
        }
        // Enforce per-directed-edge budgets for this round's deliveries.
        let mut edge_words: HashMap<(VertexId, VertexId), usize> = HashMap::new();
        for (from, to, msg) in &in_flight {
            let w = edge_words.entry((*from, *to)).or_insert(0);
            *w += msg.words();
            if *w > cfg.budget_words {
                return Err(SimError::BudgetExceeded {
                    from: *from,
                    to: *to,
                    words: *w,
                    budget: cfg.budget_words,
                    round,
                });
            }
        }
        let round_max = edge_words.values().copied().max().unwrap_or(0);
        metrics.max_words_edge_round = metrics.max_words_edge_round.max(round_max);
        metrics.messages += in_flight.len();
        metrics.words += in_flight.iter().map(|(_, _, m)| m.words()).sum::<usize>();

        // Deliver.
        let mut inboxes: HashMap<VertexId, Vec<(VertexId, P::Msg)>> = HashMap::new();
        for (from, to, msg) in in_flight.drain(..) {
            inboxes.entry(to).or_default().push((from, msg));
        }
        // Deterministic processing order.
        let mut recipients: Vec<VertexId> = inboxes.keys().copied().collect();
        recipients.sort();
        for v in recipients {
            let mut inbox = inboxes.remove(&v).expect("recipient key exists");
            inbox.sort_by_key(|(from, _)| *from);
            let ctx = NodeCtx {
                id: v,
                neighbors: g.neighbors(v),
                round,
            };
            for (dest, msg) in programs[v.index()].on_round(&ctx, &inbox) {
                validate_dest(g, v, dest)?;
                in_flight.push((v, dest, msg));
            }
        }
    }
    metrics.rounds = round;
    Ok(SimOutcome { programs, metrics })
}

fn validate_dest(g: &Graph, from: VertexId, to: VertexId) -> Result<(), SimError> {
    if g.has_edge(from, to) {
        Ok(())
    } else {
        Err(SimError::InvalidDestination { from, to })
    }
}
