//! The original (seed) simulation kernel, kept verbatim as an executable
//! specification.
//!
//! [`run_reference`] is the `HashMap`-based kernel the workspace shipped
//! with before the allocation-free rewrite in [`crate::network`]. It is
//! deliberately simple — per-round hash maps for budget accounting and
//! inbox construction, explicit recipient sorting — and serves two
//! purposes:
//!
//! * the determinism conformance suite asserts the fast kernel produces
//!   **identical final states and [`Metrics`]** on every program it runs;
//! * the kernel throughput benchmark (`crates/bench/benches/kernel.rs` and
//!   `harness bench-kernel`) uses it as the baseline the speedup is
//!   measured against, recorded in `BENCH_kernel.json`.
//!
//! Do not optimize this module; its value is that it stays obviously
//! correct.
//!
//! # Fault injection
//!
//! When [`SimConfig::faults`] is non-empty the run dispatches to a
//! separate, equally simple fault-aware loop that applies the *same*
//! per-message fate function as the fast kernel (see [`crate::faults`] for
//! the shared semantics and the replayability contract). The fault-free
//! seed loop below is untouched, so the executable spec for the hot path
//! stays byte-for-byte what the workspace shipped with.

use std::collections::HashMap;

use planar_graph::{Graph, VertexId};

use crate::faults::{CrashPolicy, Fate};
use crate::message::Words;
use crate::metrics::Metrics;
use crate::network::{
    Instance, InstanceOutcome, MultiOutcome, NodeCtx, NodeProgram, SimConfig, SimError, SimOutcome,
};
use crate::trace::TraceEvent;

/// Runs `programs` to quiescence with the original quadratic-allocation
/// kernel (see module docs). Semantics are identical to [`crate::run`],
/// including under a non-empty fault plan.
///
/// # Errors
///
/// Propagates [`SimError`] exactly as [`crate::run`] does.
///
/// # Panics
///
/// Panics if `programs.len() != g.vertex_count()`.
pub fn run_reference<P: NodeProgram>(
    g: &Graph,
    programs: Vec<P>,
    cfg: &SimConfig,
) -> Result<SimOutcome<P>, SimError> {
    if cfg.faults.is_empty() && cfg.watchdog.is_none() {
        run_fault_free(g, programs, cfg)
    } else {
        run_faulty(g, programs, cfg)
    }
}

/// The seed kernel, verbatim (fault-free path).
fn run_fault_free<P: NodeProgram>(
    g: &Graph,
    mut programs: Vec<P>,
    cfg: &SimConfig,
) -> Result<SimOutcome<P>, SimError> {
    assert_eq!(
        programs.len(),
        g.vertex_count(),
        "need exactly one program per vertex"
    );
    let mut metrics = Metrics::new();
    let tracing = cfg.trace.is_on();
    if tracing {
        cfg.trace.emit(TraceEvent::RunStart {
            nodes: g.vertex_count(),
            budget_words: cfg.budget_words,
        });
    }

    // Messages in flight: sender -> (dest, msg), to be delivered next round.
    let mut in_flight: Vec<(VertexId, VertexId, P::Msg)> = Vec::new();

    // Init phase (round 0).
    for (i, program) in programs.iter_mut().enumerate() {
        let v = VertexId::from_index(i);
        let ctx = NodeCtx {
            id: v,
            neighbors: g.neighbors(v),
            round: 0,
        };
        for (dest, msg) in program.init(&ctx) {
            validate_dest(g, v, dest)?;
            if tracing {
                cfg.trace.emit(TraceEvent::Send {
                    round: 0,
                    from: v,
                    to: dest,
                    words: msg.words(),
                });
            }
            in_flight.push((v, dest, msg));
        }
    }

    let mut round = 0usize;
    while !in_flight.is_empty() {
        round += 1;
        if round > cfg.max_rounds {
            return Err(SimError::MaxRoundsExceeded {
                limit: cfg.max_rounds,
            });
        }
        // Enforce per-directed-edge budgets for this round's deliveries.
        let mut edge_words: HashMap<(VertexId, VertexId), usize> = HashMap::new();
        for (from, to, msg) in &in_flight {
            let w = edge_words.entry((*from, *to)).or_insert(0);
            *w += msg.words();
            if *w > cfg.budget_words {
                return Err(SimError::BudgetExceeded {
                    from: *from,
                    to: *to,
                    words: *w,
                    budget: cfg.budget_words,
                    round,
                });
            }
        }
        // RoundStart comes *after* the budget check: a round that aborts
        // delivers nothing, so it gets no RoundStart — matching the fast
        // kernel, which reports pending overflows before its RoundStart.
        if tracing {
            cfg.trace.emit(TraceEvent::RoundStart { round });
        }
        let round_max = edge_words.values().copied().max().unwrap_or(0);
        metrics.max_words_edge_round = metrics.max_words_edge_round.max(round_max);
        let round_msgs = in_flight.len();
        let round_words = in_flight.iter().map(|(_, _, m)| m.words()).sum::<usize>();
        metrics.messages += round_msgs;
        metrics.words += round_words;

        // Deliver.
        let mut inboxes: HashMap<VertexId, Vec<(VertexId, P::Msg)>> = HashMap::new();
        for (from, to, msg) in in_flight.drain(..) {
            inboxes.entry(to).or_default().push((from, msg));
        }
        // Deterministic processing order.
        let mut recipients: Vec<VertexId> = inboxes.keys().copied().collect();
        recipients.sort();
        for v in recipients {
            let mut inbox = inboxes.remove(&v).expect("recipient key exists");
            inbox.sort_by_key(|(from, _)| *from);
            if tracing {
                for (from, msg) in &inbox {
                    cfg.trace.emit(TraceEvent::Deliver {
                        round,
                        from: *from,
                        to: v,
                        words: msg.words(),
                    });
                }
            }
            let ctx = NodeCtx {
                id: v,
                neighbors: g.neighbors(v),
                round,
            };
            for (dest, msg) in programs[v.index()].on_round(&ctx, &inbox) {
                validate_dest(g, v, dest)?;
                if tracing {
                    cfg.trace.emit(TraceEvent::Send {
                        round,
                        from: v,
                        to: dest,
                        words: msg.words(),
                    });
                }
                in_flight.push((v, dest, msg));
            }
        }
        if tracing {
            cfg.trace.emit(TraceEvent::RoundEnd {
                round,
                messages: round_msgs,
                words: round_words,
                max_words_edge: round_max,
            });
        }
    }
    metrics.rounds = round;
    if tracing {
        cfg.trace.emit(TraceEvent::RunEnd { metrics });
    }
    Ok(SimOutcome { programs, metrics })
}

/// Per-sender mutable state threaded through [`record_faulty`].
struct FaultyState<M> {
    /// On-time messages due next round, in send order.
    in_flight: Vec<(VertexId, VertexId, M)>,
    /// Delay-faulted messages: `(arrival round, from, to, msg)`, appended in
    /// send order (so a stable sweep preserves `(send_round, k)` order).
    delayed: Vec<(usize, VertexId, VertexId, M)>,
    /// Attempted `(k, words)` per directed link this round.
    att: HashMap<(VertexId, VertexId), (u32, usize)>,
    /// First budget violation, reported at the start of the delivery round.
    pending_overflow: Option<SimError>,
    /// Batched runs only ([`run_reference_many`]): owning instance per
    /// vertex, `u32::MAX` = bystander. Empty = not batched; every
    /// instance branch below is then skipped, keeping [`run_faulty`]
    /// byte-for-byte the seed semantics.
    inst_of: Vec<u32>,
    /// Per-instance fault counters (batched runs only).
    inst_metrics: Vec<Metrics>,
    /// Pending delay-faulted copies per instance (batched runs only).
    inst_delayed: Vec<usize>,
}

impl<M> FaultyState<M> {
    fn new() -> Self {
        FaultyState {
            in_flight: Vec::new(),
            delayed: Vec::new(),
            att: HashMap::new(),
            pending_overflow: None,
            inst_of: Vec::new(),
            inst_metrics: Vec::new(),
            inst_delayed: Vec::new(),
        }
    }
}

/// Mirrors the fast kernel's fault-mode `record_sends`.
#[allow(clippy::too_many_arguments)]
fn record_faulty<M: Words + Clone>(
    g: &Graph,
    cfg: &SimConfig,
    crashed_at: &[usize],
    st: &mut FaultyState<M>,
    metrics: &mut Metrics,
    from: VertexId,
    round: usize,
    out: Vec<(VertexId, M)>,
) -> Result<(), SimError> {
    let tracing = cfg.trace.is_on();
    let from_inst = if st.inst_of.is_empty() {
        u32::MAX
    } else {
        st.inst_of[from.index()]
    };
    for (dest, msg) in out {
        validate_dest(g, from, dest)?;
        if from_inst != u32::MAX && st.inst_of[dest.index()] != from_inst {
            return Err(SimError::CrossInstanceSend {
                from,
                to: dest,
                round,
            });
        }
        if tracing {
            cfg.trace.emit(TraceEvent::Send {
                round,
                from,
                to: dest,
                words: msg.words(),
            });
        }
        let e = st.att.entry((from, dest)).or_insert((0, 0));
        let k = e.0;
        e.0 += 1;
        e.1 += msg.words();
        if e.1 > cfg.budget_words && st.pending_overflow.is_none() {
            st.pending_overflow = Some(SimError::BudgetExceeded {
                from,
                to: dest,
                words: e.1,
                budget: cfg.budget_words,
                round: round + 1,
            });
        }
        if crashed_at[dest.index()] <= round {
            match cfg.faults.on_crashed_send {
                CrashPolicy::DropSilently => {
                    metrics.dropped += 1;
                    if from_inst != u32::MAX {
                        st.inst_metrics[from_inst as usize].dropped += 1;
                    }
                    if tracing {
                        cfg.trace.emit(TraceEvent::Drop {
                            round,
                            from,
                            to: dest,
                            words: msg.words(),
                        });
                    }
                    continue;
                }
                CrashPolicy::Error => {
                    return Err(SimError::DestinationCrashed {
                        from,
                        to: dest,
                        round,
                    });
                }
            }
        }
        match cfg.faults.fate(from, dest, round, k) {
            Fate::Dropped => {
                metrics.dropped += 1;
                if from_inst != u32::MAX {
                    st.inst_metrics[from_inst as usize].dropped += 1;
                }
                if tracing {
                    cfg.trace.emit(TraceEvent::Drop {
                        round,
                        from,
                        to: dest,
                        words: msg.words(),
                    });
                }
            }
            Fate::Deliver { copies, delay } => {
                if copies > 1 {
                    metrics.duplicated += usize::from(copies) - 1;
                    if from_inst != u32::MAX {
                        st.inst_metrics[from_inst as usize].duplicated += usize::from(copies) - 1;
                    }
                    if tracing {
                        for _ in 1..copies {
                            cfg.trace.emit(TraceEvent::Duplicate {
                                round,
                                from,
                                to: dest,
                                words: msg.words(),
                            });
                        }
                    }
                }
                if delay > 0 {
                    metrics.delayed += 1;
                    if from_inst != u32::MAX {
                        st.inst_metrics[from_inst as usize].delayed += 1;
                    }
                    if tracing {
                        cfg.trace.emit(TraceEvent::Delay {
                            round,
                            from,
                            to: dest,
                            words: msg.words(),
                            deliver_round: round + 1 + delay,
                        });
                    }
                }
                let deliver = round + 1 + delay;
                if deliver >= crashed_at[dest.index()] {
                    metrics.dropped += usize::from(copies);
                    if from_inst != u32::MAX {
                        st.inst_metrics[from_inst as usize].dropped += usize::from(copies);
                    }
                    if tracing {
                        for _ in 0..copies {
                            cfg.trace.emit(TraceEvent::Drop {
                                round,
                                from,
                                to: dest,
                                words: msg.words(),
                            });
                        }
                    }
                    continue;
                }
                for _ in 0..copies {
                    if delay == 0 {
                        st.in_flight.push((from, dest, msg.clone()));
                    } else {
                        st.delayed.push((deliver, from, dest, msg.clone()));
                        if from_inst != u32::MAX {
                            st.inst_delayed[from_inst as usize] += 1;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// The fault-aware reference loop: same simple style as the seed kernel,
/// same observable semantics as the fast kernel's fault mode.
fn run_faulty<P: NodeProgram>(
    g: &Graph,
    mut programs: Vec<P>,
    cfg: &SimConfig,
) -> Result<SimOutcome<P>, SimError> {
    assert_eq!(
        programs.len(),
        g.vertex_count(),
        "need exactly one program per vertex"
    );
    let n = g.vertex_count();
    // Ticks are honored only with a non-empty plan (matching the fast
    // kernel, where a watchdog-only config stays on the fault-free path).
    let fault_mode = !cfg.faults.is_empty();
    let crashed_at: Vec<usize> = (0..n)
        .map(|i| cfg.faults.crash_round(VertexId::from_index(i)))
        .collect();
    let mut metrics = Metrics::new();
    let tracing = cfg.trace.is_on();
    if tracing {
        cfg.trace.emit(TraceEvent::RunStart {
            nodes: n,
            budget_words: cfg.budget_words,
        });
        // Round-0 crash victims never act; announce them up front.
        for (i, &r) in crashed_at.iter().enumerate() {
            if r == 0 {
                cfg.trace.emit(TraceEvent::Crash {
                    round: 0,
                    node: VertexId::from_index(i),
                });
            }
        }
    }
    let mut st = FaultyState::new();

    // Init phase (round 0); nodes crashed at round 0 never act.
    for (i, program) in programs.iter_mut().enumerate() {
        if crashed_at[i] == 0 {
            continue;
        }
        let v = VertexId::from_index(i);
        let ctx = NodeCtx {
            id: v,
            neighbors: g.neighbors(v),
            round: 0,
        };
        let out = program.init(&ctx);
        record_faulty(g, cfg, &crashed_at, &mut st, &mut metrics, v, 0, out)?;
    }
    let mut tick_pending =
        fault_mode && (0..n).any(|i| crashed_at[i] > 1 && programs[i].wants_tick());

    let mut round = 0usize;
    loop {
        if st.in_flight.is_empty() && st.delayed.is_empty() && !tick_pending {
            break; // quiescence
        }
        round += 1;
        if let Some(limit) = cfg.watchdog {
            if round > limit {
                if tracing {
                    cfg.trace.emit(TraceEvent::Watchdog { limit });
                }
                return Err(SimError::WatchdogTimeout { limit });
            }
        }
        if round > cfg.max_rounds {
            return Err(SimError::MaxRoundsExceeded {
                limit: cfg.max_rounds,
            });
        }
        if let Some(overflow) = st.pending_overflow.take() {
            return Err(overflow);
        }
        if tracing {
            cfg.trace.emit(TraceEvent::RoundStart { round });
            for (i, &r) in crashed_at.iter().enumerate() {
                if r == round {
                    cfg.trace.emit(TraceEvent::Crash {
                        round,
                        node: VertexId::from_index(i),
                    });
                }
            }
        }
        st.att.clear();

        // This round's arrivals: on-time traffic first, then delayed
        // messages falling due (stable order — see `FaultyState::delayed`).
        let mut arrivals: Vec<(VertexId, VertexId, P::Msg)> = std::mem::take(&mut st.in_flight);
        let mut still_delayed = Vec::new();
        for (due, from, to, msg) in st.delayed.drain(..) {
            if due == round {
                arrivals.push((from, to, msg));
            } else {
                still_delayed.push((due, from, to, msg));
            }
        }
        st.delayed = still_delayed;

        // Congestion metrics count *delivered* traffic.
        let mut edge_words: HashMap<(VertexId, VertexId), usize> = HashMap::new();
        for (from, to, msg) in &arrivals {
            *edge_words.entry((*from, *to)).or_insert(0) += msg.words();
        }
        let round_max = edge_words.values().copied().max().unwrap_or(0);
        metrics.max_words_edge_round = metrics.max_words_edge_round.max(round_max);
        let round_msgs = arrivals.len();
        let round_words = arrivals.iter().map(|(_, _, m)| m.words()).sum::<usize>();
        metrics.messages += round_msgs;
        metrics.words += round_words;

        // Deliver: group by recipient; within one inbox the stable
        // sender-sort leaves each sender's messages in arrival order
        // (on-time in emission order, then delayed by `(send_round, k)`).
        let mut inboxes: HashMap<VertexId, Vec<(VertexId, P::Msg)>> = HashMap::new();
        for (from, to, msg) in arrivals.drain(..) {
            inboxes.entry(to).or_default().push((from, msg));
        }
        let mut recipients: Vec<VertexId> = inboxes.keys().copied().collect();
        recipients.sort();
        for &v in &recipients {
            let mut inbox = inboxes.remove(&v).expect("recipient key exists");
            inbox.sort_by_key(|(from, _)| *from);
            if tracing {
                for (from, msg) in &inbox {
                    cfg.trace.emit(TraceEvent::Deliver {
                        round,
                        from: *from,
                        to: v,
                        words: msg.words(),
                    });
                }
            }
            let ctx = NodeCtx {
                id: v,
                neighbors: g.neighbors(v),
                round,
            };
            let out = programs[v.index()].on_round(&ctx, &inbox);
            record_faulty(g, cfg, &crashed_at, &mut st, &mut metrics, v, round, out)?;
        }
        // Timer ticks: live non-recipients that asked for empty-inbox
        // wakeups, in ascending vertex id.
        if fault_mode {
            for i in 0..n {
                let v = VertexId::from_index(i);
                if recipients.binary_search(&v).is_ok()
                    || crashed_at[i] <= round
                    || !programs[i].wants_tick()
                {
                    continue;
                }
                let ctx = NodeCtx {
                    id: v,
                    neighbors: g.neighbors(v),
                    round,
                };
                let out = programs[i].on_round(&ctx, &[]);
                record_faulty(g, cfg, &crashed_at, &mut st, &mut metrics, v, round, out)?;
            }
            tick_pending = (0..n).any(|i| crashed_at[i] > round + 1 && programs[i].wants_tick());
        }
        if tracing {
            cfg.trace.emit(TraceEvent::RoundEnd {
                round,
                messages: round_msgs,
                words: round_words,
                max_words_edge: round_max,
            });
        }
    }
    metrics.rounds = round;
    // Count from the per-vertex crash table, not `FaultPlan::crashed_by`:
    // the plan may name vertices this graph does not have, and a node that
    // does not exist cannot crash (matches the fast kernel).
    metrics.crashed_nodes = crashed_at.iter().filter(|&&r| r <= round).count();
    if tracing {
        cfg.trace.emit(TraceEvent::RunEnd { metrics });
    }
    Ok(SimOutcome { programs, metrics })
}

/// Reference counterpart of [`Simulator::run_many`](crate::Simulator):
/// runs vertex-disjoint instances in one shared round lattice with the
/// same simple style as the seed kernel.
///
/// One fault-aware loop serves every configuration: with an empty fault
/// plan [`FaultPlan::fate`](crate::FaultPlan) is the identity
/// (`Deliver { copies: 1, delay: 0 }`), so the loop degenerates to the
/// fault-free semantics, including the budget-overflow observables
/// (the error names the delivery round and that round emits no
/// `RoundStart`).
///
/// # Errors
///
/// Propagates [`SimError`] like [`crate::run_many`], including
/// [`SimError::CrossInstanceSend`] on any isolation violation.
///
/// # Panics
///
/// Panics if instances overlap or name vertices outside `g`.
pub fn run_reference_many<P: NodeProgram>(
    g: &Graph,
    mut instances: Vec<Instance<P>>,
    cfg: &SimConfig,
) -> Result<MultiOutcome<P>, SimError> {
    let n = g.vertex_count();
    let k = instances.len();
    // Ticks are honored only with a non-empty plan, as in `run_faulty`.
    let fault_mode = !cfg.faults.is_empty();
    let crashed_at: Vec<usize> = (0..n)
        .map(|i| cfg.faults.crash_round(VertexId::from_index(i)))
        .collect();
    let mut st: FaultyState<P::Msg> = FaultyState::new();
    st.inst_of = vec![u32::MAX; n];
    for (i, inst) in instances.iter().enumerate() {
        for &v in &inst.members {
            assert!(v.index() < n, "instance member {v} outside the graph");
            assert_eq!(
                st.inst_of[v.index()],
                u32::MAX,
                "instances must be vertex-disjoint; {v} claimed twice"
            );
            st.inst_of[v.index()] = i as u32;
        }
    }
    st.inst_metrics = vec![Metrics::new(); k];
    st.inst_delayed = vec![0; k];
    let mut metrics = Metrics::new();
    let tracing = cfg.trace.is_on();
    if tracing {
        cfg.trace.emit(TraceEvent::RunStart {
            nodes: n,
            budget_words: cfg.budget_words,
        });
        for (i, inst) in instances.iter().enumerate() {
            for &v in &inst.members {
                cfg.trace.emit(TraceEvent::Assign {
                    instance: i,
                    node: v,
                });
            }
        }
        for (i, &r) in crashed_at.iter().enumerate() {
            if r == 0 {
                cfg.trace.emit(TraceEvent::Crash {
                    round: 0,
                    node: VertexId::from_index(i),
                });
            }
        }
    }

    // Init phase (round 0): only instance members run programs; nodes
    // crashed at round 0 never act.
    for inst in instances.iter_mut() {
        for (slot, &v) in inst.members.iter().enumerate() {
            if crashed_at[v.index()] == 0 {
                continue;
            }
            let ctx = NodeCtx {
                id: v,
                neighbors: g.neighbors(v),
                round: 0,
            };
            let out = inst.programs[slot].init(&ctx);
            record_faulty(g, cfg, &crashed_at, &mut st, &mut metrics, v, 0, out)?;
        }
    }
    let mut inst_tick = vec![false; k];
    let mut tick_pending = false;
    if fault_mode {
        for (i, inst) in instances.iter().enumerate() {
            inst_tick[i] = inst
                .members
                .iter()
                .zip(&inst.programs)
                .any(|(&v, p)| crashed_at[v.index()] > 1 && p.wants_tick());
            tick_pending |= inst_tick[i];
        }
    }

    let mut round = 0usize;
    loop {
        if st.in_flight.is_empty() && st.delayed.is_empty() && !tick_pending {
            break; // quiescence of the whole batch
        }
        round += 1;
        if let Some(limit) = cfg.watchdog {
            if round > limit {
                if tracing {
                    cfg.trace.emit(TraceEvent::Watchdog { limit });
                }
                return Err(SimError::WatchdogTimeout { limit });
            }
        }
        if round > cfg.max_rounds {
            return Err(SimError::MaxRoundsExceeded {
                limit: cfg.max_rounds,
            });
        }
        if let Some(overflow) = st.pending_overflow.take() {
            return Err(overflow);
        }
        // Per-instance round attribution, *before* delayed injection — the
        // same predicate the individual run's quiescence check evaluates.
        let mut inst_live = vec![false; k];
        for i in 0..k {
            inst_live[i] = st.inst_delayed[i] > 0 || inst_tick[i];
        }
        for (_, to, _) in &st.in_flight {
            inst_live[st.inst_of[to.index()] as usize] = true;
        }
        for (i, &live) in inst_live.iter().enumerate() {
            if live {
                st.inst_metrics[i].rounds = round;
            }
        }
        if tracing {
            cfg.trace.emit(TraceEvent::RoundStart { round });
            for (i, &r) in crashed_at.iter().enumerate() {
                if r == round {
                    cfg.trace.emit(TraceEvent::Crash {
                        round,
                        node: VertexId::from_index(i),
                    });
                }
            }
        }
        st.att.clear();

        // This round's arrivals: on-time traffic first, then delayed
        // messages falling due (stable order — see `FaultyState::delayed`).
        let mut arrivals: Vec<(VertexId, VertexId, P::Msg)> = std::mem::take(&mut st.in_flight);
        let pending = std::mem::take(&mut st.delayed);
        let mut still_delayed = Vec::new();
        for (due, from, to, msg) in pending {
            if due == round {
                st.inst_delayed[st.inst_of[to.index()] as usize] -= 1;
                arrivals.push((from, to, msg));
            } else {
                still_delayed.push((due, from, to, msg));
            }
        }
        st.delayed = still_delayed;

        // Congestion metrics count *delivered* traffic; the recipient's
        // instance owns each delivery (isolation guarantees sender and
        // receiver share an instance).
        let mut edge_words: HashMap<(VertexId, VertexId), usize> = HashMap::new();
        for (from, to, msg) in &arrivals {
            *edge_words.entry((*from, *to)).or_insert(0) += msg.words();
            let im = &mut st.inst_metrics[st.inst_of[to.index()] as usize];
            im.messages += 1;
            im.words += msg.words();
        }
        for (&(_, to), &w) in &edge_words {
            let im = &mut st.inst_metrics[st.inst_of[to.index()] as usize];
            im.max_words_edge_round = im.max_words_edge_round.max(w);
        }
        let round_max = edge_words.values().copied().max().unwrap_or(0);
        metrics.max_words_edge_round = metrics.max_words_edge_round.max(round_max);
        let round_msgs = arrivals.len();
        let round_words = arrivals.iter().map(|(_, _, m)| m.words()).sum::<usize>();
        metrics.messages += round_msgs;
        metrics.words += round_words;

        // Deliver: group by recipient; within one inbox the stable
        // sender-sort leaves each sender's messages in arrival order.
        let mut inboxes: HashMap<VertexId, Vec<(VertexId, P::Msg)>> = HashMap::new();
        for (from, to, msg) in arrivals.drain(..) {
            inboxes.entry(to).or_default().push((from, msg));
        }
        let mut recipients: Vec<VertexId> = inboxes.keys().copied().collect();
        recipients.sort();
        for &v in &recipients {
            let mut inbox = inboxes.remove(&v).expect("recipient key exists");
            inbox.sort_by_key(|(from, _)| *from);
            if tracing {
                for (from, msg) in &inbox {
                    cfg.trace.emit(TraceEvent::Deliver {
                        round,
                        from: *from,
                        to: v,
                        words: msg.words(),
                    });
                }
            }
            let ctx = NodeCtx {
                id: v,
                neighbors: g.neighbors(v),
                round,
            };
            let inst = st.inst_of[v.index()] as usize;
            let slot = instances[inst]
                .members
                .binary_search(&v)
                .expect("recipient is an instance member");
            let out = instances[inst].programs[slot].on_round(&ctx, &inbox);
            record_faulty(g, cfg, &crashed_at, &mut st, &mut metrics, v, round, out)?;
        }
        // Timer ticks: live non-recipient members that asked for
        // empty-inbox wakeups, ascending vertex id within each instance
        // (instances are independent, so inter-instance order cannot
        // influence outcomes).
        if fault_mode {
            for inst in instances.iter_mut() {
                for (slot, &v) in inst.members.iter().enumerate() {
                    if recipients.binary_search(&v).is_ok()
                        || crashed_at[v.index()] <= round
                        || !inst.programs[slot].wants_tick()
                    {
                        continue;
                    }
                    let ctx = NodeCtx {
                        id: v,
                        neighbors: g.neighbors(v),
                        round,
                    };
                    let out = inst.programs[slot].on_round(&ctx, &[]);
                    record_faulty(g, cfg, &crashed_at, &mut st, &mut metrics, v, round, out)?;
                }
            }
            tick_pending = false;
            for (i, inst) in instances.iter().enumerate() {
                inst_tick[i] = inst
                    .members
                    .iter()
                    .zip(&inst.programs)
                    .any(|(&v, p)| crashed_at[v.index()] > round + 1 && p.wants_tick());
                tick_pending |= inst_tick[i];
            }
        }
        if tracing {
            cfg.trace.emit(TraceEvent::RoundEnd {
                round,
                messages: round_msgs,
                words: round_words,
                max_words_edge: round_max,
            });
        }
    }
    metrics.rounds = round;
    if fault_mode {
        metrics.crashed_nodes = crashed_at.iter().filter(|&&r| r <= round).count();
        // Mirror the individual run: it simulates the whole graph, so its
        // crash count covers every vertex crashed by *its* final round —
        // which for instance `i` is `inst_metrics[i].rounds`.
        for im in &mut st.inst_metrics {
            let horizon = im.rounds;
            im.crashed_nodes = crashed_at.iter().filter(|&&r| r <= horizon).count();
        }
    }
    if tracing {
        for (i, &m) in st.inst_metrics.iter().enumerate() {
            cfg.trace.emit(TraceEvent::InstanceEnd {
                instance: i,
                metrics: m,
            });
        }
        cfg.trace.emit(TraceEvent::RunEnd { metrics });
    }
    let instances = instances
        .into_iter()
        .enumerate()
        .map(|(i, inst)| InstanceOutcome {
            members: inst.members,
            programs: inst.programs,
            metrics: st.inst_metrics[i],
        })
        .collect();
    Ok(MultiOutcome { instances, metrics })
}

fn validate_dest(g: &Graph, from: VertexId, to: VertexId) -> Result<(), SimError> {
    if g.has_edge(from, to) {
        Ok(())
    } else {
        Err(SimError::InvalidDestination { from, to })
    }
}
