//! The synchronous CONGEST simulation kernel.
//!
//! Nodes are event-driven state machines: they emit messages at
//! initialization and in response to received messages. Rounds are fully
//! synchronous — everything sent in round `r` is delivered at the start of
//! round `r + 1` — and the kernel *enforces* the CONGEST bandwidth
//! constraint: the total size of messages crossing a directed edge in one
//! round must not exceed the configured word budget, otherwise the run
//! aborts with [`SimError::BudgetExceeded`]. Measured round counts are
//! therefore honest: no protocol can smuggle extra information through an
//! edge.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use planar_graph::{Graph, VertexId};

use crate::message::Words;
use crate::metrics::Metrics;

/// Per-node view of the network handed to [`NodeProgram`] callbacks.
///
/// Matches the paper's input format: a node knows its own id and the ids of
/// its neighbors, nothing else.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    /// This node's globally unique id.
    pub id: VertexId,
    /// Ids of the node's neighbors (sorted).
    pub neighbors: &'a [VertexId],
    /// Current round number (0 during `init`).
    pub round: usize,
}

/// A distributed node program (one instance per vertex).
///
/// Programs must be *event driven*: after [`NodeProgram::init`], a node may
/// only send messages from [`NodeProgram::on_round`] in response to received
/// messages. The simulation ends at quiescence (a round in which no messages
/// are in flight), which for event-driven programs implies no further state
/// change is possible.
pub trait NodeProgram {
    /// The message type exchanged by this program.
    type Msg: Clone + Words;

    /// Called once before the first round; returns initial messages as
    /// `(neighbor, message)` pairs.
    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, Self::Msg)>;

    /// Called whenever the node receives at least one message; returns
    /// messages to send this round.
    fn on_round(
        &mut self,
        ctx: &NodeCtx<'_>,
        inbox: &[(VertexId, Self::Msg)],
    ) -> Vec<(VertexId, Self::Msg)>;
}

/// Simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Maximum words (one word = one `O(log n)`-bit field) per directed edge
    /// per round.
    pub budget_words: usize,
    /// Abort if the simulation has not quiesced after this many rounds.
    pub max_rounds: usize,
}

/// The default per-edge word budget: 8 words, i.e. messages of
/// `8 · ceil(log2 n)` bits — a fixed `O(log n)` as the model requires.
pub const DEFAULT_BUDGET_WORDS: usize = 8;

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { budget_words: DEFAULT_BUDGET_WORDS, max_rounds: 1_000_000 }
    }
}

/// Errors surfaced by the kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A round tried to push more words over a directed edge than allowed.
    BudgetExceeded {
        /// Sender of the overflowing edge.
        from: VertexId,
        /// Receiver of the overflowing edge.
        to: VertexId,
        /// Words that were attempted.
        words: usize,
        /// The configured budget.
        budget: usize,
        /// The offending round.
        round: usize,
    },
    /// A node addressed a message to a non-neighbor.
    InvalidDestination {
        /// The sender.
        from: VertexId,
        /// The invalid addressee.
        to: VertexId,
    },
    /// The simulation did not quiesce within `max_rounds`.
    MaxRoundsExceeded {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BudgetExceeded { from, to, words, budget, round } => write!(
                f,
                "bandwidth budget exceeded on edge {from}->{to} in round {round}: {words} words > budget {budget}"
            ),
            SimError::InvalidDestination { from, to } => {
                write!(f, "node {from} sent a message to non-neighbor {to}")
            }
            SimError::MaxRoundsExceeded { limit } => {
                write!(f, "simulation did not quiesce within {limit} rounds")
            }
        }
    }
}

impl Error for SimError {}

/// Result of a completed simulation: the final program states plus the cost
/// metrics.
#[derive(Debug)]
pub struct SimOutcome<P> {
    /// Final per-node program states (indexed by vertex id).
    pub programs: Vec<P>,
    /// Rounds/messages/congestion consumed by this run.
    pub metrics: Metrics,
}

/// Runs `programs` (one per vertex of `g`, indexed by vertex id) to
/// quiescence.
///
/// # Errors
///
/// Propagates [`SimError`] on budget violations, invalid destinations, or
/// exceeding `cfg.max_rounds`.
///
/// # Panics
///
/// Panics if `programs.len() != g.vertex_count()`.
pub fn run<P: NodeProgram>(
    g: &Graph,
    mut programs: Vec<P>,
    cfg: &SimConfig,
) -> Result<SimOutcome<P>, SimError> {
    assert_eq!(
        programs.len(),
        g.vertex_count(),
        "need exactly one program per vertex"
    );
    let mut metrics = Metrics::new();

    // Messages in flight: sender -> (dest, msg), to be delivered next round.
    let mut in_flight: Vec<(VertexId, VertexId, P::Msg)> = Vec::new();

    // Init phase (round 0).
    for (i, program) in programs.iter_mut().enumerate() {
        let v = VertexId::from_index(i);
        let ctx = NodeCtx { id: v, neighbors: g.neighbors(v), round: 0 };
        for (dest, msg) in program.init(&ctx) {
            validate_dest(g, v, dest)?;
            in_flight.push((v, dest, msg));
        }
    }

    let mut round = 0usize;
    while !in_flight.is_empty() {
        round += 1;
        if round > cfg.max_rounds {
            return Err(SimError::MaxRoundsExceeded { limit: cfg.max_rounds });
        }
        // Enforce per-directed-edge budgets for this round's deliveries.
        let mut edge_words: HashMap<(VertexId, VertexId), usize> = HashMap::new();
        for (from, to, msg) in &in_flight {
            let w = edge_words.entry((*from, *to)).or_insert(0);
            *w += msg.words();
            if *w > cfg.budget_words {
                return Err(SimError::BudgetExceeded {
                    from: *from,
                    to: *to,
                    words: *w,
                    budget: cfg.budget_words,
                    round,
                });
            }
        }
        let round_max = edge_words.values().copied().max().unwrap_or(0);
        metrics.max_words_edge_round = metrics.max_words_edge_round.max(round_max);
        metrics.messages += in_flight.len();
        metrics.words += in_flight.iter().map(|(_, _, m)| m.words()).sum::<usize>();

        // Deliver.
        let mut inboxes: HashMap<VertexId, Vec<(VertexId, P::Msg)>> = HashMap::new();
        for (from, to, msg) in in_flight.drain(..) {
            inboxes.entry(to).or_default().push((from, msg));
        }
        // Deterministic processing order.
        let mut recipients: Vec<VertexId> = inboxes.keys().copied().collect();
        recipients.sort();
        for v in recipients {
            let mut inbox = inboxes.remove(&v).expect("recipient key exists");
            inbox.sort_by_key(|(from, _)| *from);
            let ctx = NodeCtx { id: v, neighbors: g.neighbors(v), round };
            for (dest, msg) in programs[v.index()].on_round(&ctx, &inbox) {
                validate_dest(g, v, dest)?;
                in_flight.push((v, dest, msg));
            }
        }
    }
    metrics.rounds = round;
    Ok(SimOutcome { programs, metrics })
}

fn validate_dest(g: &Graph, from: VertexId, to: VertexId) -> Result<(), SimError> {
    if g.has_edge(from, to) {
        Ok(())
    } else {
        Err(SimError::InvalidDestination { from, to })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial flooding program: forwards the largest value seen once.
    struct MaxFlood {
        best: u32,
        announced: bool,
    }

    impl NodeProgram for MaxFlood {
        type Msg = u32;

        fn init(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
            self.announced = true;
            _ctx.neighbors.iter().map(|&w| (w, self.best)).collect()
        }

        fn on_round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
            let incoming = inbox.iter().map(|&(_, v)| v).max().unwrap_or(0);
            if incoming > self.best {
                self.best = incoming;
                ctx.neighbors.iter().map(|&w| (w, self.best)).collect()
            } else {
                Vec::new()
            }
        }
    }

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn flood_converges_in_diameter_rounds() {
        let n = 10;
        let g = path(n);
        let programs: Vec<MaxFlood> =
            (0..n).map(|i| MaxFlood { best: i as u32, announced: false }).collect();
        let out = run(&g, programs, &SimConfig::default()).unwrap();
        for p in &out.programs {
            assert_eq!(p.best, 9);
        }
        // The max starts at one end of the path: n-1 rounds to cross, plus
        // one final (useless) echo round before quiescence.
        assert_eq!(out.metrics.rounds, n);
        assert!(out.metrics.max_words_edge_round <= DEFAULT_BUDGET_WORDS);
    }

    #[test]
    fn budget_violation_detected() {
        #[derive(Debug)]
        struct Blaster;
        impl NodeProgram for Blaster {
            type Msg = Vec<u32>;
            fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, Vec<u32>)> {
                if ctx.id == VertexId(0) {
                    vec![(VertexId(1), vec![0; 100])]
                } else {
                    Vec::new()
                }
            }
            fn on_round(
                &mut self,
                _: &NodeCtx<'_>,
                _: &[(VertexId, Vec<u32>)],
            ) -> Vec<(VertexId, Vec<u32>)> {
                Vec::new()
            }
        }
        let g = path(2);
        let err = run(&g, vec![Blaster, Blaster], &SimConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::BudgetExceeded { .. }));
    }

    #[test]
    fn invalid_destination_detected() {
        #[derive(Debug)]
        struct Wild;
        impl NodeProgram for Wild {
            type Msg = u32;
            fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
                if ctx.id == VertexId(0) {
                    vec![(VertexId(2), 1)] // not a neighbor on a path of 3
                } else {
                    Vec::new()
                }
            }
            fn on_round(&mut self, _: &NodeCtx<'_>, _: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
                Vec::new()
            }
        }
        let g = path(3);
        let err = run(&g, vec![Wild, Wild, Wild], &SimConfig::default()).unwrap_err();
        assert_eq!(err, SimError::InvalidDestination { from: VertexId(0), to: VertexId(2) });
    }

    #[test]
    fn max_rounds_guard() {
        /// Ping-pong forever between two nodes.
        #[derive(Debug)]
        struct PingPong;
        impl NodeProgram for PingPong {
            type Msg = u32;
            fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
                if ctx.id == VertexId(0) {
                    vec![(VertexId(1), 0)]
                } else {
                    Vec::new()
                }
            }
            fn on_round(&mut self, _: &NodeCtx<'_>, inbox: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
                inbox.iter().map(|&(from, v)| (from, v + 1)).collect()
            }
        }
        let g = path(2);
        let cfg = SimConfig { budget_words: 8, max_rounds: 50 };
        let err = run(&g, vec![PingPong, PingPong], &cfg).unwrap_err();
        assert_eq!(err, SimError::MaxRoundsExceeded { limit: 50 });
    }

    #[test]
    fn quiescent_from_start() {
        struct Silent;
        impl NodeProgram for Silent {
            type Msg = u32;
            fn init(&mut self, _: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
                Vec::new()
            }
            fn on_round(&mut self, _: &NodeCtx<'_>, _: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
                Vec::new()
            }
        }
        let g = path(4);
        let out = run(&g, vec![Silent, Silent, Silent, Silent], &SimConfig::default()).unwrap();
        assert_eq!(out.metrics.rounds, 0);
        assert_eq!(out.metrics.messages, 0);
    }
}
