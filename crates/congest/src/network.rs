//! The synchronous CONGEST simulation kernel.
//!
//! Nodes are event-driven state machines: they emit messages at
//! initialization and in response to received messages. Rounds are fully
//! synchronous — everything sent in round `r` is delivered at the start of
//! round `r + 1` — and the kernel *enforces* the CONGEST bandwidth
//! constraint: the total size of messages crossing a directed edge in one
//! round must not exceed the configured word budget, otherwise the run
//! aborts with [`SimError::BudgetExceeded`]. Measured round counts are
//! therefore honest: no protocol can smuggle extra information through an
//! edge.
//!
//! # Kernel architecture (allocation-free steady state)
//!
//! The per-round loop performs **zero heap allocations in steady state**
//! (after buffer capacities have warmed up over the first few rounds). All
//! round state lives in flat vectors indexed by the graph's dense
//! [`ArcId`]s (one per directed edge, CSR layout; see
//! [`planar_graph::arcs`]) and by vertex id:
//!
//! * **Mailboxes** — two arc-indexed buffer sets (`cur`/`nxt`) of per-arc
//!   message queues, swapped each round. Sends from round `r` accumulate in
//!   `nxt`; after the swap they are this round's deliveries in `cur`.
//!   Because an arc has exactly one sender, per-arc queues preserve
//!   emission order, and the in-arcs of a node — enumerated through the
//!   reverse-arc table in slot order — arrive already sorted by sender id.
//!   Each queue keeps its head message inline in a flat `head` array (see
//!   `MailPlane`), so the budget-typical one-message-per-arc round never
//!   allocates and the hot working set stays compact.
//!   Inboxes are therefore deterministic *by construction*: the seed
//!   kernel's per-round `recipients.sort()` + per-inbox `sort_by_key` are
//!   gone, yet inbox contents are byte-identical (adjacency lists are
//!   sorted, so slot order *is* sender-id order).
//! * **Budget accounting** — a flat `words[arc]` vector accumulated at send
//!   time; touched arcs are tracked in a dirty list and only those entries
//!   are reset after delivery, so quiet regions of a large graph cost
//!   nothing.
//! * **Destination validation** — an epoch-stamped slot table
//!   (`slot_epoch`/`slot_val`, one entry per vertex): before a node's sends
//!   are recorded, its neighbor slots are stamped with a fresh epoch, making
//!   each subsequent lookup `O(1)` instead of the seed kernel's per-message
//!   binary search. An unstamped destination is a non-neighbor.
//! * **Recipient schedule** — nodes are appended to a recipient list the
//!   first time a message is addressed to them (deduplicated by an epoch
//!   stamp) and processed in that order. Processing order cannot influence
//!   outcomes — a node only observes its own inbox, and per-arc queues are
//!   single-sender — so this order is as deterministic as the sorted order
//!   the seed kernel used, without the sort.
//!
//! Budget violations are detected at send time but *reported* at the
//! delivery round, after the max-rounds check — exactly the seed kernel's
//! observable error ordering. The seed kernel itself is preserved verbatim
//! as [`crate::reference::run_reference`]; the determinism conformance
//! suite (`crates/congest/tests/determinism.rs`) asserts both kernels
//! produce identical final states and [`Metrics`] on every workload, and
//! the kernel benchmark records the resulting speedup in
//! `BENCH_kernel.json`.
//!
//! # Parallel round execution
//!
//! With [`SimConfig::threads`] > 1 (or `PLANAR_THREADS` set, see
//! [`crate::pool`]), the inside of a round fans out over scoped worker
//! threads in two phases whose composition is bit-identical to the
//! sequential loop at every thread count:
//!
//! * **Phase A (parallel, pure compute).** The program table is cut into
//!   contiguous per-worker shards — static sharding, no work stealing, so
//!   shard ownership is a pure function of the layout. Each worker scans
//!   the round's recipient list for nodes in its shard, assembles their
//!   inboxes by *cloning* from the shared `cur` plane (left intact; the
//!   sequential path drains it in place), steps `on_round` on its exclusive
//!   `&mut` shard, and resolves every outgoing message to its arc id
//!   (binary search over the CSR block — the same
//!   `InvalidDestination`/`CrossInstanceSend` semantics as the sequential
//!   slot stamp, which batched runs keep enforcing per send). Resolved
//!   sends and per-recipient validation errors are buffered in per-worker
//!   scratch; nothing is queued, counted, or traced yet.
//! * **Phase B (sequential replay).** The main thread walks the recipient
//!   list in its original order, emits each node's `Deliver` events from
//!   the still-intact plane, and pushes every buffered send through the
//!   *same* `queue_resolved` helper the sequential path uses — so budget
//!   accounting, overflow choice, fault fates (keyed on the per-arc
//!   attempt sequence, which only depends on send order within a single
//!   sender), per-instance attribution, trace emission and error ordering
//!   cannot drift between the paths. The plane is drained wholesale at
//!   round end (`MailPlane::reset`).
//!
//! Recipients are unique per round and an arc has a single sender, so
//! phase A's shards touch disjoint programs and read disjoint in-arcs; the
//! replay then serializes all shared-state effects in canonical order.
//! Determinism therefore survives any interleaving of phase A. The
//! thread-count conformance suite (`crates/congest/tests/threads.rs`) pins
//! states, metrics and full trace streams across thread counts 1/2/4/8 on
//! both entry points, fault-free and under chaos.

use std::error::Error;
use std::fmt;

use planar_graph::{ArcId, ArcIndex, Graph, VertexId};

use crate::faults::{CrashPolicy, Fate, FaultPlan};
use crate::message::{BitSink, Words};
use crate::metrics::Metrics;
use crate::trace::{TraceEvent, TraceHandle};

/// Per-node view of the network handed to [`NodeProgram`] callbacks.
///
/// Matches the paper's input format: a node knows its own id and the ids of
/// its neighbors, nothing else.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    /// This node's globally unique id.
    pub id: VertexId,
    /// Ids of the node's neighbors (sorted).
    pub neighbors: &'a [VertexId],
    /// Current round number (0 during `init`).
    pub round: usize,
}

/// A distributed node program (one instance per vertex).
///
/// Programs must be *event driven*: after [`NodeProgram::init`], a node may
/// only send messages from [`NodeProgram::on_round`] in response to received
/// messages. The simulation ends at quiescence (a round in which no messages
/// are in flight), which for event-driven programs implies no further state
/// change is possible.
pub trait NodeProgram {
    /// The message type exchanged by this program.
    type Msg: Clone + Words;

    /// Called once before the first round; returns initial messages as
    /// `(neighbor, message)` pairs.
    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, Self::Msg)>;

    /// Called whenever the node receives at least one message; returns
    /// messages to send this round.
    fn on_round(
        &mut self,
        ctx: &NodeCtx<'_>,
        inbox: &[(VertexId, Self::Msg)],
    ) -> Vec<(VertexId, Self::Msg)>;

    /// Whether the node wants [`NodeProgram::on_round`] called with an
    /// *empty* inbox while it has internal timers pending (e.g. the
    /// retransmission timeouts of `protocols::reliable`). Only honored in
    /// fault mode — with an empty [`FaultPlan`] the kernel stays strictly
    /// event-driven, preserving the zero-overhead hot path.
    fn wants_tick(&self) -> bool {
        false
    }
}

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Maximum words (one word = one `O(log n)`-bit field) per directed edge
    /// per round.
    pub budget_words: usize,
    /// Abort if the simulation has not quiesced after this many rounds.
    ///
    /// The bound is inclusive: a run whose final messages are delivered in
    /// round `max_rounds` (and which quiesces there) succeeds with
    /// `metrics.rounds == max_rounds`; only a run that would need to deliver
    /// in round `max_rounds + 1` fails with [`SimError::MaxRoundsExceeded`].
    pub max_rounds: usize,
    /// Fault-injection schedule (see [`crate::faults`]). The default (empty)
    /// plan keeps the kernel on the fault-free hot path: no per-message RNG
    /// calls, byte-identical outcomes.
    pub faults: FaultPlan,
    /// Round-budget watchdog: abort with [`SimError::WatchdogTimeout`] if
    /// the run passes this many rounds. Unlike `max_rounds` (a safety net
    /// against protocol bugs, so generous it should never fire), the
    /// watchdog is the *expected* failure mode of a faulty run — drivers map
    /// it to graceful degradation rather than treating it as a bug.
    pub watchdog: Option<usize>,
    /// Optional observability hook (see [`crate::trace`]). Off by default;
    /// when off, both kernels run their exact pre-tracing instruction
    /// sequence — every emission site is behind a cached `is_on()` branch.
    pub trace: TraceHandle,
    /// Worker threads for the fast kernel's parallel round execution (see
    /// the module docs). `None` (default) resolves automatically: the
    /// `PLANAR_THREADS` environment knob or the host's available
    /// parallelism, falling back to 1 inside an already-parallel sweep
    /// worker (the no-oversubscription rule, see [`crate::pool`]).
    /// `Some(t)` pins the count unconditionally; `Some(1)` is the plain
    /// sequential kernel. Outcomes, [`Metrics`], fault fates and
    /// [`TraceEvent`] streams are bit-identical at every setting — only
    /// wall time changes. The reference kernel ignores this field.
    pub threads: Option<usize>,
}

/// The default per-edge word budget: 8 words, i.e. messages of
/// `8 · ceil(log2 n)` bits — a fixed `O(log n)` as the model requires.
pub const DEFAULT_BUDGET_WORDS: usize = 8;

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            budget_words: DEFAULT_BUDGET_WORDS,
            max_rounds: 1_000_000,
            faults: FaultPlan::default(),
            watchdog: None,
            trace: TraceHandle::off(),
            threads: None,
        }
    }
}

impl SimConfig {
    /// Validates the configuration against an `n`-vertex graph — today
    /// that means [`FaultPlan::validate`] on the fault plan: probabilities
    /// in `[0, 1]`, no empty/inverted link-down windows, crash victims and
    /// link endpoints in range.
    ///
    /// Opt-in (the kernels keep their documented lenient semantics);
    /// callers that *generate* configurations — the DST scenario engine,
    /// programmatic sweeps — call this to fail fast on plans that would
    /// silently inject nothing.
    ///
    /// # Errors
    ///
    /// The first [`FaultPlanError`](crate::faults::FaultPlanError) found.
    pub fn validate(&self, n: usize) -> Result<(), crate::faults::FaultPlanError> {
        self.faults.validate(n)
    }
}

/// Errors surfaced by the kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A round tried to push more words over a directed edge than allowed.
    BudgetExceeded {
        /// Sender of the overflowing edge.
        from: VertexId,
        /// Receiver of the overflowing edge.
        to: VertexId,
        /// Words that were attempted.
        words: usize,
        /// The configured budget.
        budget: usize,
        /// The offending round.
        round: usize,
    },
    /// A node addressed a message to a non-neighbor.
    InvalidDestination {
        /// The sender.
        from: VertexId,
        /// The invalid addressee.
        to: VertexId,
    },
    /// The simulation did not quiesce within `max_rounds`.
    MaxRoundsExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// The round-budget watchdog ([`SimConfig::watchdog`]) fired before
    /// quiescence — under fault injection, the signal that a protocol can
    /// no longer make progress and the run should degrade gracefully.
    WatchdogTimeout {
        /// The configured watchdog limit.
        limit: usize,
    },
    /// A node addressed a message to a neighbor that had already
    /// crash-stopped. Only reported under
    /// [`CrashPolicy::Error`](crate::faults::CrashPolicy::Error); the
    /// default policy drops such sends silently.
    DestinationCrashed {
        /// The sender.
        from: VertexId,
        /// The crashed addressee.
        to: VertexId,
        /// The round in which the send was attempted.
        round: usize,
    },
    /// In a batched run ([`Simulator::run_many`]), a node addressed a
    /// message to a node of a *different* instance (or to a node assigned
    /// to no instance). Instances are vertex-disjoint subproblems that must
    /// run as if alone on the network; any cross-instance traffic is a
    /// protocol bug, not a fault to tolerate.
    CrossInstanceSend {
        /// The sender.
        from: VertexId,
        /// The addressee outside the sender's instance.
        to: VertexId,
        /// The round in which the send was attempted.
        round: usize,
    },
    /// The graph exceeds the fast kernel's `u32`-indexed layout (vertex
    /// ids, arc ids, chain links and slot tables all reserve `u32::MAX` as
    /// a sentinel). Checked at run setup, so an oversized graph is a typed
    /// error instead of silent index truncation. The reference kernel has
    /// no such bound (`usize` throughout).
    CapacityExceeded {
        /// Vertices in the offending graph.
        nodes: usize,
        /// Directed arcs in the offending graph.
        arcs: usize,
        /// The exclusive limit both counts must stay under.
        limit: usize,
    },
}

/// Validates that an `n`-vertex, `arcs`-arc graph fits the fast kernel's
/// `u32`-indexed state (`u32::MAX` itself is reserved as the `NIL` /
/// bystander sentinel throughout). A pure function of the raw counts so
/// the boundary is unit-testable without materializing a 4-billion-arc
/// graph.
pub(crate) fn check_capacity(n: usize, arcs: usize) -> Result<(), SimError> {
    const LIMIT: usize = u32::MAX as usize;
    if n >= LIMIT || arcs >= LIMIT {
        return Err(SimError::CapacityExceeded {
            nodes: n,
            arcs,
            limit: LIMIT,
        });
    }
    Ok(())
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BudgetExceeded { from, to, words, budget, round } => write!(
                f,
                "bandwidth budget exceeded on edge {from}->{to} in round {round}: {words} words > budget {budget}"
            ),
            SimError::InvalidDestination { from, to } => {
                write!(f, "node {from} sent a message to non-neighbor {to}")
            }
            SimError::MaxRoundsExceeded { limit } => {
                write!(f, "simulation did not quiesce within {limit} rounds")
            }
            SimError::WatchdogTimeout { limit } => {
                write!(f, "watchdog: no quiescence within the {limit}-round budget")
            }
            SimError::DestinationCrashed { from, to, round } => {
                write!(f, "node {from} sent to crashed node {to} in round {round}")
            }
            SimError::CrossInstanceSend { from, to, round } => {
                write!(
                    f,
                    "node {from} sent to {to} outside its instance in round {round}"
                )
            }
            SimError::CapacityExceeded { nodes, arcs, limit } => {
                write!(
                    f,
                    "graph exceeds the fast kernel's u32 index space: {nodes} nodes / {arcs} arcs (both must be < {limit})"
                )
            }
        }
    }
}

impl Error for SimError {}

/// Result of a completed simulation: the final program states plus the cost
/// metrics.
#[derive(Debug)]
pub struct SimOutcome<P> {
    /// Final per-node program states (indexed by vertex id).
    pub programs: Vec<P>,
    /// Rounds/messages/congestion consumed by this run.
    pub metrics: Metrics,
}

/// One subproblem of a batched run ([`Simulator::run_many`]): a set of
/// active nodes and their programs. Nodes outside every instance are inert
/// bystanders — they run no program and may not be addressed.
///
/// Instances in one batch must be **vertex-disjoint**; the kernel enforces
/// both the disjointness (at batch setup) and the resulting isolation
/// invariant (any cross-instance send aborts the run with
/// [`SimError::CrossInstanceSend`]). Disjointness is what makes the batch
/// faithful: each instance observes exactly the deliveries, fault fates and
/// round numbering it would observe running alone, so per-instance outcomes
/// are bit-identical to individual [`Simulator::run`] calls.
#[derive(Debug)]
pub struct Instance<P> {
    /// Active nodes, ascending by vertex id.
    pub(crate) members: Vec<VertexId>,
    /// Programs aligned with `members`.
    pub(crate) programs: Vec<P>,
}

impl<P> Instance<P> {
    /// Builds an instance from `(node, program)` pairs (any order; sorted
    /// internally).
    ///
    /// # Panics
    ///
    /// Panics if the same node appears twice.
    pub fn new(nodes: Vec<(VertexId, P)>) -> Self {
        let mut nodes = nodes;
        nodes.sort_by_key(|&(v, _)| v);
        for pair in nodes.windows(2) {
            assert_ne!(pair[0].0, pair[1].0, "duplicate instance member");
        }
        let mut members = Vec::with_capacity(nodes.len());
        let mut programs = Vec::with_capacity(nodes.len());
        for (v, p) in nodes {
            members.push(v);
            programs.push(p);
        }
        Instance { members, programs }
    }

    /// The instance's nodes, ascending.
    pub fn members(&self) -> &[VertexId] {
        &self.members
    }

    /// Number of active nodes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the instance has no nodes.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Maps every program through `f`, preserving the member set (used by
    /// the reliable-delivery wrapper to wrap/unwrap whole batches).
    pub fn map<Q>(self, f: impl FnMut(P) -> Q) -> Instance<Q> {
        Instance {
            members: self.members,
            programs: self.programs.into_iter().map(f).collect(),
        }
    }
}

/// Final state of one instance of a batched run.
#[derive(Debug)]
pub struct InstanceOutcome<P> {
    /// The instance's nodes, ascending (as passed to [`Instance::new`]).
    pub members: Vec<VertexId>,
    /// Final program states, aligned with `members`.
    pub programs: Vec<P>,
    /// What this instance would have cost running alone: `rounds` is the
    /// last round in which the instance was live, the remaining counters
    /// cover only the instance's own traffic. Bit-identical to the metrics
    /// of an individual [`Simulator::run`] over the same subproblem.
    pub metrics: Metrics,
}

impl<P> InstanceOutcome<P> {
    /// The final program of member `v`, if `v` belongs to this instance.
    pub fn program(&self, v: VertexId) -> Option<&P> {
        self.members
            .binary_search(&v)
            .ok()
            .map(|i| &self.programs[i])
    }
}

/// Result of a batched run ([`Simulator::run_many`]).
#[derive(Debug)]
pub struct MultiOutcome<P> {
    /// Per-instance outcomes, in the order the instances were passed.
    pub instances: Vec<InstanceOutcome<P>>,
    /// Cost of the whole batch on the shared round lattice. `rounds` is the
    /// measured parallel round count — the maximum over the per-instance
    /// `rounds`, since the batch quiesces when its last instance does.
    pub metrics: Metrics,
}

/// Chain-link / index sentinel of the struct-of-arrays mailbox layout.
const NIL: u32 = u32::MAX;

/// `MsgPool` payload locator layout (one `u64` per entry):
/// bit 63 = packed flag; bits 48..63 = declared word count
/// (`POOL_WORDS_MASK` = "oversized, ask the payload"); bits 0..48 = bit
/// offset into the pool's [`BitSink`] (packed) or index into `native`.
const POOL_PACKED: u64 = 1 << 63;
const POOL_WORDS_SHIFT: u32 = 48;
const POOL_WORDS_MASK: u64 = 0x7FFF;
const POOL_PAYLOAD_MASK: u64 = (1 << POOL_WORDS_SHIFT) - 1;

/// Per-round message arena: every queued message of one mailbox plane, in a
/// single struct-of-arrays pool instead of one heap queue per arc.
///
/// An entry is a `u32` chain link (`next`) plus a `u64` payload locator
/// (`slot`). Payload words are *bit-packed to the run's declared B-bit word
/// width* (`B = ceil(log2 n)`, [`crate::message::word_bits`]) whenever the
/// message's [`Words::pack`] accepts — the budget machinery charges per
/// B-bit word, so storage finally matches the charge: a 2-word adjacency
/// message at n=1M costs 40 bits here instead of a heap-backed enum. A
/// message whose fields exceed B bits (or whose type has no packed form)
/// falls back to the `native` side table, so packing is lossless by
/// construction and invisible to outcomes.
struct MsgPool<M> {
    /// Next entry in the same arc's FIFO chain (`NIL` = tail).
    next: Vec<u32>,
    /// Payload locator per entry (see the layout constants above).
    slot: Vec<u64>,
    /// Natively stored payloads (packing declined). `Option` so the
    /// sequential drain can move messages out without shifting.
    native: Vec<Option<M>>,
    /// B-bit packed payload words of all packed entries, in push order.
    bits: BitSink,
    /// The run's word width: `ceil(log2 n)` bits.
    word_bits: u32,
}

impl<M: Words> MsgPool<M> {
    fn new() -> Self {
        MsgPool {
            next: Vec::new(),
            slot: Vec::new(),
            native: Vec::new(),
            bits: BitSink::new(),
            word_bits: 1,
        }
    }

    /// Drops all entries, keeping capacity.
    fn clear(&mut self) {
        self.next.clear();
        self.slot.clear();
        self.native.clear();
        self.bits.clear();
    }

    /// Appends `msg` as a fresh chain tail and returns its entry index.
    fn push(&mut self, msg: M) -> u32 {
        // The u32 index space is the construction-time capacity guard's
        // invariant; a round queueing 4 billion messages would have failed
        // `check_capacity` long before (entries per round are bounded by
        // arcs × budget plus fault copies).
        assert!(
            self.next.len() < NIL as usize,
            "message pool exhausted its u32 index space"
        );
        let e = self.next.len() as u32;
        self.next.push(NIL);
        let w = msg.words();
        let mark = self.bits.len_bits();
        if (w as u64) < POOL_WORDS_MASK
            && mark as u64 <= POOL_PAYLOAD_MASK
            && msg.pack(self.word_bits, &mut self.bits)
        {
            debug_assert_eq!(
                self.bits.len_bits() - mark,
                w * self.word_bits as usize,
                "pack must emit exactly words()*B bits"
            );
            self.slot
                .push(POOL_PACKED | ((w as u64) << POOL_WORDS_SHIFT) | mark as u64);
        } else {
            self.bits.truncate(mark); // discard a partial pack
            let words_tag = (w as u64).min(POOL_WORDS_MASK);
            self.slot
                .push((words_tag << POOL_WORDS_SHIFT) | self.native.len() as u64);
            self.native.push(Some(msg));
        }
        e
    }

    /// The declared word count of entry `e` (for trace emission without
    /// materializing the payload).
    fn words_of(&self, e: u32) -> usize {
        let s = self.slot[e as usize];
        let w = (s >> POOL_WORDS_SHIFT) & POOL_WORDS_MASK;
        if w == POOL_WORDS_MASK && s & POOL_PACKED == 0 {
            // Oversized native payload: the tag saturated, ask the message.
            self.native[(s & POOL_PAYLOAD_MASK) as usize]
                .as_ref()
                .expect("oversized payload still present")
                .words()
        } else {
            w as usize
        }
    }

    /// Materializes entry `e` without consuming it (parallel workers clone
    /// from the shared plane).
    fn get(&self, e: u32) -> M
    where
        M: Clone,
    {
        let s = self.slot[e as usize];
        if s & POOL_PACKED != 0 {
            let w = ((s >> POOL_WORDS_SHIFT) & POOL_WORDS_MASK) as u32;
            let mut r = self.bits.reader_at((s & POOL_PAYLOAD_MASK) as usize);
            let m = M::unpack(self.word_bits, &mut r).expect("packed payload round-trips");
            debug_assert_eq!(m.words(), w as usize);
            m
        } else {
            self.native[(s & POOL_PAYLOAD_MASK) as usize]
                .as_ref()
                .expect("native payload present")
                .clone()
        }
    }

    /// Moves entry `e` out (sequential delivery drains in place; packed
    /// entries decode, native entries move without a clone).
    fn take(&mut self, e: u32) -> M {
        let s = self.slot[e as usize];
        if s & POOL_PACKED != 0 {
            let mut r = self.bits.reader_at((s & POOL_PAYLOAD_MASK) as usize);
            M::unpack(self.word_bits, &mut r).expect("packed payload round-trips")
        } else {
            self.native[(s & POOL_PAYLOAD_MASK) as usize]
                .take()
                .expect("each queued message is taken exactly once")
        }
    }

    /// Heap bytes currently reserved (capacities, not lengths).
    fn memory_bytes(&self) -> usize {
        self.next.capacity() * 4
            + self.slot.capacity() * 8
            + self.native.capacity() * std::mem::size_of::<Option<M>>()
            + self.bits.memory_bytes()
    }
}

/// One direction of the double-buffered mailbox plane, struct-of-arrays:
/// the hot per-arc state is two flat `u32` vectors (`head` chain entry,
/// `words` budget counter — 8 bytes/arc/plane, down from the pre-refactor
/// ~80), and every payload lives in the shared [`MsgPool`] arena. A per-arc
/// FIFO is a `NIL`-terminated chain through `pool.next`; an arc has exactly
/// one sender, so chain order is emission order, and the in-arcs of a node
/// — enumerated through the reverse-arc table in slot order — arrive
/// already sorted by sender id.
struct MailPlane<M> {
    /// First pool entry of each arc's FIFO (`NIL` = arc idle this round).
    head: Vec<u32>,
    /// Word total queued per arc this round (budget + congestion metrics).
    /// Saturating `u32`: the budget comparison happens in `u64` before the
    /// store, and a physical arc cannot carry 4 billion words in a round.
    words: Vec<u32>,
    /// This round's message arena.
    pool: MsgPool<M>,
    /// Arc ids with at least one queued message (each exactly once).
    touched: Vec<u32>,
    /// Recipients in first-delivery order (each exactly once).
    recipients: Vec<VertexId>,
    /// Total queued messages across all arcs.
    msg_count: usize,
}

impl<M: Words> MailPlane<M> {
    fn new() -> Self {
        MailPlane {
            head: Vec::new(),
            words: Vec::new(),
            pool: MsgPool::new(),
            touched: Vec::new(),
            recipients: Vec::new(),
            msg_count: 0,
        }
    }

    /// Sizes and clears the plane for a run over `arcs` arcs with
    /// `word_bits`-bit words, retaining previously allocated capacity
    /// (sequential writes over warm memory — much cheaper than fresh
    /// page-faulting allocations).
    fn prepare(&mut self, arcs: usize, word_bits: u32) {
        self.head.clear();
        self.head.resize(arcs, NIL);
        self.words.clear();
        self.words.resize(arcs, 0);
        self.pool.clear();
        self.pool.word_bits = word_bits;
        self.touched.clear();
        self.recipients.clear();
        self.msg_count = 0;
    }

    /// Appends `msg` to arc `a`'s FIFO and schedules `dest` for
    /// `deliver_round` (word accounting is the caller's job — the fault-free
    /// path folds it into its budget check). The tail walk is `O(queue
    /// length)`, which the budget bounds by a small constant.
    fn push(
        &mut self,
        recipient_round: &mut [usize],
        a: usize,
        dest: VertexId,
        deliver_round: usize,
        msg: M,
    ) {
        let e = self.pool.push(msg);
        if self.head[a] == NIL {
            self.head[a] = e;
            self.touched.push(a as u32);
        } else {
            let mut t = self.head[a] as usize;
            while self.pool.next[t] != NIL {
                t = self.pool.next[t] as usize;
            }
            self.pool.next[t] = e;
        }
        self.msg_count += 1;
        if recipient_round[dest.index()] != deliver_round {
            recipient_round[dest.index()] = deliver_round;
            self.recipients.push(dest);
        }
    }

    /// Messages currently queued on arc `a`.
    fn queue_len(&self, a: usize) -> usize {
        let mut n = 0;
        let mut e = self.head[a];
        while e != NIL {
            n += 1;
            e = self.pool.next[e as usize];
        }
        n
    }

    /// Ends a round: clears every touched arc's chain head and drops the
    /// round's pool. `O(touched)`, never `O(arcs)`; retains every buffer's
    /// capacity. After a sequential round the payloads are already taken
    /// (delivery drains them into inboxes); after a parallel round they
    /// are still in place (workers clone from the shared plane) and are
    /// dropped with the pool here.
    fn reset(&mut self) {
        for &a in &self.touched {
            let a = a as usize;
            self.words[a] = 0;
            self.head[a] = NIL;
        }
        self.pool.clear();
        self.touched.clear();
        self.recipients.clear();
        self.msg_count = 0;
    }

    /// Heap bytes currently reserved (capacities, not lengths).
    fn memory_bytes(&self) -> usize {
        self.head.capacity() * 4
            + self.words.capacity() * 4
            + self.pool.memory_bytes()
            + self.touched.capacity() * 4
            + self.recipients.capacity() * std::mem::size_of::<VertexId>()
    }
}

/// A reusable simulation kernel (see module docs): all round state —
/// mailbox planes, slot tables, scratch buffers — allocated before round 1
/// and only growing buffer capacities afterwards.
///
/// A `Simulator` can be reused across runs (over different graphs, programs
/// and configs of the same message type): every [`Simulator::run`] fully
/// reinitializes the logical state but *retains buffer capacity*, so
/// repeated simulations — the embedder's recursion, benchmark loops —
/// skip the multi-megabyte allocate/fault/free cycle of a cold start. The
/// free function [`run`] is the one-shot convenience wrapper.
pub struct Simulator<M> {
    /// Deliveries of the current round.
    cur: MailPlane<M>,
    /// Sends accumulating for the next round.
    nxt: MailPlane<M>,
    /// Epoch-stamped `O(1)` neighbor-slot table: `slot_val[v]` is valid iff
    /// `slot_epoch[v]` equals the current sender's epoch.
    slot_epoch: Vec<u64>,
    /// Slot of `v` in the current sender's neighbor list.
    slot_val: Vec<u32>,
    /// Monotone counter distinguishing senders' stamping passes.
    sender_epoch: u64,
    /// `recipient_round[v] == r` iff `v` is already scheduled to receive in
    /// round `r` (rounds increase strictly, so no clearing is needed).
    recipient_round: Vec<usize>,
    /// First budget violation observed while recording sends, reported at
    /// the start of the delivery round (after the max-rounds check) to
    /// match the reference kernel's observable error ordering.
    pending_overflow: Option<SimError>,
    /// Sequential delivery scratch: one cache-sized block of inboxes at a
    /// time, concatenated (see `deliver_sequential`).
    seq_inbox: Vec<(VertexId, M)>,
    /// Sequential delivery scratch: end offset of each block recipient's
    /// slice in `seq_inbox`.
    seq_bounds: Vec<u32>,
    /// Whether this run has a non-empty fault plan. Cached so the round
    /// loop's fault hooks cost one predictable branch when faults are off.
    fault_mode: bool,
    /// Per-vertex crash round (`usize::MAX` = never). Fault mode only.
    crashed_at: Vec<usize>,
    /// Words the protocol *attempted* to send per arc this round (budget
    /// enforcement under faults — dropped traffic still counts against the
    /// sender's bandwidth). Fault mode only.
    att_words: Vec<u64>,
    /// Attempted-message index `k` per arc this round — the fault schedule's
    /// per-link sequence coordinate. Fault mode only.
    att_seq: Vec<u32>,
    /// `ran_round[v] == r` iff `v` already executed `on_round` in round `r`
    /// (distinct from `recipient_round`, which is re-stamped to `r + 1` as
    /// soon as someone addresses `v` for the next round). Fault mode only,
    /// for the timer-tick sweep.
    ran_round: Vec<usize>,
    /// Arcs with attempted-send accounting to reset this round.
    att_dirty: Vec<u32>,
    /// Delay-faulted messages waiting for their arrival round.
    delayed: Vec<DelayedMsg<M>>,
    /// Batched runs only ([`Simulator::run_many`]): owning instance per
    /// vertex (`u32::MAX` = inert bystander). Empty in plain runs — the
    /// flag that keeps every batching branch off the `run` hot path.
    inst_of: Vec<u32>,
    /// Slot of each vertex within its instance's `members` (batched only).
    inst_slot: Vec<u32>,
    /// Per-instance metrics accumulated during a batched run.
    inst_metrics: Vec<Metrics>,
    /// Pending delay-faulted copies per instance (batched fault mode).
    inst_delayed: Vec<usize>,
    /// Whether an instance has live tick-wanting members (batched fault
    /// mode); recomputed each round like `tick_pending`.
    inst_tick: Vec<bool>,
    /// Scratch: which instances are live this round.
    inst_live: Vec<bool>,
    /// Batched runs only: flat program-table index per vertex (`u32::MAX`
    /// = bystander with no program). Member programs of all instances live
    /// in one flat table, in merged-vertex order, so the parallel delivery
    /// path can chunk them contiguously across workers.
    flat_slot: Vec<u32>,
    /// Per-worker scratch for the parallel delivery path (one entry per
    /// worker, capacity retained across rounds and runs).
    par_scratch: Vec<ParScratch<M>>,
}

/// Minimum recipients *per worker thread* in a round before an automatic
/// thread count engages the parallel delivery path; below this, clone-inbox
/// and fan-out overhead beat the win.
const PAR_AUTO_MIN_RECIPIENTS_PER_THREAD: usize = 256;

/// Recipients processed per block by the sequential delivery loop: all of a
/// block's inboxes are gathered from the `cur` plane first (a tight scan
/// over the chain/pool arrays), then its programs step. 256 recipients ×
/// a budget-bounded handful of small messages keeps the block's working
/// set inside L2 while amortizing the gather/step mode switch.
const SEQ_BLOCK: usize = 256;

/// How a run schedules delivery: worker count plus the per-round recipient
/// floor below which it steps sequentially anyway. Resolved once per run by
/// [`parallel_plan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelPlan {
    /// Worker threads phase A may fan out over (1 = always sequential).
    pub threads: usize,
    /// Minimum recipients in a round before the parallel path engages.
    pub min_recipients: usize,
}

/// Decides the delivery schedule for one run.
///
/// * An **explicit** [`SimConfig::threads`] pin is absolute: the requested
///   count runs with an engagement floor of 2, so the conformance suites
///   can force the parallel machinery onto tiny graphs on any host.
/// * An **automatic** count (`None`: `PLANAR_THREADS` or host parallelism,
///   already resolved to `resolved` by [`crate::pool::kernel_threads`]) is
///   capped at `cores` ([`crate::pool::available_cores`]) and engages only
///   with [`PAR_AUTO_MIN_RECIPIENTS_PER_THREAD`] recipients of per-round
///   work *per worker*. On a host without real parallelism the parallel
///   path is pure overhead — phase A clones every inbox and phase B
///   replays every send, all on one core — which is exactly the n≈100k
///   `threads=4` regression BENCH_kernel.json recorded; auto mode now
///   never selects it.
///
/// Outcomes are bit-identical either way; the plan only affects wall time.
pub fn parallel_plan(explicit: Option<usize>, resolved: usize, cores: usize) -> ParallelPlan {
    if explicit.is_some() {
        return ParallelPlan {
            threads: resolved,
            min_recipients: 2,
        };
    }
    let threads = resolved.min(cores.max(1));
    if threads <= 1 {
        ParallelPlan {
            threads: 1,
            min_recipients: usize::MAX,
        }
    } else {
        ParallelPlan {
            threads,
            min_recipients: threads * PAR_AUTO_MIN_RECIPIENTS_PER_THREAD,
        }
    }
}

/// Per-worker scratch for one parallel delivery phase: everything a worker
/// computes in phase A, replayed sequentially in phase B (see the module
/// docs). Buffers are retained across rounds.
struct ParScratch<M> {
    /// Indices into the round's shared recipient list owned by this
    /// worker's shard, in recipient-list order. Filled by the main thread
    /// before fan-out, so a worker visits exactly its own recipients
    /// instead of scanning (and re-deriving shard ownership for) the whole
    /// list — the old `O(workers × recipients)` scan.
    bucket: Vec<u32>,
    /// One record per recipient this worker handled, in the order the
    /// worker encountered them — i.e. recipient-list order restricted to
    /// this worker's shard.
    recs: Vec<ParRec>,
    /// Resolved sends of all this worker's recipients, concatenated in
    /// step order. `Option` so the replay can move each message out
    /// without shifting the buffer.
    resolved: Vec<Option<(u32, VertexId, M)>>,
    /// Per-worker inbox assembled for one recipient at a time (the
    /// parallel counterpart of `Simulator::inbox`).
    inbox: Vec<(VertexId, M)>,
    /// Replay cursor into `recs`.
    rec_cursor: usize,
}

/// One recipient's phase-A outcome: where its resolved sends end in the
/// worker's `resolved` buffer, and the validation error (if any) that
/// sequential execution would have hit while recording its sends.
struct ParRec {
    /// Recipient's index in the round's shared recipient list.
    r: u32,
    /// End of this recipient's sends in `resolved` (starts where the
    /// previous record ended).
    resolved_end: u32,
    /// Validation error to surface after this recipient's surviving sends
    /// are queued — matching the sequential path, which queues a sender's
    /// earlier messages before erroring on a later one.
    err: Option<SimError>,
}

impl<M> ParScratch<M> {
    fn new() -> Self {
        ParScratch {
            bucket: Vec::new(),
            recs: Vec::new(),
            resolved: Vec::new(),
            inbox: Vec::new(),
            rec_cursor: 0,
        }
    }

    /// Clears logical state for a fresh delivery phase, keeping capacity.
    fn begin(&mut self) {
        self.bucket.clear();
        self.recs.clear();
        self.resolved.clear();
        self.inbox.clear();
        self.rec_cursor = 0;
    }
}

/// A message held back by a delay fault until `round`.
struct DelayedMsg<M> {
    /// Arrival round.
    round: usize,
    /// The arc it travels on (fixes sender and slot order).
    arc: u32,
    /// The destination (redundant with `arc`, kept to avoid a reverse
    /// lookup on the hot injection path).
    dest: VertexId,
    /// The payload.
    msg: M,
}

impl<M: Words + Clone> Simulator<M> {
    /// Creates an empty simulator; buffers are sized lazily by each run.
    pub fn new() -> Self {
        Simulator {
            cur: MailPlane::new(),
            nxt: MailPlane::new(),
            slot_epoch: Vec::new(),
            slot_val: Vec::new(),
            sender_epoch: 0,
            recipient_round: Vec::new(),
            pending_overflow: None,
            seq_inbox: Vec::new(),
            seq_bounds: Vec::new(),
            fault_mode: false,
            crashed_at: Vec::new(),
            att_words: Vec::new(),
            att_seq: Vec::new(),
            ran_round: Vec::new(),
            att_dirty: Vec::new(),
            delayed: Vec::new(),
            inst_of: Vec::new(),
            inst_slot: Vec::new(),
            inst_metrics: Vec::new(),
            inst_delayed: Vec::new(),
            inst_tick: Vec::new(),
            inst_live: Vec::new(),
            flat_slot: Vec::new(),
            par_scratch: Vec::new(),
        }
    }

    /// Reinitializes all logical state for a run over `n` vertices and
    /// `arcs` arcs, keeping buffer capacity. Equivalent to a fresh
    /// `Simulator` — no state can leak between runs (including from a run
    /// that aborted mid-round with an error).
    fn prepare(&mut self, n: usize, arcs: usize, cfg: &SimConfig) {
        let word_bits = crate::message::word_bits(n) as u32;
        self.cur.prepare(arcs, word_bits);
        self.nxt.prepare(arcs, word_bits);
        self.slot_epoch.clear();
        self.slot_epoch.resize(n, 0);
        self.slot_val.clear();
        self.slot_val.resize(n, 0);
        self.sender_epoch = 0;
        self.recipient_round.clear();
        self.recipient_round.resize(n, usize::MAX);
        self.pending_overflow = None;
        self.seq_inbox.clear();
        self.seq_bounds.clear();
        self.delayed.clear();
        self.att_dirty.clear();
        // Leaving a previous batch's instance table in place would drag a
        // plain run onto the batched path; `run_many` repopulates it after
        // this reset.
        self.inst_of.clear();
        self.inst_slot.clear();
        self.inst_metrics.clear();
        self.inst_delayed.clear();
        self.inst_tick.clear();
        self.inst_live.clear();
        self.flat_slot.clear();
        for s in &mut self.par_scratch {
            s.begin();
        }
        self.fault_mode = !cfg.faults.is_empty();
        if self.fault_mode {
            self.crashed_at.clear();
            self.crashed_at.resize(n, usize::MAX);
            for &(v, r) in &cfg.faults.crashes {
                if v.index() < n {
                    let c = &mut self.crashed_at[v.index()];
                    *c = (*c).min(r);
                }
            }
            self.att_words.clear();
            self.att_words.resize(arcs, 0);
            self.att_seq.clear();
            self.att_seq.resize(arcs, 0);
            self.ran_round.clear();
            self.ran_round.resize(n, usize::MAX);
        } else {
            self.crashed_at.clear();
            self.att_words.clear();
            self.att_seq.clear();
            self.ran_round.clear();
        }
    }

    /// Heap bytes currently reserved by this simulator's buffers
    /// (capacities, not lengths — the figure that stays resident when the
    /// simulator is cached for reuse, see [`crate::session::KernelCache`]).
    /// The bench harness divides this by `n` for its bytes/node column.
    pub fn memory_bytes(&self) -> usize {
        let per_vertex = self.slot_epoch.capacity() * 8
            + self.slot_val.capacity() * 4
            + self.recipient_round.capacity() * 8
            + self.crashed_at.capacity() * 8
            + self.ran_round.capacity() * 8
            + self.inst_of.capacity() * 4
            + self.inst_slot.capacity() * 4
            + self.flat_slot.capacity() * 4;
        let fault = self.att_words.capacity() * 8
            + self.att_seq.capacity() * 4
            + self.att_dirty.capacity() * 4
            + self.delayed.capacity() * std::mem::size_of::<DelayedMsg<M>>();
        let scratch = self.seq_inbox.capacity() * std::mem::size_of::<(VertexId, M)>()
            + self.seq_bounds.capacity() * 4
            + self
                .par_scratch
                .iter()
                .map(|s| {
                    s.bucket.capacity() * 4
                        + s.recs.capacity() * std::mem::size_of::<ParRec>()
                        + s.resolved.capacity() * std::mem::size_of::<Option<(u32, VertexId, M)>>()
                        + s.inbox.capacity() * std::mem::size_of::<(VertexId, M)>()
                })
                .sum::<usize>();
        self.cur.memory_bytes() + self.nxt.memory_bytes() + per_vertex + fault + scratch
    }

    /// Queues one surviving message copy onto arc `a` of `plane` for
    /// delivery in round `deliver_round` (fault mode only; the fault-free
    /// path queues inline in [`Simulator::record_sends`]).
    fn queue_copy(
        plane: &mut MailPlane<M>,
        recipient_round: &mut [usize],
        a: usize,
        dest: VertexId,
        deliver_round: usize,
        msg: M,
    ) {
        plane.words[a] =
            (u64::from(plane.words[a]) + msg.words() as u64).min(u64::from(u32::MAX)) as u32;
        plane.push(recipient_round, a, dest, deliver_round, msg);
    }

    /// Records `from`'s outgoing messages (sent during `round`, delivered in
    /// `round + 1`) into the `nxt` plane; in fault mode, resolves each
    /// message's fate first (see [`crate::faults`]).
    fn record_sends(
        &mut self,
        idx: &ArcIndex,
        cfg: &SimConfig,
        from: VertexId,
        round: usize,
        out: Vec<(VertexId, M)>,
        metrics: &mut Metrics,
    ) -> Result<(), SimError> {
        if out.is_empty() {
            return Ok(());
        }
        // Batched runs enforce instance isolation per send; `u32::MAX`
        // doubles as "not batched" (plain runs have an empty table).
        let from_inst = if self.inst_of.is_empty() {
            u32::MAX
        } else {
            self.inst_of[from.index()]
        };
        // Stamp this sender's neighbor slots: every later lookup is O(1).
        self.sender_epoch += 1;
        for (slot, _, w) in idx.out_arcs(from) {
            self.slot_epoch[w.index()] = self.sender_epoch;
            self.slot_val[w.index()] = slot as u32;
        }
        for (dest, msg) in out {
            if dest.index() >= self.slot_epoch.len()
                || self.slot_epoch[dest.index()] != self.sender_epoch
            {
                return Err(SimError::InvalidDestination { from, to: dest });
            }
            if from_inst != u32::MAX && self.inst_of[dest.index()] != from_inst {
                return Err(SimError::CrossInstanceSend {
                    from,
                    to: dest,
                    round,
                });
            }
            let a = idx
                .arc_at(from, self.slot_val[dest.index()] as usize)
                .index();
            self.queue_resolved(cfg, from, a, dest, round, msg, metrics)?;
        }
        Ok(())
    }

    /// Queues one validated message from `from` on arc `a` to `dest`: trace
    /// emission, budget accounting, overflow detection and (in fault mode)
    /// fate resolution. The single queueing authority shared by the
    /// sequential path ([`Simulator::record_sends`]) and the parallel
    /// replay ([`Simulator::replay_shards`]) — bit-identical effects by
    /// construction.
    #[allow(clippy::too_many_arguments)]
    fn queue_resolved(
        &mut self,
        cfg: &SimConfig,
        from: VertexId,
        a: usize,
        dest: VertexId,
        round: usize,
        msg: M,
        metrics: &mut Metrics,
    ) -> Result<(), SimError> {
        let tracing = cfg.trace.is_on();
        let from_inst = if self.inst_of.is_empty() {
            u32::MAX
        } else {
            self.inst_of[from.index()]
        };
        {
            if tracing {
                cfg.trace.emit(TraceEvent::Send {
                    round,
                    from,
                    to: dest,
                    words: msg.words(),
                });
            }
            if !self.fault_mode {
                // Fault-free fast path: queue inline on the `nxt` plane.
                // The budget comparison (and the reported total) happens in
                // u64 before the saturating u32 store, so the observable
                // error is exact.
                let plane = &mut self.nxt;
                let total = u64::from(plane.words[a]) + msg.words() as u64;
                plane.words[a] = total.min(u64::from(u32::MAX)) as u32;
                if total > cfg.budget_words as u64 && self.pending_overflow.is_none() {
                    self.pending_overflow = Some(SimError::BudgetExceeded {
                        from,
                        to: dest,
                        words: total as usize,
                        budget: cfg.budget_words,
                        round: round + 1,
                    });
                }
                plane.push(&mut self.recipient_round, a, dest, round + 1, msg);
                return Ok(());
            }

            // Fault mode. Budget accounting charges *attempted* words — a
            // protocol cannot exceed its bandwidth just because the channel
            // happened to drop the excess.
            if self.att_seq[a] == 0 && self.att_words[a] == 0 {
                self.att_dirty.push(a as u32);
            }
            let k = self.att_seq[a];
            self.att_seq[a] += 1;
            self.att_words[a] += msg.words() as u64;
            if self.att_words[a] > cfg.budget_words as u64 && self.pending_overflow.is_none() {
                self.pending_overflow = Some(SimError::BudgetExceeded {
                    from,
                    to: dest,
                    words: self.att_words[a] as usize,
                    budget: cfg.budget_words,
                    round: round + 1,
                });
            }
            if self.crashed_at[dest.index()] <= round {
                match cfg.faults.on_crashed_send {
                    CrashPolicy::DropSilently => {
                        metrics.dropped += 1;
                        if from_inst != u32::MAX {
                            self.inst_metrics[from_inst as usize].dropped += 1;
                        }
                        if tracing {
                            cfg.trace.emit(TraceEvent::Drop {
                                round,
                                from,
                                to: dest,
                                words: msg.words(),
                            });
                        }
                        return Ok(());
                    }
                    CrashPolicy::Error => {
                        return Err(SimError::DestinationCrashed {
                            from,
                            to: dest,
                            round,
                        });
                    }
                }
            }
            // `fate_canary` == `fate` unless the DST harness armed the
            // test-only `canary_skew` divergence canary (see `faults`);
            // the reference kernel always calls the honest `fate`.
            match cfg.faults.fate_canary(from, dest, round, k) {
                Fate::Dropped => {
                    metrics.dropped += 1;
                    if from_inst != u32::MAX {
                        self.inst_metrics[from_inst as usize].dropped += 1;
                    }
                    if tracing {
                        cfg.trace.emit(TraceEvent::Drop {
                            round,
                            from,
                            to: dest,
                            words: msg.words(),
                        });
                    }
                }
                Fate::Deliver { copies, delay } => {
                    if copies > 1 {
                        metrics.duplicated += usize::from(copies) - 1;
                        if from_inst != u32::MAX {
                            self.inst_metrics[from_inst as usize].duplicated +=
                                usize::from(copies) - 1;
                        }
                        if tracing {
                            for _ in 1..copies {
                                cfg.trace.emit(TraceEvent::Duplicate {
                                    round,
                                    from,
                                    to: dest,
                                    words: msg.words(),
                                });
                            }
                        }
                    }
                    if delay > 0 {
                        metrics.delayed += 1;
                        if from_inst != u32::MAX {
                            self.inst_metrics[from_inst as usize].delayed += 1;
                        }
                        if tracing {
                            cfg.trace.emit(TraceEvent::Delay {
                                round,
                                from,
                                to: dest,
                                words: msg.words(),
                                deliver_round: round + 1 + delay,
                            });
                        }
                    }
                    let deliver = round + 1 + delay;
                    if deliver >= self.crashed_at[dest.index()] {
                        // Crash-stop: copies arriving at or after the
                        // destination's crash round vanish in transit.
                        metrics.dropped += usize::from(copies);
                        if from_inst != u32::MAX {
                            self.inst_metrics[from_inst as usize].dropped += usize::from(copies);
                        }
                        if tracing {
                            for _ in 0..copies {
                                cfg.trace.emit(TraceEvent::Drop {
                                    round,
                                    from,
                                    to: dest,
                                    words: msg.words(),
                                });
                            }
                        }
                        return Ok(());
                    }
                    // Duplicate copies travel together and stay adjacent.
                    for _ in 1..copies {
                        if delay == 0 {
                            Self::queue_copy(
                                &mut self.nxt,
                                &mut self.recipient_round,
                                a,
                                dest,
                                deliver,
                                msg.clone(),
                            );
                        } else {
                            self.delayed.push(DelayedMsg {
                                round: deliver,
                                arc: a as u32,
                                dest,
                                msg: msg.clone(),
                            });
                            if from_inst != u32::MAX {
                                self.inst_delayed[from_inst as usize] += 1;
                            }
                        }
                    }
                    if delay == 0 {
                        Self::queue_copy(
                            &mut self.nxt,
                            &mut self.recipient_round,
                            a,
                            dest,
                            deliver,
                            msg,
                        );
                    } else {
                        self.delayed.push(DelayedMsg {
                            round: deliver,
                            arc: a as u32,
                            dest,
                            msg,
                        });
                        if from_inst != u32::MAX {
                            self.inst_delayed[from_inst as usize] += 1;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// One round of parallel delivery (see the module docs): phase A fans
    /// recipient stepping out over `threads` workers on contiguous chunks
    /// of `progs` (chunk size `ceil(len / threads)`, so a vertex's owner
    /// is a pure function of the layout), phase B replays the buffered
    /// sends sequentially in recipient order. `progs` is the flat program
    /// table — `Vec<P>` indexed by vertex for solo runs, `Vec<Option<P>>`
    /// indexed by `flat_slot` for batched runs — with `step` abstracting
    /// the `on_round` dispatch between the two.
    ///
    /// Bit-identical to the sequential delivery loop at every thread
    /// count; leaves `cur`'s queues intact for [`MailPlane::reset`].
    #[allow(clippy::too_many_arguments)]
    fn deliver_parallel<T, F>(
        &mut self,
        g: &Graph,
        idx: &ArcIndex,
        cfg: &SimConfig,
        round: usize,
        threads: usize,
        progs: &mut [T],
        step: &F,
        metrics: &mut Metrics,
    ) -> Result<(), SimError>
    where
        M: Send + Sync,
        T: Send,
        F: Fn(&mut T, &NodeCtx<'_>, &[(VertexId, M)]) -> Vec<(VertexId, M)> + Sync,
    {
        let chunk = progs.len().div_ceil(threads).max(1);
        let shard_count = progs.len().div_ceil(chunk);
        if self.par_scratch.len() < shard_count {
            self.par_scratch.resize_with(shard_count, ParScratch::new);
        }
        // Bucket the recipient list by owning shard up front (one O(n)
        // pass on the main thread), so each worker visits exactly its own
        // recipients instead of every worker rescanning the full list.
        for s in &mut self.par_scratch {
            s.begin();
        }
        for (r, &v) in self.cur.recipients.iter().enumerate() {
            let fi = if self.flat_slot.is_empty() {
                v.index()
            } else {
                self.flat_slot[v.index()] as usize
            };
            self.par_scratch[fi / chunk].bucket.push(r as u32);
        }

        // Phase A: parallel, pure compute. Workers read the `cur` plane and
        // the instance tables through shared references and mutate only
        // their own program chunk and scratch.
        {
            let Simulator {
                cur,
                par_scratch,
                inst_of,
                flat_slot,
                ..
            } = &mut *self;
            let cur = &*cur;
            let inst_of = &*inst_of;
            let flat_slot = &*flat_slot;
            let mut shards: Vec<(&mut ParScratch<M>, &mut [T])> = par_scratch
                .iter_mut()
                .zip(progs.chunks_mut(chunk))
                .collect();
            crate::pool::fan_out_mut(&mut shards, |w, shard| {
                let (scratch, slice) = shard;
                let scratch: &mut ParScratch<M> = scratch;
                let slice: &mut [T] = slice;
                let lo = w * chunk;
                for i in 0..scratch.bucket.len() {
                    let r = scratch.bucket[i] as usize;
                    let v = cur.recipients[r];
                    let fi = if flat_slot.is_empty() {
                        v.index()
                    } else {
                        flat_slot[v.index()] as usize
                    };
                    // Clone the inbox from the shared plane — same content
                    // and order as the sequential path's draining takes
                    // (in-arcs in slot order, chain order per arc).
                    scratch.inbox.clear();
                    for (_, a, from) in idx.out_arcs(v) {
                        let b = idx.rev(a).index();
                        let mut e = cur.head[b];
                        while e != NIL {
                            scratch.inbox.push((from, cur.pool.get(e)));
                            e = cur.pool.next[e as usize];
                        }
                    }
                    let ctx = NodeCtx {
                        id: v,
                        neighbors: g.neighbors(v),
                        round,
                    };
                    let out = step(&mut slice[fi - lo], &ctx, &scratch.inbox);
                    // Resolve each send to its arc id; same validation and
                    // precedence as the sequential slot stamp. Sends before
                    // a validation error are kept (the sequential path
                    // queues them before erroring); anything after it is
                    // discarded unobserved.
                    let mut err = None;
                    for (dest, msg) in out {
                        match idx.arc(v, dest) {
                            Some(a) => {
                                if !inst_of.is_empty()
                                    && inst_of[dest.index()] != inst_of[v.index()]
                                {
                                    err = Some(SimError::CrossInstanceSend {
                                        from: v,
                                        to: dest,
                                        round,
                                    });
                                    break;
                                }
                                scratch.resolved.push(Some((a.index() as u32, dest, msg)));
                            }
                            None => {
                                err = Some(SimError::InvalidDestination { from: v, to: dest });
                                break;
                            }
                        }
                    }
                    scratch.recs.push(ParRec {
                        r: r as u32,
                        resolved_end: scratch.resolved.len() as u32,
                        err,
                    });
                }
            });
        }

        // Phase B: sequential replay in canonical recipient order.
        let mut scratches = std::mem::take(&mut self.par_scratch);
        let result = self.replay_shards(idx, cfg, round, chunk, &mut scratches, metrics);
        self.par_scratch = scratches;
        result
    }

    /// Phase B of [`Simulator::deliver_parallel`]: walks the recipient
    /// list in its original order, emits each recipient's `Deliver` events
    /// from the still-intact `cur` plane, then pushes its buffered sends
    /// through [`Simulator::queue_resolved`] — the exact sequence of
    /// shared-state effects (trace, budgets, fates, metrics, errors) the
    /// sequential loop produces.
    fn replay_shards(
        &mut self,
        idx: &ArcIndex,
        cfg: &SimConfig,
        round: usize,
        chunk: usize,
        scratches: &mut [ParScratch<M>],
        metrics: &mut Metrics,
    ) -> Result<(), SimError> {
        let tracing = cfg.trace.is_on();
        for r in 0..self.cur.recipients.len() {
            let v = self.cur.recipients[r];
            let fi = if self.flat_slot.is_empty() {
                v.index()
            } else {
                self.flat_slot[v.index()] as usize
            };
            let w = fi / chunk;
            let (start, end, err) = {
                let scratch = &mut scratches[w];
                let at = scratch.rec_cursor;
                scratch.rec_cursor += 1;
                let start = if at == 0 {
                    0
                } else {
                    scratch.recs[at - 1].resolved_end as usize
                };
                let rec = &mut scratch.recs[at];
                debug_assert_eq!(rec.r as usize, r, "shard replay out of sync");
                (start, rec.resolved_end as usize, rec.err.take())
            };
            if tracing {
                for (_, a, from) in idx.out_arcs(v) {
                    let b = idx.rev(a).index();
                    let mut e = self.cur.head[b];
                    while e != NIL {
                        cfg.trace.emit(TraceEvent::Deliver {
                            round,
                            from,
                            to: v,
                            words: self.cur.pool.words_of(e),
                        });
                        e = self.cur.pool.next[e as usize];
                    }
                }
            }
            for i in start..end {
                let (a, dest, msg) = scratches[w].resolved[i]
                    .take()
                    .expect("each resolved send is replayed exactly once");
                self.queue_resolved(cfg, v, a as usize, dest, round, msg, metrics)?;
            }
            if let Some(e) = err {
                return Err(e);
            }
        }
        Ok(())
    }

    /// One round of sequential delivery, blocked over cache-sized recipient
    /// chunks ([`SEQ_BLOCK`]): for each block, first *gather* every
    /// recipient's inbox out of the `cur` plane into one contiguous scratch
    /// buffer (a tight pass over the chain heads and the message pool —
    /// the cache-hostile part of the round), then *step* the block's
    /// programs over their slices. Sends during the step phase land in the
    /// `nxt` plane, never `cur`, so gathering a block ahead of stepping it
    /// is invisible to programs; `Deliver` trace events are emitted at
    /// step time, so the event stream interleaves exactly like an
    /// unblocked loop. `progs`/`step` abstract solo vs batched dispatch as
    /// in [`Simulator::deliver_parallel`].
    #[allow(clippy::too_many_arguments)]
    fn deliver_sequential<T, F>(
        &mut self,
        g: &Graph,
        idx: &ArcIndex,
        cfg: &SimConfig,
        round: usize,
        progs: &mut [T],
        step: &F,
        metrics: &mut Metrics,
    ) -> Result<(), SimError>
    where
        F: Fn(&mut T, &NodeCtx<'_>, &[(VertexId, M)]) -> Vec<(VertexId, M)>,
    {
        let tracing = cfg.trace.is_on();
        let nrec = self.cur.recipients.len();
        let mut inboxes = std::mem::take(&mut self.seq_inbox);
        let mut bounds = std::mem::take(&mut self.seq_bounds);
        let mut result = Ok(());
        'blocks: for lo in (0..nrec).step_by(SEQ_BLOCK) {
            let hi = (lo + SEQ_BLOCK).min(nrec);
            inboxes.clear();
            bounds.clear();
            for r in lo..hi {
                let v = self.cur.recipients[r];
                // In-arcs in slot order == sender-id order (sorted
                // adjacency); chain order per arc == emission order.
                for (_, a, w) in idx.out_arcs(v) {
                    let b = idx.rev(a).index();
                    let mut e = self.cur.head[b];
                    if e != NIL {
                        self.cur.head[b] = NIL;
                        while e != NIL {
                            inboxes.push((w, self.cur.pool.take(e)));
                            e = self.cur.pool.next[e as usize];
                        }
                    }
                }
                bounds.push(inboxes.len() as u32);
            }
            let mut start = 0usize;
            for r in lo..hi {
                let v = self.cur.recipients[r];
                let end = bounds[r - lo] as usize;
                let inbox = &inboxes[start..end];
                start = end;
                if tracing {
                    for (from, msg) in inbox {
                        cfg.trace.emit(TraceEvent::Deliver {
                            round,
                            from: *from,
                            to: v,
                            words: msg.words(),
                        });
                    }
                }
                let fi = if self.flat_slot.is_empty() {
                    v.index()
                } else {
                    self.flat_slot[v.index()] as usize
                };
                let ctx = NodeCtx {
                    id: v,
                    neighbors: g.neighbors(v),
                    round,
                };
                let out = step(&mut progs[fi], &ctx, inbox);
                if let Err(e) = self.record_sends(idx, cfg, v, round, out, metrics) {
                    result = Err(e);
                    break 'blocks;
                }
            }
        }
        self.seq_inbox = inboxes;
        self.seq_bounds = bounds;
        result
    }

    /// Runs `programs` (one per vertex of `g`, indexed by vertex id) to
    /// quiescence, reusing this simulator's buffers.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] on budget violations, invalid destinations,
    /// or exceeding `cfg.max_rounds`.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != g.vertex_count()`.
    pub fn run<P: NodeProgram<Msg = M> + Send>(
        &mut self,
        g: &Graph,
        programs: Vec<P>,
        cfg: &SimConfig,
    ) -> Result<SimOutcome<P>, SimError>
    where
        M: Send + Sync,
    {
        let idx = g.arc_index();
        self.run_with_index(g, &idx, programs, cfg)
    }

    /// Like [`Simulator::run`] but with a caller-provided [`ArcIndex`] for
    /// `g`, so sessions that run many phases over one graph (see
    /// [`crate::session::SimSession`]) build the CSR arc tables once.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] like [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != g.vertex_count()` or if `idx` was not
    /// built from `g`.
    pub fn run_with_index<P: NodeProgram<Msg = M> + Send>(
        &mut self,
        g: &Graph,
        idx: &ArcIndex,
        mut programs: Vec<P>,
        cfg: &SimConfig,
    ) -> Result<SimOutcome<P>, SimError>
    where
        M: Send + Sync,
    {
        assert_eq!(
            programs.len(),
            g.vertex_count(),
            "need exactly one program per vertex"
        );
        assert_eq!(
            idx.arc_count(),
            2 * g.edge_count(),
            "arc index does not match the graph"
        );
        check_capacity(g.vertex_count(), idx.arc_count())?;
        let mut metrics = Metrics::new();
        self.prepare(g.vertex_count(), idx.arc_count(), cfg);
        let kernel = self;
        let tracing = cfg.trace.is_on();
        if tracing {
            cfg.trace.emit(TraceEvent::RunStart {
                nodes: g.vertex_count(),
                budget_words: cfg.budget_words,
            });
            // Round-0 crash victims never act; announce them up front.
            for (i, &r) in kernel.crashed_at.iter().enumerate() {
                if r == 0 {
                    cfg.trace.emit(TraceEvent::Crash {
                        round: 0,
                        node: VertexId::from_index(i),
                    });
                }
            }
        }

        // Init phase (round 0): sends land in the `nxt` plane for round 1.
        for (i, program) in programs.iter_mut().enumerate() {
            let v = VertexId::from_index(i);
            if kernel.fault_mode && kernel.crashed_at[i] == 0 {
                continue; // crashed before the run: never acts at all
            }
            let ctx = NodeCtx {
                id: v,
                neighbors: g.neighbors(v),
                round: 0,
            };
            let out = program.init(&ctx);
            kernel.record_sends(idx, cfg, v, 0, out, &mut metrics)?;
        }
        // Does any live node still want empty-inbox wakeups next round?
        let mut tick_pending = kernel.fault_mode
            && programs
                .iter()
                .enumerate()
                .any(|(i, p)| kernel.crashed_at[i] > 1 && p.wants_tick());

        // Delivery schedule (see [`parallel_plan`]): resolved once per run.
        let plan = parallel_plan(
            cfg.threads,
            crate::pool::kernel_threads(cfg.threads),
            crate::pool::available_cores(),
        );

        let mut round = 0usize;
        loop {
            // Sends accumulated last round become this round's deliveries.
            std::mem::swap(&mut kernel.cur, &mut kernel.nxt);
            if kernel.cur.msg_count == 0
                && (!kernel.fault_mode || (kernel.delayed.is_empty() && !tick_pending))
            {
                break; // quiescence
            }
            round += 1;
            if let Some(limit) = cfg.watchdog {
                if round > limit {
                    if tracing {
                        cfg.trace.emit(TraceEvent::Watchdog { limit });
                    }
                    return Err(SimError::WatchdogTimeout { limit });
                }
            }
            if round > cfg.max_rounds {
                return Err(SimError::MaxRoundsExceeded {
                    limit: cfg.max_rounds,
                });
            }
            if let Some(overflow) = kernel.pending_overflow.take() {
                return Err(overflow);
            }
            if tracing {
                // Only rounds that actually deliver get a RoundStart: the
                // abort checks above come first, like the error ordering.
                cfg.trace.emit(TraceEvent::RoundStart { round });
                for (i, &r) in kernel.crashed_at.iter().enumerate() {
                    if r == round {
                        cfg.trace.emit(TraceEvent::Crash {
                            round,
                            node: VertexId::from_index(i),
                        });
                    }
                }
            }

            if kernel.fault_mode {
                // Fresh attempted-send accounting for this round's sends.
                for &a in &kernel.att_dirty {
                    kernel.att_words[a as usize] = 0;
                    kernel.att_seq[a as usize] = 0;
                }
                kernel.att_dirty.clear();
                // Inject delay-faulted messages due this round. Per arc they
                // land behind the on-time traffic already queued, in
                // `(send_round, k)` order — `delayed` is appended in send
                // order, so a stable sweep preserves it.
                if !kernel.delayed.is_empty() {
                    let pending = std::mem::take(&mut kernel.delayed);
                    for d in pending {
                        if d.round == round {
                            Self::queue_copy(
                                &mut kernel.cur,
                                &mut kernel.recipient_round,
                                d.arc as usize,
                                d.dest,
                                round,
                                d.msg,
                            );
                        } else {
                            kernel.delayed.push(d);
                        }
                    }
                }
            }

            // Congestion accounting over the active arcs only.
            let mut round_words = 0usize;
            let mut round_max = 0usize;
            for &a in &kernel.cur.touched {
                let w = kernel.cur.words[a as usize] as usize;
                round_words += w;
                round_max = round_max.max(w);
            }
            metrics.max_words_edge_round = metrics.max_words_edge_round.max(round_max);
            metrics.messages += kernel.cur.msg_count;
            metrics.words += round_words;

            // Deliver and run recipients in first-delivery order (outcome
            // independent of this order; see module docs).
            let step =
                |p: &mut P, ctx: &NodeCtx<'_>, inbox: &[(VertexId, M)]| p.on_round(ctx, inbox);
            if plan.threads > 1 && kernel.cur.recipients.len() >= plan.min_recipients {
                kernel.deliver_parallel(
                    g,
                    idx,
                    cfg,
                    round,
                    plan.threads,
                    &mut programs,
                    &step,
                    &mut metrics,
                )?;
            } else {
                kernel.deliver_sequential(
                    g,
                    idx,
                    cfg,
                    round,
                    &mut programs,
                    &step,
                    &mut metrics,
                )?;
            }
            if kernel.fault_mode {
                // Timer ticks: live non-recipients that asked for empty-inbox
                // wakeups (ascending vertex id, matching the reference).
                for &v in &kernel.cur.recipients {
                    kernel.ran_round[v.index()] = round;
                }
                for (i, program) in programs.iter_mut().enumerate() {
                    if kernel.ran_round[i] == round
                        || kernel.crashed_at[i] <= round
                        || !program.wants_tick()
                    {
                        continue;
                    }
                    let v = VertexId::from_index(i);
                    let ctx = NodeCtx {
                        id: v,
                        neighbors: g.neighbors(v),
                        round,
                    };
                    let out = program.on_round(&ctx, &[]);
                    kernel.record_sends(idx, cfg, v, round, out, &mut metrics)?;
                }
                tick_pending = programs
                    .iter()
                    .enumerate()
                    .any(|(i, p)| kernel.crashed_at[i] > round + 1 && p.wants_tick());
            }
            if tracing {
                cfg.trace.emit(TraceEvent::RoundEnd {
                    round,
                    messages: kernel.cur.msg_count,
                    words: round_words,
                    max_words_edge: round_max,
                });
            }
            kernel.cur.reset();
        }
        metrics.rounds = round;
        if kernel.fault_mode {
            // Count from the kernel's own crash table rather than
            // `FaultPlan::crashed_by`: the plan may name vertices outside
            // this graph (it is graph-agnostic), and a node that does not
            // exist cannot crash.
            metrics.crashed_nodes = kernel.crashed_at.iter().filter(|&&r| r <= round).count();
        }
        if tracing {
            cfg.trace.emit(TraceEvent::RunEnd { metrics });
        }
        Ok(SimOutcome { programs, metrics })
    }

    /// Runs several vertex-disjoint [`Instance`]s to quiescence **in one
    /// shared round lattice** over `g`: one `prepare`, one mailbox arena,
    /// one round loop for the whole level of subproblems, instead of one
    /// kernel invocation each.
    ///
    /// Because the instances are vertex-disjoint (asserted) and may not
    /// exchange messages (enforced per send), each instance's execution is
    /// bit-identical to what an individual [`Simulator::run`] over the same
    /// subproblem would produce — deliveries, fault fates (keyed on
    /// `(from, to, round, k)` with per-arc `k`) and round numbering all
    /// coincide. The per-instance [`InstanceOutcome::metrics`] are
    /// therefore the *measured* parallel costs: the batch's
    /// [`MultiOutcome::metrics`]`.rounds` is their maximum, which is
    /// exactly the value [`Metrics::join_parallel`] composes analytically.
    ///
    /// Nodes of `g` not claimed by any instance are inert bystanders.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] like [`Simulator::run`], plus
    /// [`SimError::CrossInstanceSend`] if any program violates instance
    /// isolation. Abort checks (watchdog, max rounds, pending overflow) act
    /// on the shared lattice: the batch aborts iff some instance running
    /// alone would have aborted at that round.
    ///
    /// # Panics
    ///
    /// Panics if instances overlap or name vertices outside `g`.
    pub fn run_many<P: NodeProgram<Msg = M> + Send>(
        &mut self,
        g: &Graph,
        instances: Vec<Instance<P>>,
        cfg: &SimConfig,
    ) -> Result<MultiOutcome<P>, SimError>
    where
        M: Send + Sync,
    {
        let idx = g.arc_index();
        self.run_many_with_index(g, &idx, instances, cfg)
    }

    /// [`Simulator::run_many`] with a caller-provided [`ArcIndex`] (see
    /// [`Simulator::run_with_index`]).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] like [`Simulator::run_many`].
    ///
    /// # Panics
    ///
    /// Panics like [`Simulator::run_many`], or if `idx` was not built from
    /// `g`.
    pub fn run_many_with_index<P: NodeProgram<Msg = M> + Send>(
        &mut self,
        g: &Graph,
        idx: &ArcIndex,
        mut instances: Vec<Instance<P>>,
        cfg: &SimConfig,
    ) -> Result<MultiOutcome<P>, SimError>
    where
        M: Send + Sync,
    {
        let n = g.vertex_count();
        assert_eq!(
            idx.arc_count(),
            2 * g.edge_count(),
            "arc index does not match the graph"
        );
        let k = instances.len();
        check_capacity(n, idx.arc_count())?;
        let mut metrics = Metrics::new();
        self.prepare(n, idx.arc_count(), cfg);
        let kernel = self;
        kernel.inst_of.resize(n, u32::MAX);
        kernel.inst_slot.resize(n, u32::MAX);
        for (i, inst) in instances.iter().enumerate() {
            for (slot, &v) in inst.members.iter().enumerate() {
                assert!(v.index() < n, "instance member {v} outside the graph");
                assert_eq!(
                    kernel.inst_of[v.index()],
                    u32::MAX,
                    "instances must be vertex-disjoint; {v} claimed twice"
                );
                kernel.inst_of[v.index()] = i as u32;
                kernel.inst_slot[v.index()] = slot as u32;
            }
        }
        kernel.inst_metrics.resize(k, Metrics::new());
        kernel.inst_delayed.resize(k, 0);
        kernel.inst_tick.resize(k, false);
        kernel.inst_live.resize(k, false);
        // Flatten every instance's programs into one table in ascending
        // vertex order, addressed through `flat_slot` (`u32::MAX` =
        // bystander): the parallel delivery path chunks this table
        // contiguously across workers, and a batched level's members are
        // scattered across instances, so per-instance `Vec`s could not be
        // sharded evenly. Programs are reclaimed per instance at the end.
        let total: usize = instances.iter().map(|inst| inst.members.len()).sum();
        kernel.flat_slot.resize(n, u32::MAX);
        let mut flat: Vec<Option<P>> = Vec::with_capacity(total);
        for v in 0..n {
            if kernel.inst_of[v] != u32::MAX {
                kernel.flat_slot[v] = flat.len() as u32;
                flat.push(None);
            }
        }
        for inst in instances.iter_mut() {
            for (slot, p) in inst.programs.drain(..).enumerate() {
                let v = inst.members[slot];
                flat[kernel.flat_slot[v.index()] as usize] = Some(p);
            }
        }
        let tracing = cfg.trace.is_on();
        if tracing {
            cfg.trace.emit(TraceEvent::RunStart {
                nodes: n,
                budget_words: cfg.budget_words,
            });
            for (i, inst) in instances.iter().enumerate() {
                for &v in &inst.members {
                    cfg.trace.emit(TraceEvent::Assign {
                        instance: i,
                        node: v,
                    });
                }
            }
            for (i, &r) in kernel.crashed_at.iter().enumerate() {
                if r == 0 {
                    cfg.trace.emit(TraceEvent::Crash {
                        round: 0,
                        node: VertexId::from_index(i),
                    });
                }
            }
        }

        // Init phase (round 0): only instance members run programs, in
        // instance-major member order (same as before flattening).
        for inst in instances.iter() {
            for &v in &inst.members {
                if kernel.fault_mode && kernel.crashed_at[v.index()] == 0 {
                    continue;
                }
                let ctx = NodeCtx {
                    id: v,
                    neighbors: g.neighbors(v),
                    round: 0,
                };
                let out = flat[kernel.flat_slot[v.index()] as usize]
                    .as_mut()
                    .expect("member program")
                    .init(&ctx);
                kernel.record_sends(idx, cfg, v, 0, out, &mut metrics)?;
            }
        }
        let mut tick_pending = false;
        if kernel.fault_mode {
            for (i, inst) in instances.iter().enumerate() {
                kernel.inst_tick[i] = inst.members.iter().any(|&v| {
                    kernel.crashed_at[v.index()] > 1
                        && flat[kernel.flat_slot[v.index()] as usize]
                            .as_ref()
                            .expect("member program")
                            .wants_tick()
                });
                tick_pending |= kernel.inst_tick[i];
            }
        }

        // Delivery schedule, as in [`Simulator::run_with_index`].
        let plan = parallel_plan(
            cfg.threads,
            crate::pool::kernel_threads(cfg.threads),
            crate::pool::available_cores(),
        );

        let mut round = 0usize;
        loop {
            std::mem::swap(&mut kernel.cur, &mut kernel.nxt);
            if kernel.cur.msg_count == 0
                && (!kernel.fault_mode || (kernel.delayed.is_empty() && !tick_pending))
            {
                break; // quiescence of the whole batch
            }
            round += 1;
            if let Some(limit) = cfg.watchdog {
                if round > limit {
                    if tracing {
                        cfg.trace.emit(TraceEvent::Watchdog { limit });
                    }
                    return Err(SimError::WatchdogTimeout { limit });
                }
            }
            if round > cfg.max_rounds {
                return Err(SimError::MaxRoundsExceeded {
                    limit: cfg.max_rounds,
                });
            }
            if let Some(overflow) = kernel.pending_overflow.take() {
                return Err(overflow);
            }
            // Per-instance round attribution, *before* delayed injection —
            // the same predicate the individual run's quiescence check
            // evaluates: an instance is live in this round iff it has
            // deliveries queued, delayed traffic pending, or (fault mode) a
            // live program asking for timer ticks.
            for i in 0..k {
                kernel.inst_live[i] = kernel.inst_delayed[i] > 0 || kernel.inst_tick[i];
            }
            for &a in &kernel.cur.touched {
                let owner = kernel.inst_of[idx.head(ArcId(a)).index()];
                kernel.inst_live[owner as usize] = true;
            }
            for i in 0..k {
                if kernel.inst_live[i] {
                    kernel.inst_metrics[i].rounds = round;
                }
            }
            if tracing {
                cfg.trace.emit(TraceEvent::RoundStart { round });
                for (i, &r) in kernel.crashed_at.iter().enumerate() {
                    if r == round {
                        cfg.trace.emit(TraceEvent::Crash {
                            round,
                            node: VertexId::from_index(i),
                        });
                    }
                }
            }

            if kernel.fault_mode {
                for &a in &kernel.att_dirty {
                    kernel.att_words[a as usize] = 0;
                    kernel.att_seq[a as usize] = 0;
                }
                kernel.att_dirty.clear();
                if !kernel.delayed.is_empty() {
                    let pending = std::mem::take(&mut kernel.delayed);
                    for d in pending {
                        if d.round == round {
                            kernel.inst_delayed[kernel.inst_of[d.dest.index()] as usize] -= 1;
                            Self::queue_copy(
                                &mut kernel.cur,
                                &mut kernel.recipient_round,
                                d.arc as usize,
                                d.dest,
                                round,
                                d.msg,
                            );
                        } else {
                            kernel.delayed.push(d);
                        }
                    }
                }
            }

            // Congestion accounting: global totals plus per-instance
            // attribution (the delivery arc's head vertex owns the arc —
            // isolation guarantees sender and receiver share an instance).
            let mut round_words = 0usize;
            let mut round_max = 0usize;
            for &a in &kernel.cur.touched {
                let w = kernel.cur.words[a as usize] as usize;
                round_words += w;
                round_max = round_max.max(w);
                let im =
                    &mut kernel.inst_metrics[kernel.inst_of[idx.head(ArcId(a)).index()] as usize];
                im.messages += kernel.cur.queue_len(a as usize);
                im.words += w;
                im.max_words_edge_round = im.max_words_edge_round.max(w);
            }
            metrics.max_words_edge_round = metrics.max_words_edge_round.max(round_max);
            metrics.messages += kernel.cur.msg_count;
            metrics.words += round_words;

            let step = |p: &mut Option<P>, ctx: &NodeCtx<'_>, inbox: &[(VertexId, M)]| {
                p.as_mut().expect("member program").on_round(ctx, inbox)
            };
            if plan.threads > 1 && kernel.cur.recipients.len() >= plan.min_recipients {
                kernel.deliver_parallel(
                    g,
                    idx,
                    cfg,
                    round,
                    plan.threads,
                    &mut flat,
                    &step,
                    &mut metrics,
                )?;
            } else {
                kernel.deliver_sequential(g, idx, cfg, round, &mut flat, &step, &mut metrics)?;
            }
            if kernel.fault_mode {
                for &v in &kernel.cur.recipients {
                    kernel.ran_round[v.index()] = round;
                }
                // Timer ticks, ascending vertex id within each instance
                // (instances are independent, so inter-instance order
                // cannot influence outcomes).
                for inst in instances.iter() {
                    for &v in &inst.members {
                        let fi = kernel.flat_slot[v.index()] as usize;
                        if kernel.ran_round[v.index()] == round
                            || kernel.crashed_at[v.index()] <= round
                            || !flat[fi].as_ref().expect("member program").wants_tick()
                        {
                            continue;
                        }
                        let ctx = NodeCtx {
                            id: v,
                            neighbors: g.neighbors(v),
                            round,
                        };
                        let out = flat[fi]
                            .as_mut()
                            .expect("member program")
                            .on_round(&ctx, &[]);
                        kernel.record_sends(idx, cfg, v, round, out, &mut metrics)?;
                    }
                }
                tick_pending = false;
                for (i, inst) in instances.iter().enumerate() {
                    kernel.inst_tick[i] = inst.members.iter().any(|&v| {
                        kernel.crashed_at[v.index()] > round + 1
                            && flat[kernel.flat_slot[v.index()] as usize]
                                .as_ref()
                                .expect("member program")
                                .wants_tick()
                    });
                    tick_pending |= kernel.inst_tick[i];
                }
            }
            if tracing {
                cfg.trace.emit(TraceEvent::RoundEnd {
                    round,
                    messages: kernel.cur.msg_count,
                    words: round_words,
                    max_words_edge: round_max,
                });
            }
            kernel.cur.reset();
        }
        metrics.rounds = round;
        if kernel.fault_mode {
            metrics.crashed_nodes = kernel.crashed_at.iter().filter(|&&r| r <= round).count();
            // Mirror the individual run: it simulates the whole graph, so
            // its crash count covers every vertex crashed by *its* final
            // round — which for instance `i` is `inst_metrics[i].rounds`.
            for i in 0..k {
                let horizon = kernel.inst_metrics[i].rounds;
                kernel.inst_metrics[i].crashed_nodes =
                    kernel.crashed_at.iter().filter(|&&r| r <= horizon).count();
            }
        }
        if tracing {
            for (i, &m) in kernel.inst_metrics.iter().enumerate() {
                cfg.trace.emit(TraceEvent::InstanceEnd {
                    instance: i,
                    metrics: m,
                });
            }
            cfg.trace.emit(TraceEvent::RunEnd { metrics });
        }
        let instances = instances
            .into_iter()
            .enumerate()
            .map(|(i, inst)| InstanceOutcome {
                programs: inst
                    .members
                    .iter()
                    .map(|&v| {
                        flat[kernel.flat_slot[v.index()] as usize]
                            .take()
                            .expect("each member program is reclaimed exactly once")
                    })
                    .collect(),
                members: inst.members,
                metrics: kernel.inst_metrics[i],
            })
            .collect();
        Ok(MultiOutcome { instances, metrics })
    }
}

impl<M: Words + Clone> Default for Simulator<M> {
    fn default() -> Self {
        Simulator::new()
    }
}

/// Runs `programs` (one per vertex of `g`, indexed by vertex id) to
/// quiescence with a freshly allocated [`Simulator`].
///
/// Convenience wrapper around [`Simulator::run`]; callers that simulate
/// repeatedly should hold a `Simulator` and reuse it, which skips the
/// kernel's buffer allocations on every run after the first.
///
/// # Errors
///
/// Propagates [`SimError`] on budget violations, invalid destinations, or
/// exceeding `cfg.max_rounds`.
///
/// # Panics
///
/// Panics if `programs.len() != g.vertex_count()`.
pub fn run<P: NodeProgram + Send>(
    g: &Graph,
    programs: Vec<P>,
    cfg: &SimConfig,
) -> Result<SimOutcome<P>, SimError>
where
    P::Msg: Send + Sync,
{
    Simulator::new().run(g, programs, cfg)
}

/// Runs vertex-disjoint instances in one shared round lattice with a
/// freshly allocated [`Simulator`] (see [`Simulator::run_many`]).
///
/// # Errors
///
/// Propagates [`SimError`] like [`Simulator::run_many`].
///
/// # Panics
///
/// Panics if instances overlap or name vertices outside `g`.
pub fn run_many<P: NodeProgram + Send>(
    g: &Graph,
    instances: Vec<Instance<P>>,
    cfg: &SimConfig,
) -> Result<MultiOutcome<P>, SimError>
where
    P::Msg: Send + Sync,
{
    Simulator::new().run_many(g, instances, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial flooding program: forwards the largest value seen, once per
    /// improvement; `announced` guards the initial broadcast so a node that
    /// already flooded its own value in `init` does not re-announce it when
    /// an inferior value arrives.
    struct MaxFlood {
        best: u32,
        announced: bool,
    }

    impl NodeProgram for MaxFlood {
        type Msg = u32;

        fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
            self.announced = true;
            ctx.neighbors.iter().map(|&w| (w, self.best)).collect()
        }

        fn on_round(
            &mut self,
            ctx: &NodeCtx<'_>,
            inbox: &[(VertexId, u32)],
        ) -> Vec<(VertexId, u32)> {
            let incoming = inbox.iter().map(|&(_, v)| v).max().unwrap_or(0);
            if incoming > self.best || !self.announced {
                self.best = self.best.max(incoming);
                self.announced = true;
                ctx.neighbors.iter().map(|&w| (w, self.best)).collect()
            } else {
                Vec::new()
            }
        }
    }

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn flood_converges_in_diameter_rounds() {
        let n = 10;
        let g = path(n);
        let programs: Vec<MaxFlood> = (0..n)
            .map(|i| MaxFlood {
                best: i as u32,
                announced: false,
            })
            .collect();
        let out = run(&g, programs, &SimConfig::default()).unwrap();
        for p in &out.programs {
            assert_eq!(p.best, 9);
            assert!(p.announced);
        }
        // The max starts at one end of the path: n-1 rounds to cross, plus
        // one final (useless) echo round before quiescence.
        assert_eq!(out.metrics.rounds, n);
        assert!(out.metrics.max_words_edge_round <= DEFAULT_BUDGET_WORDS);
    }

    #[test]
    fn budget_violation_detected() {
        #[derive(Debug)]
        struct Blaster;
        impl NodeProgram for Blaster {
            type Msg = Vec<u32>;
            fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, Vec<u32>)> {
                if ctx.id == VertexId(0) {
                    vec![(VertexId(1), vec![0; 100])]
                } else {
                    Vec::new()
                }
            }
            fn on_round(
                &mut self,
                _: &NodeCtx<'_>,
                _: &[(VertexId, Vec<u32>)],
            ) -> Vec<(VertexId, Vec<u32>)> {
                Vec::new()
            }
        }
        let g = path(2);
        let err = run(&g, vec![Blaster, Blaster], &SimConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::BudgetExceeded { .. }));
    }

    #[test]
    fn invalid_destination_detected() {
        #[derive(Debug)]
        struct Wild;
        impl NodeProgram for Wild {
            type Msg = u32;
            fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
                if ctx.id == VertexId(0) {
                    vec![(VertexId(2), 1)] // not a neighbor on a path of 3
                } else {
                    Vec::new()
                }
            }
            fn on_round(&mut self, _: &NodeCtx<'_>, _: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
                Vec::new()
            }
        }
        let g = path(3);
        let err = run(&g, vec![Wild, Wild, Wild], &SimConfig::default()).unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidDestination {
                from: VertexId(0),
                to: VertexId(2)
            }
        );
    }

    #[test]
    fn out_of_range_destination_detected() {
        #[derive(Debug)]
        struct Wilder;
        impl NodeProgram for Wilder {
            type Msg = u32;
            fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
                if ctx.id == VertexId(0) {
                    vec![(VertexId(99), 1)] // beyond the vertex range
                } else {
                    Vec::new()
                }
            }
            fn on_round(&mut self, _: &NodeCtx<'_>, _: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
                Vec::new()
            }
        }
        let g = path(2);
        let err = run(&g, vec![Wilder, Wilder], &SimConfig::default()).unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidDestination {
                from: VertexId(0),
                to: VertexId(99)
            }
        );
    }

    #[test]
    fn max_rounds_guard() {
        /// Ping-pong forever between two nodes.
        #[derive(Debug)]
        struct PingPong;
        impl NodeProgram for PingPong {
            type Msg = u32;
            fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
                if ctx.id == VertexId(0) {
                    vec![(VertexId(1), 0)]
                } else {
                    Vec::new()
                }
            }
            fn on_round(
                &mut self,
                _: &NodeCtx<'_>,
                inbox: &[(VertexId, u32)],
            ) -> Vec<(VertexId, u32)> {
                inbox.iter().map(|&(from, v)| (from, v + 1)).collect()
            }
        }
        let g = path(2);
        let cfg = SimConfig {
            budget_words: 8,
            max_rounds: 50,
            ..SimConfig::default()
        };
        let err = run(&g, vec![PingPong, PingPong], &cfg).unwrap_err();
        assert_eq!(err, SimError::MaxRoundsExceeded { limit: 50 });
    }

    /// `max_rounds` is inclusive: a run that quiesces exactly at the limit
    /// succeeds; one that needs a single extra round fails. (Guards the
    /// off-by-one: `round > max_rounds` aborts, `round == max_rounds` runs.)
    #[test]
    fn max_rounds_boundary_is_inclusive() {
        /// Relay a token down a path; takes exactly n-1 delivery rounds.
        #[derive(Debug)]
        struct Relay;
        impl NodeProgram for Relay {
            type Msg = u32;
            fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
                if ctx.id == VertexId(0) {
                    vec![(VertexId(1), 0)]
                } else {
                    Vec::new()
                }
            }
            fn on_round(
                &mut self,
                ctx: &NodeCtx<'_>,
                _: &[(VertexId, u32)],
            ) -> Vec<(VertexId, u32)> {
                let next = VertexId(ctx.id.0 + 1);
                if ctx.neighbors.contains(&next) {
                    vec![(next, 0)]
                } else {
                    Vec::new()
                }
            }
        }
        let n = 6; // token needs exactly n-1 = 5 rounds
        let g = path(n);
        let mk = || (0..n).map(|_| Relay).collect::<Vec<_>>();

        let exact = SimConfig {
            budget_words: 8,
            max_rounds: n - 1,
            ..SimConfig::default()
        };
        let out = run(&g, mk(), &exact).expect("quiescing at max_rounds succeeds");
        assert_eq!(out.metrics.rounds, n - 1);

        let tight = SimConfig {
            budget_words: 8,
            max_rounds: n - 2,
            ..SimConfig::default()
        };
        let err = run(&g, mk(), &tight).unwrap_err();
        assert_eq!(err, SimError::MaxRoundsExceeded { limit: n - 2 });
    }

    #[test]
    fn quiescent_from_start() {
        struct Silent;
        impl NodeProgram for Silent {
            type Msg = u32;
            fn init(&mut self, _: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
                Vec::new()
            }
            fn on_round(&mut self, _: &NodeCtx<'_>, _: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
                Vec::new()
            }
        }
        let g = path(4);
        let out = run(
            &g,
            vec![Silent, Silent, Silent, Silent],
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(out.metrics.rounds, 0);
        assert_eq!(out.metrics.messages, 0);
    }

    /// The u32-index capacity guard at its exact boundary: `u32::MAX` is
    /// the reserved sentinel, so counts of `u32::MAX - 1` are the largest
    /// admissible and `u32::MAX` itself must be refused — as a typed error
    /// carrying the offending counts, never a silent `as u32` truncation.
    #[test]
    fn capacity_guard_boundary() {
        const LIMIT: usize = u32::MAX as usize;
        assert_eq!(check_capacity(0, 0), Ok(()));
        assert_eq!(check_capacity(LIMIT - 1, LIMIT - 1), Ok(()));
        for (n, arcs) in [(LIMIT, 0), (0, LIMIT), (LIMIT + 7, LIMIT + 7)] {
            assert_eq!(
                check_capacity(n, arcs),
                Err(SimError::CapacityExceeded {
                    nodes: n,
                    arcs,
                    limit: LIMIT,
                }),
                "n = {n}, arcs = {arcs}"
            );
        }
        let msg = check_capacity(LIMIT, 2).unwrap_err().to_string();
        assert!(msg.contains("u32 index space"), "got: {msg}");
    }

    /// Engagement planning for the n≈100k regression: an automatically
    /// resolved thread count never exceeds the host's real cores (a
    /// single-core host always steps sequentially, whatever
    /// `PLANAR_THREADS` says), while an explicit `SimConfig::threads` pin
    /// stays absolute with the floor-2 engagement the conformance suites
    /// rely on to force the parallel path onto tiny graphs.
    #[test]
    fn parallel_plan_gates_auto_threads_on_cores() {
        // Auto on a single core: sequential, never engages.
        let p = parallel_plan(None, 4, 1);
        assert_eq!(
            p,
            ParallelPlan {
                threads: 1,
                min_recipients: usize::MAX
            }
        );
        // Auto capped at the core count, engagement floor scales per worker.
        let p = parallel_plan(None, 8, 2);
        assert_eq!(p.threads, 2);
        assert_eq!(p.min_recipients, 2 * PAR_AUTO_MIN_RECIPIENTS_PER_THREAD);
        // Auto below the core count keeps the resolved request.
        assert_eq!(parallel_plan(None, 2, 16).threads, 2);
        // Resolved 1 (or degenerate cores=0) is sequential.
        assert_eq!(parallel_plan(None, 1, 8).threads, 1);
        assert_eq!(parallel_plan(None, 3, 0).threads, 1);
        // Explicit pins ignore the core count entirely.
        let p = parallel_plan(Some(4), 4, 1);
        assert_eq!(
            p,
            ParallelPlan {
                threads: 4,
                min_recipients: 2
            }
        );
    }
}
