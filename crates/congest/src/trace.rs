//! Round-level tracing and independent metrics auditing.
//!
//! Every claim of the paper is stated in rounds and `O(log n)`-bit
//! messages, so the kernel's [`Metrics`] are load-bearing — but an
//! aggregate counter cannot show *which round, which link, which phase*
//! went wrong when a conformance or chaos run diverges. This module applies
//! the proof-labeling philosophy of the certification layer to the
//! simulator itself: a run can emit a replayable stream of typed
//! [`TraceEvent`]s, and [`TraceAuditor`] recomputes the run's metrics from
//! that stream alone and diffs them against what the kernel reported.
//!
//! # Zero cost when off
//!
//! Tracing hangs off [`SimConfig::trace`](crate::SimConfig) as a
//! [`TraceHandle`], which is `off` by default. Both kernels guard every
//! emission site with a cached `is_on()` check, so a default config runs
//! the exact pre-tracing instruction sequence: no event construction, no
//! allocation, no dynamic dispatch. The determinism suite pins that
//! byte-identical behavior.
//!
//! # Event model
//!
//! A trace is a flat stream. Kernel runs appear as *segments* bracketed by
//! [`TraceEvent::RunStart`] and [`TraceEvent::RunEnd`]; the driver
//! interleaves [`TraceEvent::Phase`] markers between segments (and around
//! the merge phase's symmetry-breaking sub-runs), so every simulated round
//! can be attributed to an algorithm phase. Within a segment the kernel
//! emits, per round:
//!
//! ```text
//! RoundStart r
//!   Crash*                 (nodes whose crash-stop activates in r)
//!   Deliver* / Send* ...   (per recipient: its deliveries, then the sends
//!                           its program answered with; fate events
//!                           Drop/Duplicate/Delay follow their Send)
//! RoundEnd r               (the kernel's own per-round tallies)
//! ```
//!
//! `init` sends carry round 0 and precede the first `RoundStart`. The two
//! kernels process recipients in different (equally valid) orders, so event
//! streams are only comparable per round as multisets — the conformance
//! test in `tests/trace_audit.rs` normalizes exactly that way.
//!
//! # Auditor invariants
//!
//! For every *completed* segment (one with a `RunEnd`), the auditor checks:
//!
//! * `rounds` equals the last `RoundEnd`'s round number;
//! * `messages` / `words` equal the sums over `Deliver` events, per round
//!   (against each `RoundEnd`) and in total;
//! * `max_words_edge_round` equals the per-round, per-directed-link maximum
//!   of delivered words;
//! * `dropped` / `duplicated` / `delayed` equal the fate-event counts;
//! * `crashed_nodes` equals the number of distinct `Crash` nodes;
//! * attempted (`Send`) words never exceed the segment's budget on any
//!   link in any round — the CONGEST discipline, re-derived from the
//!   trace rather than trusted from the kernel.
//!
//! Segments that abort (watchdog, budget overflow, crashed-destination
//! sends) have no `RunEnd` and are skipped by the diff but still counted in
//! the per-round profile, so a degraded run's partial rounds stay visible.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

use planar_graph::VertexId;

use crate::metrics::{Metrics, Phase};

/// One observable simulator event. See the module docs for the stream
/// grammar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A kernel run began (after state preparation, before `init`).
    RunStart {
        /// Number of nodes simulated.
        nodes: usize,
        /// The per-directed-edge word budget this run enforces.
        budget_words: usize,
    },
    /// A delivery round began. Emitted only for rounds that actually
    /// deliver (aborts from the watchdog / round cap / a pending budget
    /// overflow happen first).
    RoundStart {
        /// The round number (1-based).
        round: usize,
    },
    /// A node's crash-stop activated this round (round 0 = before `init`).
    Crash {
        /// The round in which the node stops acting.
        round: usize,
        /// The crashed node.
        node: VertexId,
    },
    /// A program attempted to send a message (after destination validation,
    /// before fault resolution). Attempted words are what the budget
    /// constrains — dropped traffic still consumed the sender's bandwidth.
    Send {
        /// The round the send was issued in (0 = `init`).
        round: usize,
        /// Sender.
        from: VertexId,
        /// Addressee.
        to: VertexId,
        /// Message size in words.
        words: usize,
    },
    /// A message copy was handed to its recipient's inbox.
    Deliver {
        /// The delivery round.
        round: usize,
        /// Original sender.
        from: VertexId,
        /// Recipient.
        to: VertexId,
        /// Message size in words.
        words: usize,
    },
    /// Fault injection discarded a message copy (channel drop, link-down
    /// window, send to a crashed node, or arrival at/after the
    /// destination's crash round). One event per discarded copy, matching
    /// `Metrics::dropped`.
    Drop {
        /// The round the doomed copy was sent in.
        round: usize,
        /// Sender.
        from: VertexId,
        /// Addressee.
        to: VertexId,
        /// Message size in words.
        words: usize,
    },
    /// Fault injection created an extra copy of a message. One event per
    /// extra copy, matching `Metrics::duplicated`.
    Duplicate {
        /// The round the original was sent in.
        round: usize,
        /// Sender.
        from: VertexId,
        /// Addressee.
        to: VertexId,
        /// Message size in words.
        words: usize,
    },
    /// Fault injection held a message back past its nominal round. One
    /// event per delayed message (not per copy), matching
    /// `Metrics::delayed`.
    Delay {
        /// The round the message was sent in.
        round: usize,
        /// Sender.
        from: VertexId,
        /// Addressee.
        to: VertexId,
        /// Message size in words.
        words: usize,
        /// The round the copies will actually arrive in.
        deliver_round: usize,
    },
    /// A delivery round completed; the kernel's own per-round tallies, for
    /// the auditor to cross-check against the event stream.
    RoundEnd {
        /// The round number.
        round: usize,
        /// Messages delivered this round (kernel count).
        messages: usize,
        /// Words delivered this round (kernel count).
        words: usize,
        /// Max words over any directed edge this round (kernel count).
        max_words_edge: usize,
    },
    /// The round-budget watchdog fired; the segment aborts without a
    /// `RunEnd`.
    Watchdog {
        /// The configured watchdog limit.
        limit: usize,
    },
    /// The driver entered an algorithm phase; applies to all following
    /// segments until the next `Phase`.
    Phase {
        /// The pipeline phase (see [`Phase`]).
        phase: Phase,
    },
    /// A node belongs to a batched instance of a `run_many` segment.
    /// Emitted immediately after `RunStart`, one event per active node;
    /// plain `run` segments emit none. Nodes never assigned are inert
    /// bystanders — any traffic touching them is a mismatch.
    Assign {
        /// 0-based instance index within this segment.
        instance: usize,
        /// The assigned node.
        node: VertexId,
    },
    /// Per-instance metrics of a batched segment, emitted once per instance
    /// between the last `RoundEnd` and the `RunEnd`. `rounds` is the last
    /// round in which the instance was live — what the instance would have
    /// consumed running alone.
    InstanceEnd {
        /// 0-based instance index within this segment.
        instance: usize,
        /// The kernel-reported per-instance metrics.
        metrics: Metrics,
    },
    /// The reliable-delivery wrapper folded its per-node retransmission
    /// totals into the metrics of the segment that just ended.
    Retransmissions {
        /// Total data retransmissions across all nodes.
        count: usize,
    },
    /// A kernel run completed; carries the metrics the kernel reports, for
    /// the auditor to diff against its own recomputation.
    RunEnd {
        /// The kernel-reported metrics of the completed segment.
        metrics: Metrics,
    },
}

/// A consumer of [`TraceEvent`]s. Implementations must be `Send + Sync`
/// (the bench harness runs simulations on worker threads) and use interior
/// mutability — the kernel only holds a shared reference.
pub trait TraceSink: Send + Sync {
    /// Receives one event, in emission order.
    fn record(&self, ev: &TraceEvent);
}

/// The (possibly absent) trace sink carried by
/// [`SimConfig`](crate::SimConfig). Defaults to off; cloning shares the
/// underlying sink.
#[derive(Clone, Default)]
pub struct TraceHandle {
    sink: Option<Arc<dyn TraceSink>>,
}

impl TraceHandle {
    /// The disabled handle (what `SimConfig::default()` carries).
    pub fn off() -> Self {
        TraceHandle::default()
    }

    /// A handle forwarding every event to `sink`.
    pub fn to(sink: Arc<dyn TraceSink>) -> Self {
        TraceHandle { sink: Some(sink) }
    }

    /// Whether a sink is attached. Kernels cache this to keep the
    /// disabled-path cost to one predictable branch per emission site.
    pub fn is_on(&self) -> bool {
        self.sink.is_some()
    }

    /// Forwards `ev` to the sink, if any.
    #[inline]
    pub fn emit(&self, ev: TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.record(&ev);
        }
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_on() {
            "TraceHandle(on)"
        } else {
            "TraceHandle(off)"
        })
    }
}

/// An in-memory ring-buffer sink for tests: keeps the most recent
/// `capacity` events (all of them when unbounded).
pub struct MemorySink {
    capacity: usize,
    state: Mutex<MemoryState>,
}

struct MemoryState {
    events: VecDeque<TraceEvent>,
    evicted: usize,
}

impl MemorySink {
    /// A sink retaining every event. Prefer [`MemorySink::with_capacity`]
    /// (or the streaming [`AuditSink`]) for large runs.
    pub fn unbounded() -> Arc<Self> {
        Arc::new(MemorySink {
            capacity: usize::MAX,
            state: Mutex::new(MemoryState {
                events: VecDeque::new(),
                evicted: 0,
            }),
        })
    }

    /// A ring buffer keeping only the last `capacity` events.
    pub fn with_capacity(capacity: usize) -> Arc<Self> {
        Arc::new(MemorySink {
            capacity: capacity.max(1),
            state: Mutex::new(MemoryState {
                events: VecDeque::new(),
                evicted: 0,
            }),
        })
    }

    /// A snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.state.lock().unwrap().events.iter().copied().collect()
    }

    /// Events evicted by the ring buffer so far.
    pub fn evicted(&self) -> usize {
        self.state.lock().unwrap().evicted
    }

    /// Discards all retained events (the eviction count too).
    pub fn clear(&self) {
        let mut st = self.state.lock().unwrap();
        st.events.clear();
        st.evicted = 0;
    }
}

impl TraceSink for MemorySink {
    fn record(&self, ev: &TraceEvent) {
        let mut st = self.state.lock().unwrap();
        if st.events.len() == self.capacity {
            st.events.pop_front();
            st.evicted += 1;
        }
        st.events.push_back(*ev);
    }
}

/// Renders one event as a single JSON object (the JSONL line format of
/// [`JsonlSink`]). Hand-rolled like the workspace's `BENCH_*.json` writers:
/// every value is numeric or a known-safe literal.
pub fn event_json(ev: &TraceEvent) -> String {
    match ev {
        TraceEvent::RunStart {
            nodes,
            budget_words,
        } => {
            format!("{{\"ev\":\"run_start\",\"nodes\":{nodes},\"budget_words\":{budget_words}}}")
        }
        TraceEvent::RoundStart { round } => {
            format!("{{\"ev\":\"round_start\",\"round\":{round}}}")
        }
        TraceEvent::Crash { round, node } => {
            format!("{{\"ev\":\"crash\",\"round\":{round},\"node\":{}}}", node.0)
        }
        TraceEvent::Send {
            round,
            from,
            to,
            words,
        } => format!(
            "{{\"ev\":\"send\",\"round\":{round},\"from\":{},\"to\":{},\"words\":{words}}}",
            from.0, to.0
        ),
        TraceEvent::Deliver {
            round,
            from,
            to,
            words,
        } => format!(
            "{{\"ev\":\"deliver\",\"round\":{round},\"from\":{},\"to\":{},\"words\":{words}}}",
            from.0, to.0
        ),
        TraceEvent::Drop {
            round,
            from,
            to,
            words,
        } => format!(
            "{{\"ev\":\"drop\",\"round\":{round},\"from\":{},\"to\":{},\"words\":{words}}}",
            from.0, to.0
        ),
        TraceEvent::Duplicate {
            round,
            from,
            to,
            words,
        } => format!(
            "{{\"ev\":\"duplicate\",\"round\":{round},\"from\":{},\"to\":{},\"words\":{words}}}",
            from.0, to.0
        ),
        TraceEvent::Delay {
            round,
            from,
            to,
            words,
            deliver_round,
        } => format!(
            "{{\"ev\":\"delay\",\"round\":{round},\"from\":{},\"to\":{},\"words\":{words},\
             \"deliver_round\":{deliver_round}}}",
            from.0, to.0
        ),
        TraceEvent::RoundEnd {
            round,
            messages,
            words,
            max_words_edge,
        } => format!(
            "{{\"ev\":\"round_end\",\"round\":{round},\"messages\":{messages},\
             \"words\":{words},\"max_words_edge\":{max_words_edge}}}"
        ),
        TraceEvent::Watchdog { limit } => {
            format!("{{\"ev\":\"watchdog\",\"limit\":{limit}}}")
        }
        TraceEvent::Phase { phase } => {
            format!("{{\"ev\":\"phase\",\"name\":\"{}\"}}", phase.name())
        }
        TraceEvent::Assign { instance, node } => format!(
            "{{\"ev\":\"assign\",\"instance\":{instance},\"node\":{}}}",
            node.0
        ),
        TraceEvent::InstanceEnd { instance, metrics } => format!(
            "{{\"ev\":\"instance_end\",\"instance\":{instance},\"rounds\":{},\"messages\":{},\
             \"words\":{},\"max_words_edge_round\":{},\"dropped\":{},\"duplicated\":{},\
             \"delayed\":{},\"crashed_nodes\":{}}}",
            metrics.rounds,
            metrics.messages,
            metrics.words,
            metrics.max_words_edge_round,
            metrics.dropped,
            metrics.duplicated,
            metrics.delayed,
            metrics.crashed_nodes
        ),
        TraceEvent::Retransmissions { count } => {
            format!("{{\"ev\":\"retransmissions\",\"count\":{count}}}")
        }
        TraceEvent::RunEnd { metrics } => format!(
            "{{\"ev\":\"run_end\",\"rounds\":{},\"messages\":{},\"words\":{},\
             \"max_words_edge_round\":{},\"dropped\":{},\"duplicated\":{},\"delayed\":{},\
             \"retransmissions\":{},\"crashed_nodes\":{}}}",
            metrics.rounds,
            metrics.messages,
            metrics.words,
            metrics.max_words_edge_round,
            metrics.dropped,
            metrics.duplicated,
            metrics.delayed,
            metrics.retransmissions,
            metrics.crashed_nodes
        ),
    }
}

/// Streams events as JSON Lines to any writer (one object per line).
/// Write errors are silently ignored — tracing must never fail a run.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps `writer` in a sink.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(self) -> W {
        let mut w = self.writer.into_inner().unwrap();
        let _ = w.flush();
        w
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, ev: &TraceEvent) {
        let mut w = self.writer.lock().unwrap();
        let _ = writeln!(w, "{}", event_json(ev));
    }
}

/// One row of the per-round hot-path profile assembled by the auditor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundProfile {
    /// The driver phase the round ran under (`"run"` outside any phase).
    pub phase: &'static str,
    /// 0-based index of the kernel run the round belongs to.
    pub segment: usize,
    /// Round number within its segment.
    pub round: usize,
    /// Messages delivered.
    pub messages: usize,
    /// Words delivered.
    pub words: usize,
    /// Max words over any directed edge.
    pub max_words_edge: usize,
}

/// The auditor's conclusions (see [`TraceAuditor`]).
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Completed segments (kernel runs with a `RunEnd`) audited.
    pub segments: usize,
    /// Segments that aborted without a `RunEnd` (watchdog, kernel error).
    pub aborted_segments: usize,
    /// Human-readable discrepancies; empty iff the trace and the kernel
    /// metrics agree exactly.
    pub mismatches: Vec<String>,
    /// Sequential (`Metrics::add`) total of the per-segment *recomputed*
    /// metrics, plus wrapper retransmissions. Covers simulated traffic
    /// only — analytically charged costs (the merge phase's virtual
    /// symmetry rounds) never appear in a trace.
    pub totals: Metrics,
    /// Per-round profile across all segments, in stream order.
    pub profile: Vec<RoundProfile>,
}

impl AuditReport {
    /// Rounds simulated per phase, aggregated from the profile.
    pub fn phase_rounds(&self) -> Vec<(&'static str, usize)> {
        let mut out: Vec<(&'static str, usize)> = Vec::new();
        for row in &self.profile {
            match out.iter_mut().find(|(p, _)| *p == row.phase) {
                Some((_, n)) => *n += 1,
                None => out.push((row.phase, 1)),
            }
        }
        out
    }
}

/// Per-instance recomputation state of a batched (`run_many`) segment.
#[derive(Clone, Default)]
struct InstanceAudit {
    /// Metrics recomputed from instance-attributed events. `rounds` is a
    /// lower bound (the last round with observable instance activity —
    /// timer ticks leave no trace), all other fields are exact.
    computed: Metrics,
    /// Whether an `InstanceEnd` was seen for this instance.
    checked: bool,
}

/// In-flight state of the segment currently being audited.
struct Segment {
    budget_words: usize,
    computed: Metrics,
    /// Crashed nodes and the round their crash-stop activated.
    crashed: BTreeMap<VertexId, usize>,
    /// The currently open round (0 = the init "round" before `RoundStart 1`).
    round: usize,
    /// Delivered words per directed link, this round.
    delivered: BTreeMap<(VertexId, VertexId), usize>,
    /// Attempted (sent) words per directed link, this round.
    attempted: BTreeMap<(VertexId, VertexId), usize>,
    round_messages: usize,
    round_words: usize,
    /// Worst attempted-words-per-link-per-round seen so far.
    max_attempted: usize,
    /// Instance owning each node (batched segments only).
    inst_of: BTreeMap<VertexId, usize>,
    /// Per-instance recomputation (empty for plain `run` segments).
    instances: Vec<InstanceAudit>,
}

impl Segment {
    fn new(budget_words: usize) -> Self {
        Segment {
            budget_words,
            computed: Metrics::new(),
            crashed: BTreeMap::new(),
            round: 0,
            delivered: BTreeMap::new(),
            attempted: BTreeMap::new(),
            round_messages: 0,
            round_words: 0,
            max_attempted: 0,
            inst_of: BTreeMap::new(),
            instances: Vec::new(),
        }
    }

    fn fold_attempted(&mut self) {
        let worst = self.attempted.values().copied().max().unwrap_or(0);
        self.max_attempted = self.max_attempted.max(worst);
        self.attempted.clear();
    }

    /// Checks a `from -> to` transmission against the instance partition:
    /// in a batched segment both endpoints must belong to the same
    /// instance. Returns the owning instance (None when not batched or on
    /// violation, which is reported separately).
    fn attribute(&self, from: VertexId, to: VertexId) -> Result<Option<usize>, String> {
        if self.instances.is_empty() {
            return Ok(None);
        }
        match (self.inst_of.get(&from), self.inst_of.get(&to)) {
            (Some(&a), Some(&b)) if a == b => Ok(Some(a)),
            (a, b) => Err(format!(
                "cross-instance traffic {} -> {} (instances {:?} -> {:?})",
                from.0,
                to.0,
                a.copied(),
                b.copied()
            )),
        }
    }
}

/// Replays a trace and independently recomputes every [`Metrics`] field a
/// kernel run reports, diffing against each segment's [`TraceEvent::RunEnd`].
/// Streaming: feed events with [`TraceAuditor::observe`] (or wrap it in an
/// [`AuditSink`] to audit online), then read [`TraceAuditor::report`].
#[derive(Default)]
pub struct TraceAuditor {
    phase: Option<&'static str>,
    report: AuditReport,
    current: Option<Segment>,
}

impl TraceAuditor {
    /// A fresh auditor.
    pub fn new() -> Self {
        TraceAuditor::default()
    }

    /// Replays a recorded event stream through a fresh auditor.
    pub fn replay<'a, I: IntoIterator<Item = &'a TraceEvent>>(events: I) -> Self {
        let mut auditor = TraceAuditor::new();
        for ev in events {
            auditor.observe(ev);
        }
        auditor
    }

    /// Whether every completed segment's recomputed metrics matched the
    /// kernel's exactly (and no structural inconsistency was seen).
    pub fn ok(&self) -> bool {
        self.report.mismatches.is_empty()
    }

    /// The conclusions so far. An unfinished segment (no `RunEnd` yet) is
    /// not included in `segments`/`totals`.
    pub fn report(&self) -> &AuditReport {
        &self.report
    }

    /// Consumes the auditor, returning the report.
    pub fn into_report(mut self) -> AuditReport {
        if self.current.take().is_some() {
            self.report.aborted_segments += 1;
        }
        self.report
    }

    fn mismatch(&mut self, msg: String) {
        // Cap the list so a systematically broken run cannot OOM the
        // auditor; the count of further mismatches is still recorded.
        if self.report.mismatches.len() < 64 {
            self.report.mismatches.push(msg);
        }
    }

    /// Feeds one event, in stream order.
    pub fn observe(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Phase { phase } => self.phase = Some(phase.name()),
            TraceEvent::RunStart {
                nodes: _,
                budget_words,
            } => {
                if self.current.take().is_some() {
                    self.report.aborted_segments += 1;
                }
                self.current = Some(Segment::new(budget_words));
            }
            TraceEvent::Assign { instance, node } => {
                let mut problem = None;
                if let Some(seg) = self.current.as_mut() {
                    if seg.round != 0 {
                        problem = Some(format!("Assign after round {} started", seg.round));
                    } else if seg.inst_of.insert(node, instance).is_some() {
                        problem = Some(format!("node {} assigned to two instances", node.0));
                    } else if seg.instances.len() <= instance {
                        seg.instances
                            .resize_with(instance + 1, InstanceAudit::default);
                    }
                }
                if let Some(p) = problem {
                    let index = self.segment_index();
                    self.mismatch(format!("segment {index}: {p}"));
                }
            }
            TraceEvent::RoundStart { round } => {
                if let Some(seg) = self.current.as_mut() {
                    seg.fold_attempted();
                    if round != seg.round + 1 {
                        let (have, want) = (round, seg.round + 1);
                        self.mismatch(format!(
                            "segment {}: RoundStart {have}, expected {want}",
                            self.segment_index()
                        ));
                    }
                    let seg = self.current.as_mut().unwrap();
                    seg.round = round;
                    seg.delivered.clear();
                    seg.round_messages = 0;
                    seg.round_words = 0;
                }
            }
            TraceEvent::Crash { node, round } => {
                if let Some(seg) = self.current.as_mut() {
                    seg.crashed.entry(node).or_insert(round);
                }
            }
            TraceEvent::Send {
                round,
                from,
                to,
                words,
            } => {
                let mut problem = None;
                if let Some(seg) = self.current.as_mut() {
                    *seg.attempted.entry((from, to)).or_insert(0) += words;
                    match seg.attribute(from, to) {
                        Ok(Some(i)) => {
                            let im = &mut seg.instances[i].computed;
                            im.rounds = im.rounds.max(round);
                        }
                        Ok(None) => {}
                        Err(p) => problem = Some(p),
                    }
                }
                if let Some(p) = problem {
                    let index = self.segment_index();
                    self.mismatch(format!("segment {index}: Send round {round}: {p}"));
                }
            }
            TraceEvent::Deliver {
                round,
                from,
                to,
                words,
            } => {
                let mut problem = None;
                if let Some(seg) = self.current.as_mut() {
                    *seg.delivered.entry((from, to)).or_insert(0) += words;
                    seg.round_messages += 1;
                    seg.round_words += words;
                    seg.computed.messages += 1;
                    seg.computed.words += words;
                    match seg.attribute(from, to) {
                        Ok(Some(i)) => {
                            let im = &mut seg.instances[i].computed;
                            im.messages += 1;
                            im.words += words;
                            im.rounds = im.rounds.max(round);
                        }
                        Ok(None) => {}
                        Err(p) => problem = Some(p),
                    }
                }
                if let Some(p) = problem {
                    let index = self.segment_index();
                    self.mismatch(format!("segment {index}: Deliver round {round}: {p}"));
                }
            }
            TraceEvent::Drop {
                round, from, to, ..
            } => {
                if let Some(seg) = self.current.as_mut() {
                    seg.computed.dropped += 1;
                    if let Ok(Some(i)) = seg.attribute(from, to) {
                        let im = &mut seg.instances[i].computed;
                        im.dropped += 1;
                        im.rounds = im.rounds.max(round);
                    }
                }
            }
            TraceEvent::Duplicate {
                round, from, to, ..
            } => {
                if let Some(seg) = self.current.as_mut() {
                    seg.computed.duplicated += 1;
                    if let Ok(Some(i)) = seg.attribute(from, to) {
                        let im = &mut seg.instances[i].computed;
                        im.duplicated += 1;
                        im.rounds = im.rounds.max(round);
                    }
                }
            }
            TraceEvent::Delay {
                from,
                to,
                deliver_round,
                ..
            } => {
                if let Some(seg) = self.current.as_mut() {
                    seg.computed.delayed += 1;
                    if let Ok(Some(i)) = seg.attribute(from, to) {
                        let im = &mut seg.instances[i].computed;
                        im.delayed += 1;
                        // The owning instance stays live until the held
                        // copies arrive.
                        im.rounds = im.rounds.max(deliver_round);
                    }
                }
            }
            TraceEvent::RoundEnd {
                round,
                messages,
                words,
                max_words_edge,
            } => {
                let index = self.segment_index();
                let phase = self.phase.unwrap_or("run");
                if let Some(seg) = self.current.as_mut() {
                    let round_max = seg.delivered.values().copied().max().unwrap_or(0);
                    let mut problems = Vec::new();
                    if round != seg.round {
                        problems.push(format!("RoundEnd {round} inside round {}", seg.round));
                    }
                    if messages != seg.round_messages {
                        problems.push(format!(
                            "round {round}: kernel counted {messages} deliveries, trace has {}",
                            seg.round_messages
                        ));
                    }
                    if words != seg.round_words {
                        problems.push(format!(
                            "round {round}: kernel counted {words} delivered words, trace has {}",
                            seg.round_words
                        ));
                    }
                    if max_words_edge != round_max {
                        problems.push(format!(
                            "round {round}: kernel max {max_words_edge} words/edge, trace has \
                             {round_max}"
                        ));
                    }
                    seg.computed.rounds = round;
                    seg.computed.max_words_edge_round =
                        seg.computed.max_words_edge_round.max(round_max);
                    if !seg.instances.is_empty() {
                        // Per-instance congestion: `delivered` already
                        // accumulates per directed link for this round, and
                        // each link belongs to exactly one instance.
                        for (&(from, _), &w) in &seg.delivered {
                            if let Some(&i) = seg.inst_of.get(&from) {
                                let im = &mut seg.instances[i].computed;
                                im.max_words_edge_round = im.max_words_edge_round.max(w);
                            }
                        }
                    }
                    self.report.profile.push(RoundProfile {
                        phase,
                        segment: index,
                        round,
                        messages,
                        words,
                        max_words_edge: round_max,
                    });
                    for p in problems {
                        self.mismatch(format!("segment {index}: {p}"));
                    }
                }
            }
            TraceEvent::Watchdog { .. } => {
                if self.current.take().is_some() {
                    self.report.aborted_segments += 1;
                }
            }
            TraceEvent::Retransmissions { count } => {
                self.report.totals.retransmissions += count;
            }
            TraceEvent::InstanceEnd { instance, metrics } => {
                let index = self.segment_index();
                let mut problems = Vec::new();
                if let Some(seg) = self.current.as_mut() {
                    if instance >= seg.instances.len() {
                        problems.push(format!("InstanceEnd for unassigned instance {instance}"));
                    } else {
                        let seg_round = seg.round;
                        let crashed_by_then = seg
                            .crashed
                            .values()
                            .filter(|&&r| r <= metrics.rounds)
                            .count();
                        let ia = &mut seg.instances[instance];
                        if ia.checked {
                            problems.push(format!("duplicate InstanceEnd for instance {instance}"));
                        }
                        ia.checked = true;
                        let c = ia.computed;
                        for (field, got, want) in [
                            ("messages", metrics.messages, c.messages),
                            ("words", metrics.words, c.words),
                            (
                                "max_words_edge_round",
                                metrics.max_words_edge_round,
                                c.max_words_edge_round,
                            ),
                            ("dropped", metrics.dropped, c.dropped),
                            ("duplicated", metrics.duplicated, c.duplicated),
                            ("delayed", metrics.delayed, c.delayed),
                            ("crashed_nodes", metrics.crashed_nodes, crashed_by_then),
                        ] {
                            if got != want {
                                problems.push(format!(
                                    "instance {instance}: {field}: kernel reported {got}, trace \
                                     recomputes {want}"
                                ));
                            }
                        }
                        // Timer ticks are invisible in the trace, so the
                        // recomputed activity horizon only bounds `rounds`:
                        // last observable activity <= rounds <= segment end.
                        if metrics.rounds < c.rounds || metrics.rounds > seg_round {
                            problems.push(format!(
                                "instance {instance}: rounds {} outside [{}, {seg_round}]",
                                metrics.rounds, c.rounds
                            ));
                        }
                    }
                }
                for p in problems {
                    self.mismatch(format!("segment {index}: {p}"));
                }
            }
            TraceEvent::RunEnd { metrics } => {
                let index = self.segment_index();
                if let Some(mut seg) = self.current.take() {
                    seg.fold_attempted();
                    seg.computed.crashed_nodes = seg.crashed.len();
                    for (i, ia) in seg.instances.iter().enumerate() {
                        if !ia.checked {
                            self.mismatch(format!(
                                "segment {index}: instance {i} has no InstanceEnd"
                            ));
                        }
                    }
                    if seg.max_attempted > seg.budget_words {
                        self.mismatch(format!(
                            "segment {index}: attempted {} words on a link in one round, budget {}",
                            seg.max_attempted, seg.budget_words
                        ));
                    }
                    // phase_rounds is driver-stamped after the kernel
                    // returns; at RunEnd both sides are zero by contract.
                    for (field, got, want) in [
                        ("rounds", metrics.rounds, seg.computed.rounds),
                        ("messages", metrics.messages, seg.computed.messages),
                        ("words", metrics.words, seg.computed.words),
                        (
                            "max_words_edge_round",
                            metrics.max_words_edge_round,
                            seg.computed.max_words_edge_round,
                        ),
                        ("dropped", metrics.dropped, seg.computed.dropped),
                        ("duplicated", metrics.duplicated, seg.computed.duplicated),
                        ("delayed", metrics.delayed, seg.computed.delayed),
                        (
                            "retransmissions",
                            metrics.retransmissions,
                            seg.computed.retransmissions,
                        ),
                        (
                            "crashed_nodes",
                            metrics.crashed_nodes,
                            seg.computed.crashed_nodes,
                        ),
                    ] {
                        if got != want {
                            self.mismatch(format!(
                                "segment {index}: {field}: kernel reported {got}, trace \
                                 recomputes {want}"
                            ));
                        }
                    }
                    self.report.segments += 1;
                    self.report.totals.add(seg.computed);
                } else {
                    self.mismatch(format!("segment {index}: RunEnd without RunStart"));
                }
            }
        }
    }

    fn segment_index(&self) -> usize {
        self.report.segments + self.report.aborted_segments
    }
}

/// A [`TraceSink`] that feeds a [`TraceAuditor`] online — auditing without
/// storing the trace, so even the `n = 1024` chaos sweeps can self-audit.
#[derive(Default)]
pub struct AuditSink {
    auditor: Mutex<TraceAuditor>,
}

impl AuditSink {
    /// A fresh auditing sink, ready to attach via [`TraceHandle::to`].
    pub fn new() -> Arc<Self> {
        Arc::new(AuditSink::default())
    }

    /// Whether everything observed so far is consistent (see
    /// [`TraceAuditor::ok`]).
    pub fn ok(&self) -> bool {
        self.auditor.lock().unwrap().ok()
    }

    /// A snapshot of the auditor's conclusions so far.
    pub fn report(&self) -> AuditReport {
        self.auditor.lock().unwrap().report().clone()
    }
}

impl TraceSink for AuditSink {
    fn record(&self, ev: &TraceEvent) {
        self.auditor.lock().unwrap().observe(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// A hand-built two-round segment the auditor must accept.
    fn consistent_stream() -> Vec<TraceEvent> {
        let metrics = Metrics {
            rounds: 2,
            messages: 3,
            words: 5,
            max_words_edge_round: 3,
            ..Metrics::default()
        };
        vec![
            TraceEvent::Phase {
                phase: Phase::Setup,
            },
            TraceEvent::RunStart {
                nodes: 2,
                budget_words: 8,
            },
            TraceEvent::Send {
                round: 0,
                from: v(0),
                to: v(1),
                words: 2,
            },
            TraceEvent::RoundStart { round: 1 },
            TraceEvent::Deliver {
                round: 1,
                from: v(0),
                to: v(1),
                words: 2,
            },
            TraceEvent::Send {
                round: 1,
                from: v(1),
                to: v(0),
                words: 3,
            },
            TraceEvent::Send {
                round: 1,
                from: v(1),
                to: v(0),
                words: 1,
            },
            TraceEvent::RoundEnd {
                round: 1,
                messages: 1,
                words: 2,
                max_words_edge: 2,
            },
            TraceEvent::RoundStart { round: 2 },
            TraceEvent::Deliver {
                round: 2,
                from: v(1),
                to: v(0),
                words: 3,
            },
            TraceEvent::Deliver {
                round: 2,
                from: v(1),
                to: v(0),
                words: 1,
            },
            TraceEvent::RoundEnd {
                round: 2,
                messages: 2,
                words: 4,
                max_words_edge: 4,
            },
            TraceEvent::RunEnd { metrics },
        ]
    }

    #[test]
    fn auditor_accepts_a_consistent_stream() {
        // Fix the deliberately matching numbers: words 2+3+1 = 6, max 4.
        let mut events = consistent_stream();
        if let Some(TraceEvent::RunEnd { metrics }) = events.last_mut() {
            metrics.words = 6;
            metrics.max_words_edge_round = 4;
        }
        let auditor = TraceAuditor::replay(&events);
        assert!(
            auditor.ok(),
            "mismatches: {:?}",
            auditor.report().mismatches
        );
        let report = auditor.report();
        assert_eq!(report.segments, 1);
        assert_eq!(report.totals.messages, 3);
        assert_eq!(report.totals.words, 6);
        assert_eq!(report.profile.len(), 2);
        assert!(report.profile.iter().all(|r| r.phase == "setup"));
        assert_eq!(report.phase_rounds(), vec![("setup", 2)]);
    }

    #[test]
    fn auditor_flags_inflated_kernel_metrics() {
        let mut events = consistent_stream();
        if let Some(TraceEvent::RunEnd { metrics }) = events.last_mut() {
            metrics.words = 6;
            metrics.max_words_edge_round = 4;
            metrics.messages = 99; // drifted aggregate
        }
        let auditor = TraceAuditor::replay(&events);
        assert!(!auditor.ok());
        assert!(
            auditor.report().mismatches[0].contains("messages"),
            "{:?}",
            auditor.report().mismatches
        );
    }

    #[test]
    fn auditor_flags_budget_violations_from_sends() {
        let mut events = consistent_stream();
        if let Some(TraceEvent::RunEnd { metrics }) = events.last_mut() {
            metrics.words = 6;
            metrics.max_words_edge_round = 4;
        }
        // Two sends on (1,0) in round 1 totalled 4 words; shrink the budget
        // below that.
        if let TraceEvent::RunStart { budget_words, .. } = &mut events[1] {
            *budget_words = 3;
        }
        let auditor = TraceAuditor::replay(&events);
        assert!(!auditor.ok());
        assert!(
            auditor
                .report()
                .mismatches
                .iter()
                .any(|m| m.contains("attempted")),
            "{:?}",
            auditor.report().mismatches
        );
    }

    #[test]
    fn aborted_segments_are_profiled_but_not_diffed() {
        let events = vec![
            TraceEvent::RunStart {
                nodes: 2,
                budget_words: 8,
            },
            TraceEvent::Send {
                round: 0,
                from: v(0),
                to: v(1),
                words: 1,
            },
            TraceEvent::RoundStart { round: 1 },
            TraceEvent::Deliver {
                round: 1,
                from: v(0),
                to: v(1),
                words: 1,
            },
            TraceEvent::RoundEnd {
                round: 1,
                messages: 1,
                words: 1,
                max_words_edge: 1,
            },
            TraceEvent::Watchdog { limit: 1 },
        ];
        let auditor = TraceAuditor::replay(&events);
        assert!(auditor.ok());
        let report = auditor.report();
        assert_eq!(report.segments, 0);
        assert_eq!(report.aborted_segments, 1);
        assert_eq!(report.profile.len(), 1);
    }

    /// A hand-built batched (two-instance) segment the auditor must accept.
    fn batched_stream() -> Vec<TraceEvent> {
        let inst0 = Metrics {
            rounds: 1,
            messages: 1,
            words: 2,
            max_words_edge_round: 2,
            ..Metrics::default()
        };
        let inst1 = Metrics {
            rounds: 2,
            messages: 2,
            words: 2,
            max_words_edge_round: 1,
            ..Metrics::default()
        };
        let total = Metrics {
            rounds: 2,
            messages: 3,
            words: 4,
            max_words_edge_round: 2,
            ..Metrics::default()
        };
        vec![
            TraceEvent::RunStart {
                nodes: 4,
                budget_words: 8,
            },
            TraceEvent::Assign {
                instance: 0,
                node: v(0),
            },
            TraceEvent::Assign {
                instance: 0,
                node: v(1),
            },
            TraceEvent::Assign {
                instance: 1,
                node: v(2),
            },
            TraceEvent::Assign {
                instance: 1,
                node: v(3),
            },
            TraceEvent::Send {
                round: 0,
                from: v(0),
                to: v(1),
                words: 2,
            },
            TraceEvent::Send {
                round: 0,
                from: v(2),
                to: v(3),
                words: 1,
            },
            TraceEvent::RoundStart { round: 1 },
            TraceEvent::Deliver {
                round: 1,
                from: v(0),
                to: v(1),
                words: 2,
            },
            TraceEvent::Deliver {
                round: 1,
                from: v(2),
                to: v(3),
                words: 1,
            },
            TraceEvent::Send {
                round: 1,
                from: v(3),
                to: v(2),
                words: 1,
            },
            TraceEvent::RoundEnd {
                round: 1,
                messages: 2,
                words: 3,
                max_words_edge: 2,
            },
            TraceEvent::RoundStart { round: 2 },
            TraceEvent::Deliver {
                round: 2,
                from: v(3),
                to: v(2),
                words: 1,
            },
            TraceEvent::RoundEnd {
                round: 2,
                messages: 1,
                words: 1,
                max_words_edge: 1,
            },
            TraceEvent::InstanceEnd {
                instance: 0,
                metrics: inst0,
            },
            TraceEvent::InstanceEnd {
                instance: 1,
                metrics: inst1,
            },
            TraceEvent::RunEnd { metrics: total },
        ]
    }

    #[test]
    fn auditor_accepts_a_consistent_batched_stream() {
        let auditor = TraceAuditor::replay(&batched_stream());
        assert!(
            auditor.ok(),
            "mismatches: {:?}",
            auditor.report().mismatches
        );
        assert_eq!(auditor.report().segments, 1);
    }

    #[test]
    fn auditor_flags_cross_instance_traffic() {
        let mut events = batched_stream();
        // Reroute instance 1's round-1 delivery across the partition.
        for ev in &mut events {
            if let TraceEvent::Deliver { from, to, .. } = ev {
                if *from == v(2) {
                    *from = v(1);
                    *to = v(2);
                }
            }
        }
        let auditor = TraceAuditor::replay(&events);
        assert!(!auditor.ok());
        assert!(
            auditor
                .report()
                .mismatches
                .iter()
                .any(|m| m.contains("cross-instance")),
            "{:?}",
            auditor.report().mismatches
        );
    }

    #[test]
    fn auditor_flags_drifted_instance_metrics() {
        let mut events = batched_stream();
        for ev in &mut events {
            if let TraceEvent::InstanceEnd {
                instance: 0,
                metrics,
            } = ev
            {
                metrics.words = 99;
            }
        }
        let auditor = TraceAuditor::replay(&events);
        assert!(!auditor.ok());
        assert!(
            auditor
                .report()
                .mismatches
                .iter()
                .any(|m| m.contains("instance 0") && m.contains("words")),
            "{:?}",
            auditor.report().mismatches
        );
    }

    #[test]
    fn auditor_flags_missing_instance_end() {
        let mut events = batched_stream();
        events.retain(|ev| !matches!(ev, TraceEvent::InstanceEnd { instance: 1, .. }));
        let auditor = TraceAuditor::replay(&events);
        assert!(!auditor.ok());
        assert!(
            auditor
                .report()
                .mismatches
                .iter()
                .any(|m| m.contains("no InstanceEnd")),
            "{:?}",
            auditor.report().mismatches
        );
    }

    #[test]
    fn ring_buffer_sink_evicts_oldest() {
        let sink = MemorySink::with_capacity(2);
        for round in 1..=5 {
            sink.record(&TraceEvent::RoundStart { round });
        }
        assert_eq!(sink.evicted(), 3);
        assert_eq!(
            sink.events(),
            vec![
                TraceEvent::RoundStart { round: 4 },
                TraceEvent::RoundStart { round: 5 },
            ]
        );
        sink.clear();
        assert_eq!(sink.events(), Vec::new());
        assert_eq!(sink.evicted(), 0);
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_line() {
        let sink = JsonlSink::new(Vec::new());
        for ev in consistent_stream() {
            sink.record(&ev);
        }
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), consistent_stream().len());
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        assert!(lines[0].contains("\"ev\":\"phase\""));
        assert!(lines[1].contains("\"budget_words\":8"));
    }

    #[test]
    fn disabled_handle_is_inert() {
        let handle = TraceHandle::off();
        assert!(!handle.is_on());
        handle.emit(TraceEvent::RoundStart { round: 1 }); // must not panic
        let sink = MemorySink::unbounded();
        let on = TraceHandle::to(sink.clone());
        assert!(on.is_on());
        on.emit(TraceEvent::RoundStart { round: 1 });
        assert_eq!(sink.events().len(), 1);
    }
}
