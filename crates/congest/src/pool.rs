//! Shared scoped-thread worker pool: one thread-count knob and one fan-out
//! implementation for every parallel consumer in the workspace — the
//! kernel's intra-round sharding (see [`crate::network`]) and the bench
//! harness's trial sweeps (`planar_bench::parallel`, a thin wrapper over
//! this module).
//!
//! rayon would be the natural backend, but it cannot be vendored in this
//! offline build environment (see `shims/README.md`); everything here is
//! scoped `std::thread` plus flat slot arrays, with results placed by input
//! index so outputs are byte-identical to the sequential path no matter how
//! the OS schedules workers.
//!
//! # The one knob
//!
//! [`worker_threads`] reads `PLANAR_THREADS` (else the host's available
//! parallelism, else 1) and is the default for every consumer. Disabling
//! the crate's `parallel` feature pins every resolution to one thread — a
//! compile-time kill switch under which the kernel's parallel branch never
//! engages.
//!
//! # Composition rule (no oversubscription)
//!
//! Threads spawned by this module — and the calling thread while it works a
//! shard — are marked with a thread-local flag ([`in_worker`]).
//! [`kernel_threads`] resolves an *automatic* thread count to 1 inside such
//! a worker: when an outer sweep ([`par_map`] over bench trials) is already
//! fanned out, each trial's inner kernel runs sequentially instead of
//! oversubscribing the host with `threads × threads` workers. The outer
//! level gets priority because it parallelizes whole independent trials —
//! the coarser, more efficient grain. An *explicit*
//! [`SimConfig::threads`](crate::SimConfig::threads) override is honored
//! even inside a worker: a caller pinning both levels is assumed to have
//! budgeted for it (the thread-scaling bench does exactly this, with the
//! outer sweep kept sequential).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable capping worker threads for every consumer.
pub const THREADS_ENV: &str = "PLANAR_THREADS";

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is working a pool shard (including the
/// calling thread for the duration of its own shard). Automatic thread
/// counts resolve to 1 here — see the module docs' composition rule.
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// RAII mark scoping [`in_worker`] to one shard closure; restores the
/// previous state on drop, panics included.
struct WorkerMark {
    prev: bool,
}

impl WorkerMark {
    fn set() -> Self {
        WorkerMark {
            prev: IN_WORKER.with(|f| f.replace(true)),
        }
    }
}

impl Drop for WorkerMark {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_WORKER.with(|f| f.set(prev));
    }
}

/// Cores the host can actually run concurrently (cached
/// `available_parallelism`, 1 on query failure). Distinct from
/// [`worker_threads`]: `PLANAR_THREADS` can *request* any worker count, but
/// the kernel's automatic parallel-path engagement caps itself at this
/// figure — on a single-core host, forked workers only add clone and
/// coordination overhead to a round that one core must execute serially
/// anyway (the n≈100k `threads=4` regression in BENCH_kernel.json).
pub fn available_cores() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// Number of worker threads the pool uses by default: `PLANAR_THREADS` if
/// set and parseable (clamped to >= 1), else the host's available
/// parallelism, else 1. Always 1 with the `parallel` feature disabled.
pub fn worker_threads() -> usize {
    if !cfg!(feature = "parallel") {
        return 1;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(t) = v.trim().parse::<usize>() {
            return t.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Resolves the kernel's per-run thread count. `Some(t)` pins `max(t, 1)`
/// unconditionally; `None` resolves to [`worker_threads`] — except inside a
/// pool worker, where it resolves to 1 (the composition rule: an outer
/// sweep already owns the cores). Always 1 with the `parallel` feature
/// disabled.
pub fn kernel_threads(explicit: Option<usize>) -> usize {
    if !cfg!(feature = "parallel") {
        return 1;
    }
    if let Some(t) = explicit {
        return t.max(1);
    }
    if in_worker() {
        return 1;
    }
    worker_threads()
}

/// Runs `f(w, &mut shards[w])` for every shard and returns when all are
/// done: shard 0 on the calling thread, every other shard on its own scoped
/// worker. Static sharding — no work stealing — so which worker computes
/// what is a pure function of the shard layout, never of OS scheduling.
/// Worker threads (and the calling thread while it works shard 0) are
/// marked for [`in_worker`].
///
/// # Panics
///
/// Propagates a panic from `f`.
pub fn fan_out_mut<C, F>(shards: &mut [C], f: F)
where
    C: Send,
    F: Fn(usize, &mut C) + Sync,
{
    match shards {
        [] => {}
        [only] => {
            let _mark = WorkerMark::set();
            f(0, only);
        }
        [first, rest @ ..] => {
            std::thread::scope(|scope| {
                for (i, shard) in rest.iter_mut().enumerate() {
                    let f = &f;
                    scope.spawn(move || {
                        let _mark = WorkerMark::set();
                        f(i + 1, shard);
                    });
                }
                let _mark = WorkerMark::set();
                f(0, first);
            });
        }
    }
}

/// Applies `f` to every item on up to `threads` scoped workers pulling from
/// an atomic queue, collecting results **by input index** — byte-identical
/// to the sequential map regardless of scheduling. `threads <= 1` (or at
/// most one item) degrades to a plain sequential map on the calling thread.
/// Workers are marked for [`in_worker`], so kernels running inside the
/// mapped closure resolve automatic thread counts to 1 (the composition
/// rule).
///
/// # Panics
///
/// Propagates a panic from `f` (the first worker panic observed).
pub fn par_map<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    // Hand each item an index so results land in their input slot.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| {
                let _mark = WorkerMark::set();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("work slot poisoned")
                        .take()
                        .expect("each slot is claimed exactly once");
                    let out = f(item);
                    *results[i].lock().expect("result slot poisoned") = Some(out);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_results_are_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(4, items, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_sequential_map() {
        let items: Vec<u64> = (0..37).collect();
        let seq: Vec<u64> = items.iter().map(|&i| i.wrapping_mul(0x9E3779B9)).collect();
        let par = par_map(3, items, |i| i.wrapping_mul(0x9E3779B9));
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_empty_and_single() {
        assert_eq!(par_map(4, Vec::<u32>::new(), |i| i), Vec::<u32>::new());
        assert_eq!(par_map(4, vec![7u32], |i| i + 1), vec![8]);
    }

    #[test]
    fn fan_out_covers_every_shard_with_its_index() {
        let mut shards: Vec<(usize, bool)> = (0..5).map(|_| (usize::MAX, false)).collect();
        fan_out_mut(&mut shards, |w, slot| {
            slot.0 = w;
            slot.1 = in_worker();
        });
        for (w, shard) in shards.iter().enumerate() {
            assert_eq!(shard.0, w, "shard {w} ran with the wrong index");
            assert!(shard.1, "shard {w} was not marked as a worker");
        }
        assert!(!in_worker(), "worker mark leaked past the fan-out");
    }

    #[test]
    fn fan_out_handles_empty_and_single() {
        fan_out_mut::<u32, _>(&mut [], |_, _| unreachable!("no shards"));
        let mut one = [0u32];
        fan_out_mut(&mut one, |w, x| *x = w as u32 + 41);
        assert_eq!(one[0], 41);
    }

    /// The composition rule: inside a pool worker, an automatic kernel
    /// thread count resolves to 1 (the outer sweep owns the cores), while
    /// an explicit override stays in force.
    #[test]
    fn nested_kernel_threads_fall_back_to_one() {
        assert!(kernel_threads(None) >= 1);
        // A zero pin clamps to 1 with or without the `parallel` feature.
        assert_eq!(kernel_threads(Some(0)), 1);
        let inner: Vec<(usize, usize)> = par_map(4, vec![(); 8], |()| {
            (kernel_threads(None), kernel_threads(Some(4)))
        });
        for &(auto, pinned) in &inner {
            assert_eq!(auto, 1, "automatic count must not oversubscribe");
            let expect = if cfg!(feature = "parallel") { 4 } else { 1 };
            assert_eq!(pinned, expect, "explicit count is absolute");
        }
        let mut shards = vec![(0usize, 0usize); 4];
        fan_out_mut(&mut shards, |_, slot| {
            *slot = (kernel_threads(None), kernel_threads(Some(2)));
        });
        for &(auto, pinned) in &shards {
            assert_eq!(auto, 1);
            assert_eq!(pinned, if cfg!(feature = "parallel") { 2 } else { 1 });
        }
    }
}
