//! Opt-in reliable delivery: an acknowledgement/retransmit wrapper any
//! [`NodeProgram`] can be lifted into.
//!
//! [`Reliable<P>`] wraps an inner program and turns each of its logical
//! messages into a sequenced [`RelMsg::Data`] frame. Receivers acknowledge
//! every data frame ([`RelMsg::Ack`]), deliver payloads to the inner
//! program **in per-sender order exactly once** (duplicates are re-acked
//! and discarded, out-of-order arrivals are buffered), and senders
//! retransmit unacknowledged frames after a timeout — driven by the fault
//! kernel's timer ticks ([`NodeProgram::wants_tick`]). After
//! `max_retries` retransmissions the sender *gives up* on that frame,
//! which bounds every run: against a crashed or partitioned neighbor the
//! wrapper stops retrying instead of spinning forever, and the simulation
//! reaches quiescence so the driver can degrade gracefully.
//!
//! Determinism: all wrapper state that can influence *which messages are
//! emitted in what order* lives in [`BTreeMap`]s and `Vec`s — iteration
//! order is defined, so wrapped runs replay exactly on both kernels (std
//! `HashMap` iteration order would not).
//!
//! Bandwidth: a data frame costs its payload plus one sequence word; acks
//! cost one word; retransmissions re-charge the link. Callers should widen
//! `budget_words` accordingly (the embedding driver uses `3·B + 2` for
//! wrapped phases).

use std::collections::BTreeMap;

use planar_graph::{Graph, VertexId};

use crate::message::Words;
use crate::network::{run, NodeCtx, NodeProgram, SimConfig, SimError, SimOutcome};

/// Retransmission parameters for [`Reliable`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Rounds to wait for an ack before retransmitting a data frame.
    pub retransmit_after: usize,
    /// Retransmissions per frame before the sender gives up on it.
    pub max_retries: usize,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            retransmit_after: 4,
            max_retries: 8,
        }
    }
}

/// The wire format of the wrapper: sequenced data or an acknowledgement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelMsg<M> {
    /// A payload of the inner protocol, sequenced per directed link.
    Data {
        /// Per-link sequence number (0-based, per sender→receiver pair).
        seq: u32,
        /// The inner message.
        payload: M,
    },
    /// Acknowledges receipt of the data frame with this sequence number.
    Ack {
        /// The acknowledged sequence number.
        seq: u32,
    },
}

impl<M: Words> Words for RelMsg<M> {
    fn words(&self) -> usize {
        match self {
            RelMsg::Data { payload, .. } => 1 + payload.words(),
            RelMsg::Ack { .. } => 1,
        }
    }
}

/// An unacknowledged data frame awaiting its ack.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Pending<M> {
    to: VertexId,
    seq: u32,
    sent_round: usize,
    retries: usize,
    payload: M,
}

/// Lifts a [`NodeProgram`] into reliable (acked, deduplicated, in-order)
/// delivery. See the module docs.
pub struct Reliable<P: NodeProgram> {
    inner: P,
    cfg: ReliableConfig,
    /// Next sequence number per outgoing link.
    next_seq: BTreeMap<VertexId, u32>,
    /// Next expected sequence number per incoming link.
    expected: BTreeMap<VertexId, u32>,
    /// Out-of-order arrivals buffered until their predecessors land.
    ahead: BTreeMap<(VertexId, u32), P::Msg>,
    /// Frames sent but not yet acknowledged, in send order.
    unacked: Vec<Pending<P::Msg>>,
    /// Data retransmissions this node performed.
    retransmissions: usize,
    /// Whether any frame exhausted its retries.
    gave_up: bool,
}

impl<P: NodeProgram> Reliable<P> {
    /// Wraps `inner` with the given retransmission parameters.
    pub fn new(inner: P, cfg: ReliableConfig) -> Self {
        Reliable {
            inner,
            cfg,
            next_seq: BTreeMap::new(),
            expected: BTreeMap::new(),
            ahead: BTreeMap::new(),
            unacked: Vec::new(),
            retransmissions: 0,
            gave_up: false,
        }
    }

    /// The wrapped program.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps into the inner program, discarding wrapper state.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Data retransmissions this node performed.
    pub fn retransmissions(&self) -> usize {
        self.retransmissions
    }

    /// True iff some frame exhausted `max_retries` and was abandoned —
    /// the inner protocol may have lost a message for good.
    pub fn gave_up(&self) -> bool {
        self.gave_up
    }

    fn send_data(
        &mut self,
        to: VertexId,
        payload: P::Msg,
        round: usize,
    ) -> (VertexId, RelMsg<P::Msg>) {
        let seq_slot = self.next_seq.entry(to).or_insert(0);
        let seq = *seq_slot;
        *seq_slot += 1;
        self.unacked.push(Pending {
            to,
            seq,
            sent_round: round,
            retries: 0,
            payload: payload.clone(),
        });
        (to, RelMsg::Data { seq, payload })
    }
}

impl<P: NodeProgram> NodeProgram for Reliable<P> {
    type Msg = RelMsg<P::Msg>;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, Self::Msg)> {
        let out = self.inner.init(ctx);
        out.into_iter()
            .map(|(to, m)| self.send_data(to, m, ctx.round))
            .collect()
    }

    fn on_round(
        &mut self,
        ctx: &NodeCtx<'_>,
        inbox: &[(VertexId, Self::Msg)],
    ) -> Vec<(VertexId, Self::Msg)> {
        let mut out: Vec<(VertexId, Self::Msg)> = Vec::new();
        // The inbox the inner program would have seen on a perfect network:
        // deduplicated, per-sender in-order (the kernel's sender grouping is
        // preserved because sequence release is contiguous per sender).
        let mut inner_inbox: Vec<(VertexId, P::Msg)> = Vec::new();
        for (from, msg) in inbox {
            match msg {
                RelMsg::Ack { seq } => {
                    self.unacked.retain(|p| !(p.to == *from && p.seq == *seq));
                }
                RelMsg::Data { seq, payload } => {
                    // Always ack — a duplicate means our previous ack was
                    // lost (or the frame was duplicated in flight).
                    out.push((*from, RelMsg::Ack { seq: *seq }));
                    let expected = self.expected.entry(*from).or_insert(0);
                    if *seq == *expected {
                        inner_inbox.push((*from, payload.clone()));
                        *expected += 1;
                        while let Some(buffered) = self.ahead.remove(&(*from, *expected)) {
                            inner_inbox.push((*from, buffered));
                            *expected += 1;
                        }
                    } else if *seq > *expected {
                        self.ahead
                            .entry((*from, *seq))
                            .or_insert_with(|| payload.clone());
                    }
                    // seq < expected: stale duplicate, already delivered.
                }
            }
        }
        if !inner_inbox.is_empty() {
            let inner_out = self.inner.on_round(ctx, &inner_inbox);
            for (to, m) in inner_out {
                out.push(self.send_data(to, m, ctx.round));
            }
        }
        // Retransmission timers (reached via real deliveries or the fault
        // kernel's timer ticks).
        let mut i = 0;
        while i < self.unacked.len() {
            if ctx.round >= self.unacked[i].sent_round + self.cfg.retransmit_after {
                if self.unacked[i].retries >= self.cfg.max_retries {
                    self.gave_up = true;
                    self.unacked.remove(i);
                    continue;
                }
                let p = &mut self.unacked[i];
                p.retries += 1;
                p.sent_round = ctx.round;
                self.retransmissions += 1;
                out.push((
                    p.to,
                    RelMsg::Data {
                        seq: p.seq,
                        payload: p.payload.clone(),
                    },
                ));
            }
            i += 1;
        }
        out
    }

    fn wants_tick(&self) -> bool {
        !self.unacked.is_empty()
    }
}

impl<P: NodeProgram + Clone> Clone for Reliable<P> {
    fn clone(&self) -> Self {
        Reliable {
            inner: self.inner.clone(),
            cfg: self.cfg.clone(),
            next_seq: self.next_seq.clone(),
            expected: self.expected.clone(),
            ahead: self.ahead.clone(),
            unacked: self.unacked.clone(),
            retransmissions: self.retransmissions,
            gave_up: self.gave_up,
        }
    }
}

impl<P: NodeProgram + std::fmt::Debug> std::fmt::Debug for Reliable<P>
where
    P::Msg: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reliable")
            .field("inner", &self.inner)
            .field("next_seq", &self.next_seq)
            .field("expected", &self.expected)
            .field("ahead", &self.ahead)
            .field("unacked", &self.unacked)
            .field("retransmissions", &self.retransmissions)
            .field("gave_up", &self.gave_up)
            .finish()
    }
}

impl<P: NodeProgram + PartialEq> PartialEq for Reliable<P>
where
    P::Msg: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
            && self.cfg == other.cfg
            && self.next_seq == other.next_seq
            && self.expected == other.expected
            && self.ahead == other.ahead
            && self.unacked == other.unacked
            && self.retransmissions == other.retransmissions
            && self.gave_up == other.gave_up
    }
}

/// Runs `programs` wrapped in [`Reliable`] and returns the *inner*
/// programs, with the wrapper's total retransmission count folded into
/// `Metrics::retransmissions`.
///
/// # Errors
///
/// Propagates [`SimError`] exactly as [`crate::run`] does.
///
/// # Panics
///
/// Panics if `programs.len() != g.vertex_count()`.
pub fn run_reliable<P: NodeProgram>(
    g: &Graph,
    programs: Vec<P>,
    cfg: &SimConfig,
    rel: &ReliableConfig,
) -> Result<SimOutcome<P>, SimError> {
    let wrapped: Vec<Reliable<P>> = programs
        .into_iter()
        .map(|p| Reliable::new(p, rel.clone()))
        .collect();
    let out = run(g, wrapped, cfg)?;
    let mut metrics = out.metrics;
    let mut inner = Vec::with_capacity(out.programs.len());
    for w in out.programs {
        metrics.retransmissions += w.retransmissions();
        inner.push(w.into_inner());
    }
    Ok(SimOutcome {
        programs: inner,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::network::NodeCtx;

    /// Forward a token along a path from node 0 to the last node.
    #[derive(Clone, Debug, PartialEq)]
    struct Relay {
        got: bool,
    }

    impl NodeProgram for Relay {
        type Msg = u32;

        fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
            if ctx.id == VertexId(0) {
                self.got = true;
                vec![(VertexId(1), 7)]
            } else {
                Vec::new()
            }
        }

        fn on_round(
            &mut self,
            ctx: &NodeCtx<'_>,
            inbox: &[(VertexId, u32)],
        ) -> Vec<(VertexId, u32)> {
            let mut out = Vec::new();
            for &(_, v) in inbox {
                if !self.got {
                    self.got = true;
                    let next = VertexId(ctx.id.0 + 1);
                    if ctx.neighbors.contains(&next) {
                        out.push((next, v));
                    }
                }
            }
            out
        }
    }

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn fault_free_wrapped_run_matches_inner_semantics() {
        let g = path(5);
        let programs = vec![Relay { got: false }; 5];
        let out = run_reliable(
            &g,
            programs,
            &SimConfig::default(),
            &ReliableConfig::default(),
        )
        .unwrap();
        assert!(out.programs.iter().all(|p| p.got));
        assert_eq!(out.metrics.retransmissions, 0);
    }

    #[test]
    fn survives_heavy_drop_rates() {
        let g = path(4);
        let cfg = SimConfig {
            budget_words: DEFAULT_WRAPPED_BUDGET,
            faults: FaultPlan::uniform(99, 0.4, 0.1, 0.3, 2),
            ..SimConfig::default()
        };
        let programs = vec![Relay { got: false }; 4];
        let out = run_reliable(&g, programs, &cfg, &ReliableConfig::default()).unwrap();
        assert!(
            out.programs.iter().all(|p| p.got),
            "token lost under faults"
        );
        assert!(out.metrics.dropped > 0 || out.metrics.delayed > 0);
    }

    #[test]
    fn gives_up_against_a_dead_link_instead_of_spinning() {
        let g = path(2);
        let mut plan = FaultPlan::uniform(1, 0.0, 0.0, 0.0, 0);
        plan.link_overrides.push((
            (VertexId(0), VertexId(1)),
            crate::faults::LinkFaults {
                drop: 1.0,
                duplicate: 0.0,
                delay: 0.0,
                max_delay: 0,
            },
        ));
        let cfg = SimConfig {
            budget_words: DEFAULT_WRAPPED_BUDGET,
            faults: plan,
            ..SimConfig::default()
        };
        let wrapped = vec![
            Reliable::new(Relay { got: false }, ReliableConfig::default()),
            Reliable::new(Relay { got: false }, ReliableConfig::default()),
        ];
        let out = run(&g, wrapped, &cfg).expect("gives up, quiesces, no hang");
        assert!(out.programs[0].gave_up());
        assert!(out.programs[0].retransmissions() >= ReliableConfig::default().max_retries);
        assert!(!out.programs[1].inner().got);
    }

    const DEFAULT_WRAPPED_BUDGET: usize = 3 * crate::network::DEFAULT_BUDGET_WORDS + 2;
}
