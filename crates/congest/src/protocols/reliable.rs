//! Opt-in reliable delivery: an acknowledgement/retransmit wrapper any
//! [`NodeProgram`] can be lifted into.
//!
//! [`Reliable<P>`] wraps an inner program and turns each of its logical
//! messages into a sequenced [`RelMsg::Data`] frame. Receivers acknowledge
//! *cumulatively* — at most one [`RelMsg::Ack`] per sender per round,
//! confirming the whole in-order prefix received so far — deliver payloads
//! to the inner program **in per-sender order exactly once** (duplicates
//! are re-acked and discarded, out-of-order arrivals are buffered), and
//! senders retransmit unacknowledged frames after a timeout — driven by
//! the fault kernel's timer ticks ([`NodeProgram::wants_tick`]). After
//! `max_retries` retransmissions the sender *gives up* on that frame,
//! which bounds every run: against a crashed or partitioned neighbor the
//! wrapper stops retrying instead of spinning forever, and the simulation
//! reaches quiescence so the driver can degrade gracefully.
//!
//! Determinism: all wrapper state that can influence *which messages are
//! emitted in what order* lives in [`BTreeMap`]s and `Vec`s — iteration
//! order is defined, so wrapped runs replay exactly on both kernels (std
//! `HashMap` iteration order would not).
//!
//! Bandwidth: a data frame costs its payload plus one sequence word; acks
//! cost one word; retransmissions re-charge the link. An inner protocol
//! honest to a base budget `B` therefore puts at most `2·B + 1` wrapped
//! words on a link per round when no retransmission fires (≤ `B` payload
//! words + ≤ `B` sequence words + one cumulative ack); the embedding
//! driver widens wrapped phases to `3·B + 2`, leaving `B + 1` words of
//! slack for retransmissions colliding with fresh traffic. Cumulative acks
//! are what make this a *fixed* bound — per-frame acking would scale with
//! the number of delayed/duplicated frames that happen to land in one
//! round (see the ack-pile-up regression test).

use std::collections::BTreeMap;

use planar_graph::{Graph, VertexId};

use crate::message::Words;
use crate::network::{
    run, run_many, Instance, MultiOutcome, NodeCtx, NodeProgram, SimConfig, SimError, SimOutcome,
};

/// Retransmission parameters for [`Reliable`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Rounds to wait for an ack before retransmitting a data frame.
    pub retransmit_after: usize,
    /// Retransmissions per frame before the sender gives up on it.
    pub max_retries: usize,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            retransmit_after: 4,
            max_retries: 8,
        }
    }
}

/// The wire format of the wrapper: sequenced data or an acknowledgement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelMsg<M> {
    /// A payload of the inner protocol, sequenced per directed link.
    Data {
        /// Per-link sequence number (0-based, per sender→receiver pair).
        seq: u32,
        /// The inner message.
        payload: M,
    },
    /// Cumulative acknowledgement: confirms in-order receipt of every data
    /// frame with sequence number *below* `seq` on this link.
    Ack {
        /// The receiver's next expected sequence number (all frames `< seq`
        /// are delivered).
        seq: u32,
    },
}

impl<M: Words> Words for RelMsg<M> {
    fn words(&self) -> usize {
        match self {
            RelMsg::Data { payload, .. } => 1 + payload.words(),
            RelMsg::Ack { .. } => 1,
        }
    }
}

/// An unacknowledged data frame awaiting its ack.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Pending<M> {
    to: VertexId,
    seq: u32,
    sent_round: usize,
    retries: usize,
    payload: M,
}

/// Lifts a [`NodeProgram`] into reliable (acked, deduplicated, in-order)
/// delivery. See the module docs.
pub struct Reliable<P: NodeProgram> {
    inner: P,
    cfg: ReliableConfig,
    /// Next sequence number per outgoing link.
    next_seq: BTreeMap<VertexId, u32>,
    /// Next expected sequence number per incoming link.
    expected: BTreeMap<VertexId, u32>,
    /// Out-of-order arrivals buffered until their predecessors land.
    ahead: BTreeMap<(VertexId, u32), P::Msg>,
    /// Frames sent but not yet acknowledged, in send order.
    unacked: Vec<Pending<P::Msg>>,
    /// Data retransmissions this node performed.
    retransmissions: usize,
    /// Whether any frame exhausted its retries.
    gave_up: bool,
}

impl<P: NodeProgram> Reliable<P> {
    /// Wraps `inner` with the given retransmission parameters.
    pub fn new(inner: P, cfg: ReliableConfig) -> Self {
        Reliable {
            inner,
            cfg,
            next_seq: BTreeMap::new(),
            expected: BTreeMap::new(),
            ahead: BTreeMap::new(),
            unacked: Vec::new(),
            retransmissions: 0,
            gave_up: false,
        }
    }

    /// The wrapped program.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps into the inner program, discarding wrapper state.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Data retransmissions this node performed.
    pub fn retransmissions(&self) -> usize {
        self.retransmissions
    }

    /// True iff some frame exhausted `max_retries` and was abandoned —
    /// the inner protocol may have lost a message for good.
    ///
    /// Conservative: acks are cumulative, so a frame the receiver buffered
    /// *ahead* of a missing predecessor is not individually confirmed; if
    /// the hole never fills, the sender abandons the (actually received)
    /// frame and reports `gave_up` anyway. The flag is advisory — delivery
    /// state of record is the receiver's.
    pub fn gave_up(&self) -> bool {
        self.gave_up
    }

    fn send_data(
        &mut self,
        to: VertexId,
        payload: P::Msg,
        round: usize,
    ) -> (VertexId, RelMsg<P::Msg>) {
        let seq_slot = self.next_seq.entry(to).or_insert(0);
        let seq = *seq_slot;
        *seq_slot += 1;
        self.unacked.push(Pending {
            to,
            seq,
            sent_round: round,
            retries: 0,
            payload: payload.clone(),
        });
        (to, RelMsg::Data { seq, payload })
    }
}

impl<P: NodeProgram> NodeProgram for Reliable<P> {
    type Msg = RelMsg<P::Msg>;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, Self::Msg)> {
        let out = self.inner.init(ctx);
        out.into_iter()
            .map(|(to, m)| self.send_data(to, m, ctx.round))
            .collect()
    }

    fn on_round(
        &mut self,
        ctx: &NodeCtx<'_>,
        inbox: &[(VertexId, Self::Msg)],
    ) -> Vec<(VertexId, Self::Msg)> {
        let mut out: Vec<(VertexId, Self::Msg)> = Vec::new();
        // The inbox the inner program would have seen on a perfect network:
        // deduplicated, per-sender in-order (the kernel's sender grouping is
        // preserved because sequence release is contiguous per sender).
        let mut inner_inbox: Vec<(VertexId, P::Msg)> = Vec::new();
        // Senders owed an acknowledgement this round. Acks are cumulative
        // (`Ack { seq }` confirms every frame below `seq`), so one ack per
        // sender per round suffices no matter how many data frames piled up
        // — duplicates, delay bunching and retransmissions included. A
        // per-frame ack here can exceed the advertised `3·B + 2` wrapped
        // budget on the reverse link when several delayed frames land
        // together.
        let mut ack_now: BTreeMap<VertexId, u32> = BTreeMap::new();
        for (from, msg) in inbox {
            match msg {
                RelMsg::Ack { seq } => {
                    self.unacked.retain(|p| !(p.to == *from && p.seq < *seq));
                }
                RelMsg::Data { seq, payload } => {
                    let expected = self.expected.entry(*from).or_insert(0);
                    if *seq == *expected {
                        inner_inbox.push((*from, payload.clone()));
                        *expected += 1;
                        while let Some(buffered) = self.ahead.remove(&(*from, *expected)) {
                            inner_inbox.push((*from, buffered));
                            *expected += 1;
                        }
                    } else if *seq > *expected {
                        self.ahead
                            .entry((*from, *seq))
                            .or_insert_with(|| payload.clone());
                    }
                    // seq < expected: stale duplicate, already delivered —
                    // still re-acked below (our previous ack may be lost).
                    ack_now.insert(*from, *expected);
                }
            }
        }
        for (&from, &upto) in &ack_now {
            out.push((from, RelMsg::Ack { seq: upto }));
        }
        if !inner_inbox.is_empty() {
            let inner_out = self.inner.on_round(ctx, &inner_inbox);
            for (to, m) in inner_out {
                out.push(self.send_data(to, m, ctx.round));
            }
        }
        // Retransmission timers (reached via real deliveries or the fault
        // kernel's timer ticks).
        let mut i = 0;
        while i < self.unacked.len() {
            if ctx.round >= self.unacked[i].sent_round + self.cfg.retransmit_after {
                if self.unacked[i].retries >= self.cfg.max_retries {
                    self.gave_up = true;
                    self.unacked.remove(i);
                    continue;
                }
                let p = &mut self.unacked[i];
                p.retries += 1;
                p.sent_round = ctx.round;
                self.retransmissions += 1;
                out.push((
                    p.to,
                    RelMsg::Data {
                        seq: p.seq,
                        payload: p.payload.clone(),
                    },
                ));
            }
            i += 1;
        }
        out
    }

    fn wants_tick(&self) -> bool {
        !self.unacked.is_empty()
    }
}

impl<P: NodeProgram + Clone> Clone for Reliable<P> {
    fn clone(&self) -> Self {
        Reliable {
            inner: self.inner.clone(),
            cfg: self.cfg.clone(),
            next_seq: self.next_seq.clone(),
            expected: self.expected.clone(),
            ahead: self.ahead.clone(),
            unacked: self.unacked.clone(),
            retransmissions: self.retransmissions,
            gave_up: self.gave_up,
        }
    }
}

impl<P: NodeProgram + std::fmt::Debug> std::fmt::Debug for Reliable<P>
where
    P::Msg: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reliable")
            .field("inner", &self.inner)
            .field("next_seq", &self.next_seq)
            .field("expected", &self.expected)
            .field("ahead", &self.ahead)
            .field("unacked", &self.unacked)
            .field("retransmissions", &self.retransmissions)
            .field("gave_up", &self.gave_up)
            .finish()
    }
}

impl<P: NodeProgram + PartialEq> PartialEq for Reliable<P>
where
    P::Msg: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
            && self.cfg == other.cfg
            && self.next_seq == other.next_seq
            && self.expected == other.expected
            && self.ahead == other.ahead
            && self.unacked == other.unacked
            && self.retransmissions == other.retransmissions
            && self.gave_up == other.gave_up
    }
}

/// Runs `programs` wrapped in [`Reliable`] and returns the *inner*
/// programs, with the wrapper's total retransmission count folded into
/// `Metrics::retransmissions`.
///
/// # Errors
///
/// Propagates [`SimError`] exactly as [`crate::run`] does.
///
/// # Panics
///
/// Panics if `programs.len() != g.vertex_count()`.
pub fn run_reliable<P: NodeProgram + Send>(
    g: &Graph,
    programs: Vec<P>,
    cfg: &SimConfig,
    rel: &ReliableConfig,
) -> Result<SimOutcome<P>, SimError>
where
    P::Msg: Send + Sync,
{
    let out = run(g, wrap_programs(programs, rel), cfg)?;
    Ok(unwrap_reliable(out, cfg))
}

/// Wraps every program in [`Reliable`] with the same retransmission
/// parameters — the lift half of [`run_reliable`], exposed so callers can
/// compose reliability with any kernel entry point (fast, reference, or
/// batched).
pub fn wrap_programs<P: NodeProgram>(programs: Vec<P>, rel: &ReliableConfig) -> Vec<Reliable<P>> {
    programs
        .into_iter()
        .map(|p| Reliable::new(p, rel.clone()))
        .collect()
}

/// Wraps every instance's programs in [`Reliable`] — the batched
/// counterpart of [`wrap_programs`].
pub fn wrap_instances<P: NodeProgram>(
    instances: Vec<Instance<P>>,
    rel: &ReliableConfig,
) -> Vec<Instance<Reliable<P>>> {
    instances
        .into_iter()
        .map(|inst| inst.map(|p| Reliable::new(p, rel.clone())))
        .collect()
}

/// Unwraps a wrapped run back to the inner programs, folding the wrapper's
/// total retransmission count into `Metrics::retransmissions`.
///
/// The kernel cannot see retransmissions (they are wrapper state), so the
/// trace carries them as an explicit post-run event the auditor folds into
/// its recomputed totals.
pub fn unwrap_reliable<P: NodeProgram>(
    out: SimOutcome<Reliable<P>>,
    cfg: &SimConfig,
) -> SimOutcome<P> {
    let mut metrics = out.metrics;
    let mut folded = 0usize;
    let mut inner = Vec::with_capacity(out.programs.len());
    for w in out.programs {
        folded = folded.saturating_add(w.retransmissions());
        inner.push(w.into_inner());
    }
    metrics.retransmissions = metrics.retransmissions.saturating_add(folded);
    if cfg.trace.is_on() {
        cfg.trace
            .emit(crate::trace::TraceEvent::Retransmissions { count: folded });
    }
    SimOutcome {
        programs: inner,
        metrics,
    }
}

/// Unwraps a wrapped batched run: per-instance retransmissions fold into
/// that instance's metrics, the batch total into the shared metrics (one
/// trace event for the whole batch).
///
/// The kernel's `InstanceEnd` trace events were emitted *before* this fold
/// and deliberately carry the kernel-observable values — the auditor
/// recomputes and checks those, then folds the explicit
/// [`Retransmissions`](crate::trace::TraceEvent) event into its totals.
pub fn unwrap_reliable_many<P: NodeProgram>(
    out: MultiOutcome<Reliable<P>>,
    cfg: &SimConfig,
) -> MultiOutcome<P> {
    let mut metrics = out.metrics;
    let mut folded = 0usize;
    let mut instances = Vec::with_capacity(out.instances.len());
    for inst in out.instances {
        let mut inst_metrics = inst.metrics;
        let mut inst_folded = 0usize;
        let mut inner = Vec::with_capacity(inst.programs.len());
        for w in inst.programs {
            inst_folded = inst_folded.saturating_add(w.retransmissions());
            inner.push(w.into_inner());
        }
        inst_metrics.retransmissions = inst_metrics.retransmissions.saturating_add(inst_folded);
        folded = folded.saturating_add(inst_folded);
        instances.push(crate::network::InstanceOutcome {
            members: inst.members,
            programs: inner,
            metrics: inst_metrics,
        });
    }
    metrics.retransmissions = metrics.retransmissions.saturating_add(folded);
    if cfg.trace.is_on() {
        cfg.trace
            .emit(crate::trace::TraceEvent::Retransmissions { count: folded });
    }
    MultiOutcome { instances, metrics }
}

/// Runs vertex-disjoint `instances` wrapped in [`Reliable`] in one shared
/// round lattice and returns the *inner* programs — the batched
/// counterpart of [`run_reliable`].
///
/// # Errors
///
/// Propagates [`SimError`] exactly as [`crate::run_many`] does.
///
/// # Panics
///
/// Panics if instances overlap or name vertices outside `g`.
pub fn run_reliable_many<P: NodeProgram + Send>(
    g: &Graph,
    instances: Vec<Instance<P>>,
    cfg: &SimConfig,
    rel: &ReliableConfig,
) -> Result<MultiOutcome<P>, SimError>
where
    P::Msg: Send + Sync,
{
    let out = run_many(g, wrap_instances(instances, rel), cfg)?;
    Ok(unwrap_reliable_many(out, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::network::NodeCtx;

    /// Forward a token along a path from node 0 to the last node.
    #[derive(Clone, Debug, PartialEq)]
    struct Relay {
        got: bool,
    }

    impl NodeProgram for Relay {
        type Msg = u32;

        fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
            if ctx.id == VertexId(0) {
                self.got = true;
                vec![(VertexId(1), 7)]
            } else {
                Vec::new()
            }
        }

        fn on_round(
            &mut self,
            ctx: &NodeCtx<'_>,
            inbox: &[(VertexId, u32)],
        ) -> Vec<(VertexId, u32)> {
            let mut out = Vec::new();
            for &(_, v) in inbox {
                if !self.got {
                    self.got = true;
                    let next = VertexId(ctx.id.0 + 1);
                    if ctx.neighbors.contains(&next) {
                        out.push((next, v));
                    }
                }
            }
            out
        }
    }

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn fault_free_wrapped_run_matches_inner_semantics() {
        let g = path(5);
        let programs = vec![Relay { got: false }; 5];
        let out = run_reliable(
            &g,
            programs,
            &SimConfig::default(),
            &ReliableConfig::default(),
        )
        .unwrap();
        assert!(out.programs.iter().all(|p| p.got));
        assert_eq!(out.metrics.retransmissions, 0);
    }

    #[test]
    fn survives_heavy_drop_rates() {
        let g = path(4);
        let cfg = SimConfig {
            budget_words: DEFAULT_WRAPPED_BUDGET,
            faults: FaultPlan::uniform(99, 0.4, 0.1, 0.3, 2),
            ..SimConfig::default()
        };
        let programs = vec![Relay { got: false }; 4];
        let out = run_reliable(&g, programs, &cfg, &ReliableConfig::default()).unwrap();
        assert!(
            out.programs.iter().all(|p| p.got),
            "token lost under faults"
        );
        assert!(out.metrics.dropped > 0 || out.metrics.delayed > 0);
    }

    #[test]
    fn gives_up_against_a_dead_link_instead_of_spinning() {
        let g = path(2);
        let mut plan = FaultPlan::uniform(1, 0.0, 0.0, 0.0, 0);
        plan.link_overrides.push((
            (VertexId(0), VertexId(1)),
            crate::faults::LinkFaults {
                drop: 1.0,
                duplicate: 0.0,
                delay: 0.0,
                max_delay: 0,
            },
        ));
        let cfg = SimConfig {
            budget_words: DEFAULT_WRAPPED_BUDGET,
            faults: plan,
            ..SimConfig::default()
        };
        let wrapped = vec![
            Reliable::new(Relay { got: false }, ReliableConfig::default()),
            Reliable::new(Relay { got: false }, ReliableConfig::default()),
        ];
        let out = run(&g, wrapped, &cfg).expect("gives up, quiesces, no hang");
        assert!(out.programs[0].gave_up());
        assert!(out.programs[0].retransmissions() >= ReliableConfig::default().max_retries);
        assert!(!out.programs[1].inner().got);
    }

    const DEFAULT_WRAPPED_BUDGET: usize = 3 * crate::network::DEFAULT_BUDGET_WORDS + 2;

    /// Star with center 0: leaf 1 is a pure sink, leaf 2 is a clock that
    /// echoes with the center so node 0 can emit one 1-word ping to node 1
    /// every other round, `pings` times.
    #[derive(Clone, Debug, PartialEq)]
    struct DripPinger {
        pings_left: usize,
    }

    impl NodeProgram for DripPinger {
        type Msg = u32;

        fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
            if ctx.id == VertexId(2) {
                vec![(VertexId(0), 0)]
            } else {
                Vec::new()
            }
        }

        fn on_round(
            &mut self,
            ctx: &NodeCtx<'_>,
            inbox: &[(VertexId, u32)],
        ) -> Vec<(VertexId, u32)> {
            match ctx.id {
                VertexId(0) => {
                    let mut out = Vec::new();
                    if inbox.iter().any(|&(f, _)| f == VertexId(2)) && self.pings_left > 0 {
                        self.pings_left -= 1;
                        out.push((VertexId(1), 0));
                        if self.pings_left > 0 {
                            out.push((VertexId(2), 0));
                        }
                    }
                    out
                }
                VertexId(2) => {
                    if inbox.iter().any(|&(f, _)| f == VertexId(0)) {
                        vec![(VertexId(0), 0)]
                    } else {
                        Vec::new()
                    }
                }
                _ => Vec::new(),
            }
        }
    }

    fn drip_cfg(seed: u64) -> SimConfig {
        let mut plan = FaultPlan::uniform(seed, 0.0, 0.0, 0.0, 0);
        // The ping link jitters hard: every frame duplicated and delayed by
        // 1..=5 rounds, so frames sent in different rounds can pile up into
        // one delivery round at the sink.
        plan.link_overrides.push((
            (VertexId(0), VertexId(1)),
            crate::faults::LinkFaults {
                drop: 0.0,
                duplicate: 1.0,
                delay: 1.0,
                max_delay: 5,
            },
        ));
        SimConfig {
            // Inner protocol uses 1-word messages: the advertised wrapped
            // budget for base budget 1 is 3·1 + 2 = 5.
            budget_words: 5,
            faults: plan,
            ..SimConfig::default()
        }
    }

    /// Regression (ack pile-up): with per-frame acks, three delayed data
    /// frames landing at the sink in one round — each duplicated, so six
    /// arrivals — provoked six 1-word acks on the reverse link, blowing the
    /// advertised `3·B + 2 = 5` wrapped budget for a 1-word inner protocol
    /// (seed 33 reproduces the pile-up deterministically; pre-fix this run
    /// failed with `BudgetExceeded { from: 1, to: 0, words: 6, budget: 5 }`).
    /// Cumulative acks cap the reverse link at one word per sender per
    /// round, so the run must now fit the advertised budget.
    #[test]
    fn ack_traffic_fits_the_advertised_wrapped_budget() {
        let g = Graph::from_edges(3, [(0, 1), (0, 2)]).unwrap();
        let rel = ReliableConfig {
            retransmit_after: 50, // never fires in this short run
            max_retries: 8,
        };
        let programs = vec![
            DripPinger { pings_left: 12 },
            DripPinger { pings_left: 0 },
            DripPinger { pings_left: 0 },
        ];
        let out = run_reliable(&g, programs, &drip_cfg(33), &rel)
            .expect("advertised wrapped budget must hold under delay bunching");
        // All twelve pings made it through the jittery link exactly once.
        assert!(out.metrics.duplicated > 0);
        assert!(out.metrics.delayed > 0);
        assert_eq!(out.metrics.retransmissions, 0);
    }

    /// A maximum-width inner message (exactly the base budget `B` when
    /// wrapped: `1 + payload.words() = 1 + 8 = 9` data words) survives the
    /// wrapper under drop faults that force retransmission, inside the
    /// advertised `3·B + 2` budget.
    #[test]
    fn max_width_message_fits_the_wrapped_budget() {
        #[derive(Clone, Debug, PartialEq)]
        struct WidePing {
            got: Option<Vec<u32>>,
        }
        impl NodeProgram for WidePing {
            type Msg = Vec<u32>;
            fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, Vec<u32>)> {
                if ctx.id == VertexId(0) {
                    // words() = 1 + len = 8 = DEFAULT_BUDGET_WORDS.
                    vec![(VertexId(1), vec![7; 7])]
                } else {
                    Vec::new()
                }
            }
            fn on_round(
                &mut self,
                _: &NodeCtx<'_>,
                inbox: &[(VertexId, Vec<u32>)],
            ) -> Vec<(VertexId, Vec<u32>)> {
                for (_, payload) in inbox {
                    self.got = Some(payload.clone());
                }
                Vec::new()
            }
        }
        let payload = vec![7u32; 7];
        assert_eq!(payload.words(), crate::network::DEFAULT_BUDGET_WORDS);
        assert_eq!(
            RelMsg::Data {
                seq: 0,
                payload: payload.clone()
            }
            .words(),
            crate::network::DEFAULT_BUDGET_WORDS + 1,
            "a max-width data frame is payload plus one sequence word"
        );
        let g = path(2);
        let cfg = SimConfig {
            budget_words: DEFAULT_WRAPPED_BUDGET,
            // Drop roughly half of everything: the frame needs retries.
            faults: FaultPlan::uniform(5, 0.5, 0.0, 0.0, 0),
            ..SimConfig::default()
        };
        let rel = ReliableConfig {
            retransmit_after: 2,
            max_retries: 16,
        };
        let out = run_reliable(
            &g,
            vec![WidePing { got: None }, WidePing { got: None }],
            &cfg,
            &rel,
        )
        .expect("max-width frame plus acks fit 3B+2");
        assert_eq!(out.programs[1].got.as_deref(), Some(&payload[..]));
        assert!(out.metrics.dropped > 0, "seed 5 must actually drop frames");
    }
}
