//! Combined leader election and BFS-tree construction by flooding.
//!
//! Every node floods the best `(leader, distance)` pair it knows, preferring
//! larger leader ids and, among equal leaders, smaller distances. After
//! `O(D)` rounds the unique maximum-id node in each connected group has won
//! everywhere and the parent pointers form a BFS tree rooted at it — the
//! paper's setup step ("the vertex with the largest ID, which can be
//! computed in `O(D)` rounds", Section 4).

use planar_graph::VertexId;

use crate::network::{NodeCtx, NodeProgram};

/// Per-node state of the leader-election / BFS-tree flood.
#[derive(Clone, Debug)]
pub struct LeaderBfs {
    /// Neighbors participating in this node's group (scoping, see module doc).
    allowed: Vec<VertexId>,
    /// Whether this node participates at all.
    active: bool,
    best_leader: VertexId,
    best_dist: u32,
    parent: Option<VertexId>,
}

impl LeaderBfs {
    /// Creates the program for one node with the given participating
    /// neighbor set (`allowed` must be a subset of the node's real
    /// neighbors; `id` is the node's own id).
    pub fn new(id: VertexId, allowed: Vec<VertexId>) -> Self {
        LeaderBfs {
            allowed,
            active: true,
            best_leader: id,
            best_dist: 0,
            parent: None,
        }
    }

    /// Creates an inactive program (the node is not part of any group).
    pub fn inactive(id: VertexId) -> Self {
        LeaderBfs {
            allowed: Vec::new(),
            active: false,
            best_leader: id,
            best_dist: 0,
            parent: None,
        }
    }

    /// The elected leader (valid after the simulation quiesces).
    pub fn leader(&self) -> VertexId {
        self.best_leader
    }

    /// BFS parent towards the leader (`None` at the leader itself).
    pub fn parent(&self) -> Option<VertexId> {
        self.parent
    }

    /// Hop distance to the leader.
    pub fn dist(&self) -> u32 {
        self.best_dist
    }

    /// Whether this node won the election in its group.
    pub fn is_leader(&self, id: VertexId) -> bool {
        self.best_leader == id
    }

    fn offer(&mut self, from: VertexId, leader: VertexId, dist: u32) -> bool {
        let better =
            leader > self.best_leader || (leader == self.best_leader && dist < self.best_dist);
        if better {
            self.best_leader = leader;
            self.best_dist = dist;
            self.parent = Some(from);
        }
        better
    }
}

impl NodeProgram for LeaderBfs {
    /// `(leader id, distance)` — 2 words.
    type Msg = (VertexId, u32);

    fn init(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(VertexId, Self::Msg)> {
        if !self.active {
            return Vec::new();
        }
        let announce = (self.best_leader, 0);
        self.allowed.iter().map(|&w| (w, announce)).collect()
    }

    fn on_round(
        &mut self,
        _ctx: &NodeCtx<'_>,
        inbox: &[(VertexId, Self::Msg)],
    ) -> Vec<(VertexId, Self::Msg)> {
        if !self.active {
            return Vec::new();
        }
        let mut improved = false;
        for &(from, (leader, dist)) in inbox {
            improved |= self.offer(from, leader, dist.saturating_add(1));
        }
        if improved {
            let announce = (self.best_leader, self.best_dist);
            self.allowed.iter().map(|&w| (w, announce)).collect()
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{run, SimConfig};
    use planar_graph::Graph;

    fn run_leader_bfs(g: &Graph) -> (Vec<LeaderBfs>, usize) {
        let programs: Vec<LeaderBfs> = g
            .vertices()
            .map(|v| LeaderBfs::new(v, g.neighbors(v).to_vec()))
            .collect();
        let out = run(g, programs, &SimConfig::default()).unwrap();
        (out.programs, out.metrics.rounds)
    }

    #[test]
    fn path_elects_max_and_builds_bfs() {
        let n = 9usize;
        let g = Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap();
        let (ps, rounds) = run_leader_bfs(&g);
        for (i, p) in ps.iter().enumerate() {
            assert_eq!(p.leader(), VertexId(8));
            assert_eq!(p.dist(), (8 - i) as u32);
        }
        assert!(ps[8].parent().is_none());
        assert_eq!(ps[0].parent(), Some(VertexId(1)));
        // O(D): the flood needs at most ~2·D rounds on a path.
        assert!(rounds <= 2 * n, "rounds = {rounds}");
    }

    #[test]
    fn grid_distances_are_bfs_distances() {
        // 3x3 grid, max id = 8 at corner (2,2).
        let idx = |r: u32, c: u32| r * 3 + c;
        let mut edges = Vec::new();
        for r in 0..3u32 {
            for c in 0..3u32 {
                if c + 1 < 3 {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < 3 {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        let g = Graph::from_edges(9, edges).unwrap();
        let (ps, _) = run_leader_bfs(&g);
        for r in 0..3u32 {
            for c in 0..3u32 {
                let p = &ps[idx(r, c) as usize];
                assert_eq!(p.leader(), VertexId(8));
                assert_eq!(p.dist(), (2 - r) + (2 - c));
            }
        }
    }

    #[test]
    fn scoped_groups_elect_separate_leaders() {
        // One path 0-1-2-3, but scoped into groups {0,1} and {2,3}: the
        // middle edge (1,2) is excluded from both groups.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let programs = vec![
            LeaderBfs::new(VertexId(0), vec![VertexId(1)]),
            LeaderBfs::new(VertexId(1), vec![VertexId(0)]),
            LeaderBfs::new(VertexId(2), vec![VertexId(3)]),
            LeaderBfs::new(VertexId(3), vec![VertexId(2)]),
        ];
        let out = run(&g, programs, &SimConfig::default()).unwrap();
        assert_eq!(out.programs[0].leader(), VertexId(1));
        assert_eq!(out.programs[1].leader(), VertexId(1));
        assert_eq!(out.programs[2].leader(), VertexId(3));
        assert_eq!(out.programs[3].leader(), VertexId(3));
    }

    #[test]
    fn inactive_nodes_stay_silent() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let programs = vec![
            LeaderBfs::inactive(VertexId(0)),
            LeaderBfs::inactive(VertexId(1)),
        ];
        let out = run(&g, programs, &SimConfig::default()).unwrap();
        assert_eq!(out.metrics.messages, 0);
    }
}
