//! The distributed centroid walk of Section 4 ("The Partitioning").
//!
//! Given a tree `T_s` whose nodes know their subtree sizes (from a prior
//! [`Convergecast`](crate::protocols::Convergecast) with [`AggOp::Sum`]
//! (crate::protocols::AggOp::Sum)), a token walks down from the root `s`
//! toward the unique heavy child until it reaches a vertex `v` whose removal
//! leaves only components of size `<= 2|T_s|/3`. The token's trail is
//! exactly the path `P_0 = s..v` of the paper's partition, and the walk
//! takes `depth(T_s)` rounds ("it can be computed distributedly in O(d)
//! time where d = depth(T_s)").

use std::collections::HashMap;

use planar_graph::VertexId;

use crate::network::{NodeCtx, NodeProgram};

/// Per-node state of the centroid walk.
#[derive(Clone, Debug)]
pub struct CentroidWalk {
    children_sizes: HashMap<VertexId, u64>,
    total: u64,
    is_root: bool,
    on_path: bool,
    is_centroid: bool,
}

impl CentroidWalk {
    /// Creates the program for one tree node.
    ///
    /// * `children_sizes` — subtree size of each child (from the
    ///   convergecast phase);
    /// * `total` — `|T_s|`, known tree-wide after the size broadcast;
    /// * `is_root` — whether this node is `s`, the walk's origin.
    pub fn new(children_sizes: HashMap<VertexId, u64>, total: u64, is_root: bool) -> Self {
        CentroidWalk {
            children_sizes,
            total,
            is_root,
            on_path: false,
            is_centroid: false,
        }
    }

    /// A node not participating in any walk.
    pub fn inactive() -> Self {
        CentroidWalk {
            children_sizes: HashMap::new(),
            total: 0,
            is_root: false,
            on_path: false,
            is_centroid: false,
        }
    }

    /// Whether the walk token passed through (or stopped at) this node —
    /// i.e. whether the node belongs to `P_0`.
    pub fn on_path(&self) -> bool {
        self.on_path
    }

    /// Whether the walk stopped here: this node is the splitter `v` with all
    /// components of `T_s - v` of size `<= 2|T_s|/3`.
    pub fn is_centroid(&self) -> bool {
        self.is_centroid
    }

    /// Walk step: if some child subtree is heavier than `2/3 · total`, the
    /// token moves there; otherwise this node is the splitter.
    fn step(&mut self) -> Vec<(VertexId, bool)> {
        self.on_path = true;
        let heavy = self
            .children_sizes
            .iter()
            .find(|&(_, &s)| 3 * s > 2 * self.total)
            .map(|(&c, _)| c);
        match heavy {
            Some(c) => vec![(c, true)],
            None => {
                self.is_centroid = true;
                Vec::new()
            }
        }
    }
}

impl NodeProgram for CentroidWalk {
    type Msg = bool; // the walk token, 1 word

    fn init(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(VertexId, bool)> {
        if self.is_root && self.total > 0 {
            self.step()
        } else {
            Vec::new()
        }
    }

    fn on_round(
        &mut self,
        _ctx: &NodeCtx<'_>,
        inbox: &[(VertexId, bool)],
    ) -> Vec<(VertexId, bool)> {
        if inbox.is_empty() {
            return Vec::new();
        }
        self.step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{run, SimConfig};
    use crate::protocols::{AggOp, Convergecast};
    use planar_graph::traversal::bfs;
    use planar_graph::Graph;

    /// Runs convergecast + centroid walk on the BFS tree of `g` rooted at
    /// `root`; returns (centroid, path vertices, walk rounds).
    fn find_centroid(g: &Graph, root: VertexId) -> (VertexId, Vec<VertexId>, usize) {
        let tree = bfs(g, root);
        let programs: Vec<Convergecast> = g
            .vertices()
            .map(|v| Convergecast::new(tree.parent[v.index()], &tree.children(v), 1, AggOp::Sum))
            .collect();
        let sizes = run(g, programs, &SimConfig::default()).unwrap().programs;
        let total = sizes[root.index()].result().unwrap();
        let walkers: Vec<CentroidWalk> = g
            .vertices()
            .map(|v| CentroidWalk::new(sizes[v.index()].child_values().clone(), total, v == root))
            .collect();
        let out = run(g, walkers, &SimConfig::default()).unwrap();
        let centroid = g
            .vertices()
            .find(|&v| out.programs[v.index()].is_centroid())
            .expect("walk terminates at a centroid");
        let path: Vec<VertexId> = g
            .vertices()
            .filter(|&v| out.programs[v.index()].on_path())
            .collect();
        (centroid, path, out.metrics.rounds)
    }

    #[test]
    fn centroid_of_path_is_middle() {
        let n = 9;
        let g = Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap();
        let (c, path, _) = find_centroid(&g, VertexId(0));
        // From root 0, the walk must reach a vertex such that both sides are
        // <= 2n/3 = 6: vertices 2..=5 qualify; the walk stops at the first.
        assert_eq!(c, VertexId(2));
        // P_0 is the prefix 0..=2.
        assert_eq!(path, vec![VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn centroid_of_star_is_hub_even_from_leaf() {
        let g = Graph::from_edges(7, (1..7u32).map(|i| (0, i))).unwrap();
        let (c, path, _) = find_centroid(&g, VertexId(3));
        assert_eq!(c, VertexId(0));
        assert_eq!(path, vec![VertexId(0), VertexId(3)]);
    }

    #[test]
    fn centroid_components_are_balanced() {
        // Random-ish tree.
        let g = Graph::from_edges(
            10,
            [
                (0, 1),
                (1, 2),
                (1, 3),
                (3, 4),
                (3, 5),
                (5, 6),
                (6, 7),
                (6, 8),
                (8, 9),
            ],
        )
        .unwrap();
        let root = VertexId(0);
        let (c, _, _) = find_centroid(&g, root);
        // Verify the guarantee of Lemma 4.2 directly: all components of
        // T - c have size <= 2n/3.
        let tree = bfs(&g, root);
        let sizes = tree.subtree_sizes();
        let n = g.vertex_count();
        let mut comps = vec![n - sizes[c.index()]]; // the part above c
        for ch in tree.children(c) {
            comps.push(sizes[ch.index()]);
        }
        for s in comps {
            assert!(3 * s <= 2 * n, "component of size {s} exceeds 2n/3");
        }
    }

    #[test]
    fn walk_rounds_bounded_by_depth() {
        let n = 20;
        let g = Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap();
        let (_, path, rounds) = find_centroid(&g, VertexId(0));
        assert_eq!(rounds, path.len() - 1);
        assert!(rounds <= n);
    }

    #[test]
    fn single_vertex_tree() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        // Tree = just vertex 0 (vertex 1 inactive, total = 1).
        let walkers = vec![
            CentroidWalk::new(HashMap::new(), 1, true),
            CentroidWalk::inactive(),
        ];
        let out = run(&g, walkers, &SimConfig::default()).unwrap();
        assert!(out.programs[0].is_centroid());
        assert_eq!(out.metrics.rounds, 0);
    }
}
