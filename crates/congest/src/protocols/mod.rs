//! Standard distributed protocol library: the message-level building blocks
//! the paper treats as "standard upcast and downcast techniques" (Remark 1)
//! plus leader election / BFS-tree construction.
//!
//! All protocols here are genuine [`NodeProgram`](crate::NodeProgram)s: every
//! bit of information they move is carried by simulator messages and charged
//! against the per-edge budget, so their measured round counts are the real
//! CONGEST costs.
//!
//! Protocols are *scoped*: each node is configured with the subset of its
//! neighbors that participate in its group (its part, in the paper's
//! terminology), so disjoint parts can run the same protocol concurrently in
//! a single simulation — exactly the parallelism the divide-and-conquer
//! framework of Section 4 exploits.

mod centroid;
mod leader;
pub mod reliable;
mod tree;

pub use centroid::CentroidWalk;
pub use leader::LeaderBfs;
pub use reliable::{
    run_reliable, run_reliable_many, unwrap_reliable, unwrap_reliable_many, wrap_instances,
    wrap_programs, RelMsg, Reliable, ReliableConfig,
};
pub use tree::{AggOp, ChildNotify, Convergecast, Downcast};
