//! Tree protocols: child discovery, convergecast (upcast) and downcast.
//!
//! These are the "standard upcast and downcast techniques" Remark 1 of the
//! paper invokes for simulating per-part operations (max, min, sum, ...) on
//! a BFS tree of the part in `O(diameter)` rounds.

use std::collections::HashMap;

use planar_graph::VertexId;

use crate::network::{NodeCtx, NodeProgram};

/// One-round protocol: every non-root node notifies its tree parent, so each
/// node learns its set of tree children.
#[derive(Clone, Debug)]
pub struct ChildNotify {
    parent: Option<VertexId>,
    children: Vec<VertexId>,
}

impl ChildNotify {
    /// Creates the program given this node's tree parent (or `None` for
    /// roots and non-participants).
    pub fn new(parent: Option<VertexId>) -> Self {
        ChildNotify {
            parent,
            children: Vec::new(),
        }
    }

    /// The children discovered (valid after the run).
    pub fn children(&self) -> &[VertexId] {
        &self.children
    }
}

impl NodeProgram for ChildNotify {
    type Msg = bool; // 1 word "I am your child" flag

    fn init(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(VertexId, bool)> {
        match self.parent {
            Some(p) => vec![(p, true)],
            None => Vec::new(),
        }
    }

    fn on_round(
        &mut self,
        _ctx: &NodeCtx<'_>,
        inbox: &[(VertexId, bool)],
    ) -> Vec<(VertexId, bool)> {
        for &(from, _) in inbox {
            self.children.push(from);
        }
        self.children.sort();
        // Duplication faults on a bare run deliver the same notify twice;
        // a child is a child once.
        self.children.dedup();
        Vec::new()
    }
}

/// Aggregation operator for [`Convergecast`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// Sum of the values.
    Sum,
    /// Minimum of the values.
    Min,
    /// Maximum of the values.
    Max,
}

impl AggOp {
    fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            AggOp::Sum => a + b,
            AggOp::Min => a.min(b),
            AggOp::Max => a.max(b),
        }
    }
}

/// Convergecast: aggregates a `u64` value from every tree node up to the
/// root in `depth` rounds. Every node also remembers the aggregate reported
/// by each of its children (the centroid walk needs exactly those).
#[derive(Clone, Debug)]
pub struct Convergecast {
    parent: Option<VertexId>,
    pending_children: usize,
    op: AggOp,
    acc: u64,
    child_values: HashMap<VertexId, u64>,
    /// Set at the root once every subtree has reported.
    result: Option<u64>,
    participates: bool,
    /// Whether this node already reported upward (fault injection can
    /// surface values from undeclared children afterwards; report once).
    fired: bool,
}

impl Convergecast {
    /// Creates the program for a node with the given tree `parent`, set of
    /// `children`, own `value` and aggregation operator.
    pub fn new(parent: Option<VertexId>, children: &[VertexId], value: u64, op: AggOp) -> Self {
        Convergecast {
            parent,
            pending_children: children.len(),
            op,
            acc: value,
            child_values: HashMap::new(),
            result: None,
            participates: true,
            fired: false,
        }
    }

    /// A node that takes no part in the aggregation.
    pub fn inactive() -> Self {
        Convergecast {
            parent: None,
            pending_children: 0,
            op: AggOp::Sum,
            acc: 0,
            child_values: HashMap::new(),
            result: None,
            participates: false,
            fired: false,
        }
    }

    /// The aggregate over this node's whole subtree (its own value combined
    /// with everything below), available once the node has fired.
    pub fn subtree_value(&self) -> u64 {
        self.acc
    }

    /// The per-child subtree aggregates this node received.
    pub fn child_values(&self) -> &HashMap<VertexId, u64> {
        &self.child_values
    }

    /// The full aggregate — `Some` only at the root, after quiescence.
    pub fn result(&self) -> Option<u64> {
        self.result
    }

    fn fire(&mut self) -> Vec<(VertexId, u64)> {
        match self.parent {
            Some(p) => vec![(p, self.acc)],
            None => {
                self.result = Some(self.acc);
                Vec::new()
            }
        }
    }
}

impl NodeProgram for Convergecast {
    type Msg = u64; // one aggregate value (2 words, conservatively)

    fn init(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(VertexId, u64)> {
        if !self.participates {
            return Vec::new();
        }
        if self.pending_children == 0 {
            self.fired = true;
            self.fire()
        } else {
            Vec::new()
        }
    }

    fn on_round(&mut self, _ctx: &NodeCtx<'_>, inbox: &[(VertexId, u64)]) -> Vec<(VertexId, u64)> {
        if !self.participates {
            return Vec::new();
        }
        let mut fresh = false;
        for &(from, v) in inbox {
            // Count each sender once: duplication faults on a bare
            // (unwrapped) run deliver identical copies of a child's
            // aggregate, and a second copy must neither re-combine nor
            // decrement the pending counter (found by the DST swarm,
            // `crates/dst`).
            if self.child_values.insert(from, v).is_some() {
                continue;
            }
            self.acc = self.op.combine(self.acc, v);
            // Saturating: if this sender's earlier `ChildNotify` was lost
            // to fault injection it never entered `pending_children`, and
            // the honest decrement underflowed (also a DST-swarm find).
            // The run is degraded either way; the protocol must stay
            // total.
            self.pending_children = self.pending_children.saturating_sub(1);
            fresh = true;
        }
        if self.pending_children == 0 && fresh && !self.fired {
            self.fired = true;
            self.fire()
        } else {
            Vec::new()
        }
    }
}

/// Downcast: floods a one-word label from one or more sources down a tree
/// (each node forwards the first label it receives to its children).
///
/// Used to broadcast part ids, leader decisions, `n`, the diameter estimate,
/// etc., in `depth` rounds.
#[derive(Clone, Debug)]
pub struct Downcast {
    children: Vec<VertexId>,
    label: Option<u32>,
}

impl Downcast {
    /// Creates the program; `label` is `Some` at source nodes.
    pub fn new(children: &[VertexId], label: Option<u32>) -> Self {
        Downcast {
            children: children.to_vec(),
            label,
        }
    }

    /// The label this node ended up with.
    pub fn label(&self) -> Option<u32> {
        self.label
    }
}

impl NodeProgram for Downcast {
    type Msg = u32;

    fn init(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
        match self.label {
            Some(l) => self.children.iter().map(|&c| (c, l)).collect(),
            None => Vec::new(),
        }
    }

    fn on_round(&mut self, _ctx: &NodeCtx<'_>, inbox: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
        if self.label.is_some() {
            return Vec::new(); // already labelled; ignore duplicates
        }
        if let Some(&(_, l)) = inbox.first() {
            self.label = Some(l);
            self.children.iter().map(|&c| (c, l)).collect()
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{run, SimConfig};
    use planar_graph::Graph;

    /// Builds a path graph and the parent pointers of the BFS tree rooted
    /// at vertex 0.
    fn path_tree(n: usize) -> (Graph, Vec<Option<VertexId>>) {
        let g = Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap();
        let parents = (0..n)
            .map(|i| {
                if i == 0 {
                    None
                } else {
                    Some(VertexId(i as u32 - 1))
                }
            })
            .collect();
        (g, parents)
    }

    #[test]
    fn child_notify_discovers_children() {
        let (g, parents) = path_tree(4);
        let programs: Vec<ChildNotify> = parents.iter().map(|&p| ChildNotify::new(p)).collect();
        let out = run(&g, programs, &SimConfig::default()).unwrap();
        assert_eq!(out.metrics.rounds, 1);
        assert_eq!(out.programs[0].children(), &[VertexId(1)]);
        assert_eq!(out.programs[3].children(), &[] as &[VertexId]);
    }

    #[test]
    fn convergecast_sum_counts_nodes() {
        let (g, parents) = path_tree(6);
        let programs: Vec<Convergecast> = (0..6)
            .map(|i| {
                let children: Vec<VertexId> = if i < 5 {
                    vec![VertexId(i as u32 + 1)]
                } else {
                    vec![]
                };
                Convergecast::new(parents[i], &children, 1, AggOp::Sum)
            })
            .collect();
        let out = run(&g, programs, &SimConfig::default()).unwrap();
        assert_eq!(out.programs[0].result(), Some(6));
        // Depth-many rounds.
        assert_eq!(out.metrics.rounds, 5);
        // Intermediate nodes know their subtree sizes.
        assert_eq!(out.programs[3].subtree_value(), 3); // nodes 3,4,5
        assert_eq!(out.programs[2].child_values()[&VertexId(3)], 3);
    }

    #[test]
    fn convergecast_max_finds_max() {
        // Star rooted at 0.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        let children: Vec<VertexId> = vec![VertexId(1), VertexId(2), VertexId(3)];
        let programs = vec![
            Convergecast::new(None, &children, 2, AggOp::Max),
            Convergecast::new(Some(VertexId(0)), &[], 9, AggOp::Max),
            Convergecast::new(Some(VertexId(0)), &[], 4, AggOp::Max),
            Convergecast::new(Some(VertexId(0)), &[], 7, AggOp::Max),
        ];
        let out = run(&g, programs, &SimConfig::default()).unwrap();
        assert_eq!(out.programs[0].result(), Some(9));
        assert_eq!(out.metrics.rounds, 1);
    }

    /// Duplication faults on a bare (unwrapped) run deliver identical
    /// copies of each child's aggregate; the second copy must be ignored,
    /// not re-combined or counted against `pending_children` (the original
    /// decrement underflowed — found by the DST swarm, `crates/dst`).
    #[test]
    fn convergecast_survives_duplicated_deliveries() {
        let (g, parents) = path_tree(6);
        let programs: Vec<Convergecast> = (0..6)
            .map(|i| {
                let children: Vec<VertexId> = if i < 5 {
                    vec![VertexId(i as u32 + 1)]
                } else {
                    vec![]
                };
                Convergecast::new(parents[i], &children, 1, AggOp::Sum)
            })
            .collect();
        let cfg = SimConfig {
            faults: crate::faults::FaultPlan::uniform(7, 0.0, 1.0, 0.0, 0),
            ..SimConfig::default()
        };
        let out = run(&g, programs, &cfg).unwrap();
        assert_eq!(
            out.programs[0].result(),
            Some(6),
            "duplicates double-counted"
        );
        assert!(out.metrics.duplicated > 0, "plan never duplicated anything");
    }

    #[test]
    fn convergecast_single_node_tree() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let programs = vec![
            Convergecast::new(None, &[], 5, AggOp::Min),
            Convergecast::inactive(),
        ];
        let out = run(&g, programs, &SimConfig::default()).unwrap();
        assert_eq!(out.programs[0].result(), Some(5));
        assert_eq!(out.metrics.rounds, 0);
    }

    #[test]
    fn downcast_reaches_leaves_in_depth_rounds() {
        let (g, _) = path_tree(5);
        let programs: Vec<Downcast> = (0..5)
            .map(|i| {
                let children: Vec<VertexId> = if i < 4 {
                    vec![VertexId(i as u32 + 1)]
                } else {
                    vec![]
                };
                Downcast::new(&children, if i == 0 { Some(42) } else { None })
            })
            .collect();
        let out = run(&g, programs, &SimConfig::default()).unwrap();
        assert_eq!(out.metrics.rounds, 4);
        for p in &out.programs {
            assert_eq!(p.label(), Some(42));
        }
    }

    #[test]
    fn downcast_multiple_sources_stay_in_their_subtrees() {
        // Path 0-1-2-3 where both 0 and 2 are sources of different labels,
        // with tree edges 0->1 and 2->3.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let programs = vec![
            Downcast::new(&[VertexId(1)], Some(100)),
            Downcast::new(&[], None),
            Downcast::new(&[VertexId(3)], Some(200)),
            Downcast::new(&[], None),
        ];
        let out = run(&g, programs, &SimConfig::default()).unwrap();
        assert_eq!(out.programs[1].label(), Some(100));
        assert_eq!(out.programs[3].label(), Some(200));
    }
}
