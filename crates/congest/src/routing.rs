//! Charged store-and-forward routing ("communication choreography").
//!
//! The merge subroutines of the paper (Sections 5–7 of its full version)
//! move *summaries* — interface descriptions, flip bits, arrangement orders —
//! between part leaders, coordinators and boundary vertices. We account for
//! those movements with an explicit packet-level schedule: every transfer is
//! split into packets of at most the per-edge word budget, packets advance
//! one hop per round, and each directed edge carries at most `budget` words
//! per round. The number of rounds until all packets arrive is exactly the
//! CONGEST cost of the data movement, including all congestion effects
//! (pipelining along paths, queueing where transfers share edges).
//!
//! This is the "charged choreography" layer described in DESIGN.md §1: the
//! decision logic of a merge may run at a coordinator, but all information
//! it consumes and produces is paid for here.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use planar_graph::{Graph, VertexId};

use crate::metrics::Metrics;

/// A point-to-point transfer along an explicit routing path.
#[derive(Clone, Debug)]
pub struct Transfer {
    /// The route: consecutive entries must be adjacent in the network; the
    /// first entry is the source, the last the destination.
    pub path: Vec<VertexId>,
    /// Payload size in `O(log n)`-bit words.
    pub words: usize,
}

impl Transfer {
    /// Creates a transfer of `words` words along `path`.
    pub fn new(path: Vec<VertexId>, words: usize) -> Self {
        Transfer { path, words }
    }
}

/// Errors produced by [`schedule`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RoutingError {
    /// Two consecutive path vertices are not adjacent in the network.
    NonAdjacentHop {
        /// First vertex of the invalid hop.
        a: VertexId,
        /// Second vertex of the invalid hop.
        b: VertexId,
    },
    /// A transfer has an empty path.
    EmptyPath,
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::NonAdjacentHop { a, b } => {
                write!(f, "routing path uses non-edge {a}-{b}")
            }
            RoutingError::EmptyPath => write!(f, "routing path is empty"),
        }
    }
}

impl Error for RoutingError {}

/// Schedules all transfers concurrently under the per-edge budget and
/// returns the cost of the resulting store-and-forward execution.
///
/// Packets are served per directed edge in a deterministic FIFO-by-id order;
/// the schedule is work-conserving, so the returned round count is an
/// honest (if not necessarily optimal) CONGEST execution of the transfers.
///
/// # Errors
///
/// Returns [`RoutingError`] if any path is empty or uses a non-edge.
pub fn schedule(
    g: &Graph,
    transfers: &[Transfer],
    budget_words: usize,
) -> Result<Metrics, RoutingError> {
    assert!(budget_words >= 1, "budget must allow at least one word");
    // Validate paths.
    for t in transfers {
        if t.path.is_empty() {
            return Err(RoutingError::EmptyPath);
        }
        for w in t.path.windows(2) {
            if !g.has_edge(w[0], w[1]) {
                return Err(RoutingError::NonAdjacentHop { a: w[0], b: w[1] });
            }
        }
    }

    // Split transfers into packets of at most `budget_words` words.
    struct Packet {
        path_idx: usize,
        pos: usize, // current vertex index within the path
        words: usize,
    }
    let mut packets: Vec<Packet> = Vec::new();
    for (i, t) in transfers.iter().enumerate() {
        if t.path.len() == 1 || t.words == 0 {
            continue; // already delivered / nothing to send
        }
        let mut remaining = t.words;
        while remaining > 0 {
            let w = remaining.min(budget_words);
            packets.push(Packet {
                path_idx: i,
                pos: 0,
                words: w,
            });
            remaining -= w;
        }
    }

    let mut metrics = Metrics::new();
    let mut live: Vec<usize> = (0..packets.len()).collect();
    while !live.is_empty() {
        metrics.rounds += 1;
        let mut edge_load: HashMap<(VertexId, VertexId), usize> = HashMap::new();
        let mut round_max = 0usize;
        let mut still_live = Vec::with_capacity(live.len());
        let mut moved_any = false;
        for &pi in &live {
            let p = &mut packets[pi];
            let path = &transfers[p.path_idx].path;
            let from = path[p.pos];
            let to = path[p.pos + 1];
            let load = edge_load.entry((from, to)).or_insert(0);
            if *load + p.words <= budget_words {
                *load += p.words;
                round_max = round_max.max(*load);
                p.pos += 1;
                moved_any = true;
                metrics.messages += 1;
                metrics.words += p.words;
                if p.pos + 1 < path.len() {
                    still_live.push(pi);
                }
            } else {
                still_live.push(pi);
            }
        }
        debug_assert!(moved_any, "work-conserving schedule always advances");
        metrics.max_words_edge_round = metrics.max_words_edge_round.max(round_max);
        live = still_live;
    }
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap()
    }

    fn vpath(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&i| VertexId(i)).collect()
    }

    #[test]
    fn single_small_transfer_takes_path_length() {
        let g = path_graph(5);
        let t = Transfer::new(vpath(&[0, 1, 2, 3, 4]), 3);
        let m = schedule(&g, &[t], 8).unwrap();
        assert_eq!(m.rounds, 4);
        assert_eq!(m.messages, 4);
        assert_eq!(m.words, 12);
    }

    #[test]
    fn large_transfer_pipelines() {
        // 80 words over budget 8 = 10 packets along a 4-hop path:
        // store-and-forward pipelining: hops + packets - 1 = 4 + 9 = 13.
        let g = path_graph(5);
        let t = Transfer::new(vpath(&[0, 1, 2, 3, 4]), 80);
        let m = schedule(&g, &[t], 8).unwrap();
        assert_eq!(m.rounds, 13);
        assert_eq!(m.max_words_edge_round, 8);
    }

    #[test]
    fn contention_serializes() {
        // Two transfers sharing the single edge 0-1, each one full packet:
        // the second waits one round.
        let g = path_graph(2);
        let ts = vec![
            Transfer::new(vpath(&[0, 1]), 8),
            Transfer::new(vpath(&[0, 1]), 8),
        ];
        let m = schedule(&g, &ts, 8).unwrap();
        assert_eq!(m.rounds, 2);
    }

    #[test]
    fn small_transfers_share_an_edge_round() {
        let g = path_graph(2);
        let ts = vec![
            Transfer::new(vpath(&[0, 1]), 3),
            Transfer::new(vpath(&[0, 1]), 3),
        ];
        let m = schedule(&g, &ts, 8).unwrap();
        assert_eq!(m.rounds, 1);
        assert_eq!(m.max_words_edge_round, 6);
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let g = path_graph(2);
        let ts = vec![
            Transfer::new(vpath(&[0, 1]), 8),
            Transfer::new(vpath(&[1, 0]), 8),
        ];
        let m = schedule(&g, &ts, 8).unwrap();
        assert_eq!(m.rounds, 1);
    }

    #[test]
    fn zero_word_and_self_transfers_are_free() {
        let g = path_graph(3);
        let ts = vec![
            Transfer::new(vpath(&[0]), 100),
            Transfer::new(vpath(&[0, 1]), 0),
        ];
        let m = schedule(&g, &ts, 8).unwrap();
        assert_eq!(m.rounds, 0);
    }

    #[test]
    fn rejects_bad_paths() {
        let g = path_graph(4);
        assert_eq!(
            schedule(&g, &[Transfer::new(vpath(&[0, 2]), 1)], 8),
            Err(RoutingError::NonAdjacentHop {
                a: VertexId(0),
                b: VertexId(2)
            })
        );
        assert_eq!(
            schedule(&g, &[Transfer::new(Vec::new(), 1)], 8),
            Err(RoutingError::EmptyPath)
        );
    }

    #[test]
    fn many_parallel_disjoint_transfers_take_one_round() {
        let n = 20;
        let g = path_graph(n);
        let ts: Vec<Transfer> = (0..n as u32 - 1)
            .map(|i| Transfer::new(vpath(&[i, i + 1]), 4))
            .collect();
        let m = schedule(&g, &ts, 8).unwrap();
        assert_eq!(m.rounds, 1);
        assert_eq!(m.messages, n - 1);
    }
}
