//! Message size accounting.
//!
//! The CONGEST model allows `O(log n)` bits per edge per round. We account
//! message sizes in *words*, where one word is one `O(log n)`-bit quantity
//! (a vertex id, an edge id half, a counter bounded by `poly(n)`). A message
//! of `w` words therefore occupies `w · ceil(log2 n)` bits, and the standard
//! per-round budget is a small constant number of words.

use planar_graph::{EdgeId, VertexId};

/// Types whose on-wire size is a known number of `O(log n)`-bit words.
///
/// Implementations must be exact: the simulator charges every sent message
/// by this amount and rejects rounds that exceed the per-edge budget, so an
/// undercounting implementation would invalidate the round-complexity
/// measurements.
pub trait Words {
    /// Number of `O(log n)`-bit words this value occupies on the wire.
    fn words(&self) -> usize;
}

impl Words for u32 {
    fn words(&self) -> usize {
        1
    }
}

impl Words for u64 {
    fn words(&self) -> usize {
        // A u64 counter is still poly(n)-bounded in our use; count it as one
        // word when n >= 2^32 would be required to overflow it. We charge 2
        // to stay conservative.
        2
    }
}

impl Words for usize {
    fn words(&self) -> usize {
        1
    }
}

impl Words for bool {
    fn words(&self) -> usize {
        1
    }
}

impl Words for VertexId {
    fn words(&self) -> usize {
        1
    }
}

impl Words for EdgeId {
    fn words(&self) -> usize {
        2
    }
}

impl<T: Words> Words for Option<T> {
    fn words(&self) -> usize {
        match self {
            Some(t) => 1 + t.words(),
            None => 1,
        }
    }
}

impl<T: Words> Words for Vec<T> {
    fn words(&self) -> usize {
        1 + self.iter().map(Words::words).sum::<usize>()
    }
}

impl<A: Words, B: Words> Words for (A, B) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }
}

impl<A: Words, B: Words, C: Words> Words for (A, B, C) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words()
    }
}

/// Number of bits per word for an `n`-node network: `ceil(log2 n)`, at
/// least 1.
pub fn word_bits(n: usize) -> usize {
    (usize::BITS - n.max(2).next_power_of_two().leading_zeros()) as usize - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(5u32.words(), 1);
        assert_eq!(VertexId(3).words(), 1);
        assert_eq!(EdgeId::new(VertexId(0), VertexId(1)).words(), 2);
        assert_eq!(Some(VertexId(1)).words(), 2);
        assert_eq!(None::<VertexId>.words(), 1);
        assert_eq!(vec![1u32, 2, 3].words(), 4);
        assert_eq!((VertexId(0), 7u32).words(), 2);
    }

    #[test]
    fn word_bits_is_log2() {
        assert_eq!(word_bits(2), 1);
        assert_eq!(word_bits(4), 2);
        assert_eq!(word_bits(5), 3);
        assert_eq!(word_bits(1024), 10);
        assert_eq!(word_bits(1025), 11);
        assert!(word_bits(0) >= 1);
    }
}
