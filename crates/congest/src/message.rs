//! Message size accounting and B-bit word packing.
//!
//! The CONGEST model allows `O(log n)` bits per edge per round. We account
//! message sizes in *words*, where one word is one `O(log n)`-bit quantity
//! (a vertex id, an edge id half, a counter bounded by `poly(n)`). A message
//! of `w` words therefore occupies `w · ceil(log2 n)` bits, and the standard
//! per-round budget is a small constant number of words.
//!
//! # Word packing
//!
//! The budget machinery charges messages per declared word; since the
//! million-node memory refactor the fast kernel's mailbox arena can also
//! *store* them that way. A type opts in by implementing
//! [`Words::pack`]/[`Words::unpack`]: `pack` appends exactly `words()`
//! B-bit words to a [`BitSink`] (B = `word_bits(n)` for the run's graph)
//! and may refuse (return `false`) when a field does not fit in B bits —
//! the kernel then falls back to storing that message natively, so packing
//! is always lossless and outcome-invariant. `unpack` must be the exact
//! inverse. The primitive word types below all pack; protocol enums keep
//! the `false` default and cost nothing.

use planar_graph::{EdgeId, VertexId};

/// Append-only bit buffer for B-bit word packing (see [`Words::pack`]).
///
/// Bits are appended little-endian within 64-bit backing words; a value
/// written with [`BitSink::push_bits`] at offset `o` is read back by a
/// [`BitReader`] positioned at `o`.
#[derive(Clone, Debug, Default)]
pub struct BitSink {
    words: Vec<u64>,
    len: usize,
}

impl BitSink {
    /// An empty sink.
    pub fn new() -> Self {
        BitSink::default()
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> usize {
        self.len
    }

    /// Clears the sink, keeping capacity.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Rewinds to `bits` (must not exceed [`len_bits`](Self::len_bits)) —
    /// used to discard a partial `pack` that bailed midway.
    pub fn truncate(&mut self, bits: usize) {
        assert!(bits <= self.len, "cannot truncate forward");
        self.words.truncate(bits.div_ceil(64));
        if !bits.is_multiple_of(64) {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << (bits % 64)) - 1;
            }
        }
        self.len = bits;
    }

    /// Appends the low `width` bits of `value` (`1..=64`; higher bits of
    /// `value` must be zero).
    pub fn push_bits(&mut self, value: u64, width: u32) {
        debug_assert!((1..=64).contains(&width));
        debug_assert!(width == 64 || value >> width == 0, "value wider than width");
        let off = self.len % 64;
        if off == 0 {
            self.words.push(value);
        } else {
            *self.words.last_mut().expect("off != 0 implies a word") |= value << off;
            if (64 - off) < width as usize {
                self.words.push(value >> (64 - off));
            }
        }
        self.len += width as usize;
    }

    /// Heap bytes backing the sink (capacity, not length).
    pub fn memory_bytes(&self) -> usize {
        self.words.capacity() * 8
    }

    /// A reader positioned at bit `offset`.
    pub fn reader_at(&self, offset: usize) -> BitReader<'_> {
        debug_assert!(offset <= self.len);
        BitReader {
            words: &self.words,
            pos: offset,
        }
    }
}

/// Cursor reading back values written by [`BitSink::push_bits`].
#[derive(Debug)]
pub struct BitReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl BitReader<'_> {
    /// Reads the next `width` bits (`1..=64`).
    pub fn read_bits(&mut self, width: u32) -> u64 {
        debug_assert!((1..=64).contains(&width));
        let w = self.pos / 64;
        let off = self.pos % 64;
        let mut v = self.words[w] >> off;
        if off != 0 && (64 - off) < width as usize {
            v |= self.words[w + 1] << (64 - off);
        }
        if width < 64 {
            v &= (1u64 << width) - 1;
        }
        self.pos += width as usize;
        v
    }
}

/// Packs `value` as `words` consecutive B-bit words (most-significant word
/// first), or returns `false` if it does not fit.
fn pack_uint(value: u64, words: u32, b: u32, sink: &mut BitSink) -> bool {
    let total = words * b;
    if total < 64 && value >> total != 0 {
        return false;
    }
    for i in (0..words).rev() {
        let shift = i * b;
        let w = if shift >= 64 { 0 } else { value >> shift };
        let mask = if b == 64 { u64::MAX } else { (1u64 << b) - 1 };
        sink.push_bits(w & mask, b);
    }
    true
}

/// Inverse of [`pack_uint`].
fn unpack_uint(words: u32, b: u32, src: &mut BitReader<'_>) -> u64 {
    let mut v: u64 = 0;
    for _ in 0..words {
        let w = src.read_bits(b);
        v = if b >= 64 { w } else { (v << b) | w };
    }
    v
}

/// Types whose on-wire size is a known number of `O(log n)`-bit words.
///
/// Implementations must be exact: the simulator charges every sent message
/// by this amount and rejects rounds that exceed the per-edge budget, so an
/// undercounting implementation would invalidate the round-complexity
/// measurements.
pub trait Words {
    /// Number of `O(log n)`-bit words this value occupies on the wire.
    fn words(&self) -> usize;

    /// Appends this value as exactly [`words`](Self::words) B-bit words to
    /// `sink` and returns `true`, or returns `false` (possibly after
    /// writing a partial prefix — the caller rewinds) when the value does
    /// not fit in B-bit words or the type has no packed form (the
    /// default). Must be a pure function of the value and `b`.
    fn pack(&self, b: u32, sink: &mut BitSink) -> bool {
        let _ = (b, sink);
        false
    }

    /// Exact inverse of [`pack`](Self::pack) for values that packed at the
    /// same `b`. Only called on bits `pack` produced; `None` from a
    /// packing type indicates corruption (the kernel treats it as a bug).
    fn unpack(b: u32, src: &mut BitReader<'_>) -> Option<Self>
    where
        Self: Sized,
    {
        let _ = (b, src);
        None
    }
}

impl Words for u32 {
    fn words(&self) -> usize {
        1
    }

    fn pack(&self, b: u32, sink: &mut BitSink) -> bool {
        pack_uint(u64::from(*self), 1, b, sink)
    }

    fn unpack(b: u32, src: &mut BitReader<'_>) -> Option<Self> {
        u32::try_from(unpack_uint(1, b, src)).ok()
    }
}

impl Words for u64 {
    fn words(&self) -> usize {
        // A u64 counter is still poly(n)-bounded in our use; count it as one
        // word when n >= 2^32 would be required to overflow it. We charge 2
        // to stay conservative.
        2
    }

    fn pack(&self, b: u32, sink: &mut BitSink) -> bool {
        pack_uint(*self, 2, b, sink)
    }

    fn unpack(b: u32, src: &mut BitReader<'_>) -> Option<Self> {
        Some(unpack_uint(2, b, src))
    }
}

impl Words for usize {
    fn words(&self) -> usize {
        1
    }

    fn pack(&self, b: u32, sink: &mut BitSink) -> bool {
        pack_uint(*self as u64, 1, b, sink)
    }

    fn unpack(b: u32, src: &mut BitReader<'_>) -> Option<Self> {
        usize::try_from(unpack_uint(1, b, src)).ok()
    }
}

impl Words for bool {
    fn words(&self) -> usize {
        1
    }

    fn pack(&self, b: u32, sink: &mut BitSink) -> bool {
        pack_uint(u64::from(*self), 1, b, sink)
    }

    fn unpack(b: u32, src: &mut BitReader<'_>) -> Option<Self> {
        match unpack_uint(1, b, src) {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Words for VertexId {
    fn words(&self) -> usize {
        1
    }

    fn pack(&self, b: u32, sink: &mut BitSink) -> bool {
        pack_uint(u64::from(self.0), 1, b, sink)
    }

    fn unpack(b: u32, src: &mut BitReader<'_>) -> Option<Self> {
        u32::try_from(unpack_uint(1, b, src)).ok().map(VertexId)
    }
}

impl Words for EdgeId {
    fn words(&self) -> usize {
        2
    }
}

impl<T: Words> Words for Option<T> {
    fn words(&self) -> usize {
        match self {
            Some(t) => 1 + t.words(),
            None => 1,
        }
    }

    fn pack(&self, b: u32, sink: &mut BitSink) -> bool {
        match self {
            None => pack_uint(0, 1, b, sink),
            Some(t) => pack_uint(1, 1, b, sink) && t.pack(b, sink),
        }
    }

    fn unpack(b: u32, src: &mut BitReader<'_>) -> Option<Self> {
        match unpack_uint(1, b, src) {
            0 => Some(None),
            1 => T::unpack(b, src).map(Some),
            _ => None,
        }
    }
}

impl<T: Words> Words for Vec<T> {
    fn words(&self) -> usize {
        1 + self.iter().map(Words::words).sum::<usize>()
    }

    fn pack(&self, b: u32, sink: &mut BitSink) -> bool {
        pack_uint(self.len() as u64, 1, b, sink) && self.iter().all(|t| t.pack(b, sink))
    }

    fn unpack(b: u32, src: &mut BitReader<'_>) -> Option<Self> {
        let len = usize::try_from(unpack_uint(1, b, src)).ok()?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::unpack(b, src)?);
        }
        Some(v)
    }
}

impl<A: Words, B: Words> Words for (A, B) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }

    fn pack(&self, b: u32, sink: &mut BitSink) -> bool {
        self.0.pack(b, sink) && self.1.pack(b, sink)
    }

    fn unpack(b: u32, src: &mut BitReader<'_>) -> Option<Self> {
        Some((A::unpack(b, src)?, B::unpack(b, src)?))
    }
}

impl<A: Words, B: Words, C: Words> Words for (A, B, C) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words()
    }

    fn pack(&self, b: u32, sink: &mut BitSink) -> bool {
        self.0.pack(b, sink) && self.1.pack(b, sink) && self.2.pack(b, sink)
    }

    fn unpack(b: u32, src: &mut BitReader<'_>) -> Option<Self> {
        Some((A::unpack(b, src)?, B::unpack(b, src)?, C::unpack(b, src)?))
    }
}

/// Number of bits per word for an `n`-node network: `ceil(log2 n)`, at
/// least 1.
pub fn word_bits(n: usize) -> usize {
    (usize::BITS - n.max(2).next_power_of_two().leading_zeros()) as usize - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(5u32.words(), 1);
        assert_eq!(VertexId(3).words(), 1);
        assert_eq!(EdgeId::new(VertexId(0), VertexId(1)).words(), 2);
        assert_eq!(Some(VertexId(1)).words(), 2);
        assert_eq!(None::<VertexId>.words(), 1);
        assert_eq!(vec![1u32, 2, 3].words(), 4);
        assert_eq!((VertexId(0), 7u32).words(), 2);
    }

    #[test]
    fn word_bits_is_log2() {
        assert_eq!(word_bits(2), 1);
        assert_eq!(word_bits(4), 2);
        assert_eq!(word_bits(5), 3);
        assert_eq!(word_bits(1024), 10);
        assert_eq!(word_bits(1025), 11);
        assert!(word_bits(0) >= 1);
    }

    fn roundtrip<T: Words + PartialEq + std::fmt::Debug>(v: &T, b: u32) {
        let mut sink = BitSink::new();
        let before = sink.len_bits();
        assert!(v.pack(b, &mut sink), "{v:?} should fit at b={b}");
        assert_eq!(
            sink.len_bits() - before,
            v.words() * b as usize,
            "pack must emit exactly words()*b bits"
        );
        let got = T::unpack(b, &mut sink.reader_at(before)).expect("unpack");
        assert_eq!(&got, v);
    }

    #[test]
    fn pack_roundtrips_primitives() {
        for b in [1u32, 3, 7, 10, 17, 32, 33, 63, 64] {
            let max_1w: u64 = if b >= 64 { u64::MAX } else { (1 << b) - 1 };
            for v in [0u64, 1, max_1w / 2, max_1w] {
                if let Ok(v32) = u32::try_from(v) {
                    roundtrip(&v32, b);
                    roundtrip(&VertexId(v32), b);
                }
                if let Ok(vus) = usize::try_from(v) {
                    roundtrip(&vus, b);
                }
            }
            roundtrip(&false, b);
            roundtrip(&true, b);
        }
        // u64 spans two words.
        for b in [10u32, 17, 32, 33, 64] {
            let max_2w: u64 = if b >= 32 {
                u64::MAX
            } else {
                (1 << (2 * b)) - 1
            };
            for v in [0u64, 1, max_2w / 3, max_2w] {
                roundtrip(&v, b);
            }
        }
    }

    #[test]
    fn pack_roundtrips_compounds() {
        let b = 11;
        roundtrip(&None::<VertexId>, b);
        roundtrip(&Some(VertexId(2047)), b);
        roundtrip(&vec![1u32, 2, 2047], b);
        roundtrip(&Vec::<u32>::new(), b);
        roundtrip(&(VertexId(7), 100u32), b);
        roundtrip(&(true, 3usize, Some(9u32)), b);
    }

    #[test]
    fn pack_refuses_oversized_values() {
        let mut sink = BitSink::new();
        // 2^10 does not fit in 10 bits.
        assert!(!1024u32.pack(10, &mut sink));
        assert!(!VertexId(1 << 12).pack(10, &mut sink));
        // A compound may leave a partial prefix behind; callers rewind.
        sink.clear();
        let v = vec![1u32, 5000, 2];
        assert!(!v.pack(10, &mut sink));
        sink.truncate(0);
        assert_eq!(sink.len_bits(), 0);
        // A two-word u64 at b=10 holds 20 bits.
        assert!(!(1u64 << 20).pack(10, &mut sink));
        assert!((1u64 << 19).pack(10, &mut sink));
    }

    #[test]
    fn bit_sink_truncate_discards_partial_writes() {
        let mut sink = BitSink::new();
        sink.push_bits(0b101, 3);
        let mark = sink.len_bits();
        sink.push_bits(0x3FF, 10);
        sink.push_bits(0x7F, 7);
        sink.truncate(mark);
        // Writes after a rewind must not see stale bits from the discarded
        // region.
        sink.push_bits(0, 10);
        let mut r = sink.reader_at(0);
        assert_eq!(r.read_bits(3), 0b101);
        assert_eq!(r.read_bits(10), 0);
    }

    #[test]
    fn edge_id_falls_back_to_native() {
        let mut sink = BitSink::new();
        assert!(!EdgeId::new(VertexId(0), VertexId(1)).pack(16, &mut sink));
        assert_eq!(sink.len_bits(), 0);
    }
}
