//! Conformance suite for the batched entry point (`run_many`).
//!
//! The contract under test is the one the level-synchronous scheduler
//! depends on: running vertex-disjoint instances in one shared round
//! lattice is **observationally equivalent** to running each instance
//! alone — per-instance final states, metrics and fault fates are
//! bit-identical, the batch's shared `rounds` is exactly the
//! `join_parallel` maximum of the instance rounds, both kernels agree,
//! and any cross-instance send aborts the run.

use congest_sim::protocols::{run_reliable_many, Reliable, ReliableConfig};
use congest_sim::reference::run_reference_many;
use congest_sim::{
    run, run_many, AuditSink, FaultPlan, Instance, MultiOutcome, NodeCtx, NodeProgram, SimConfig,
    SimError, SimSession, TraceHandle,
};
use planar_graph::{Graph, VertexId};

/// Max-flood: every node announces, floods improvements (same workload as
/// the kernel determinism suite).
#[derive(Clone, Debug, PartialEq, Eq)]
struct MaxFlood {
    best: u32,
}

impl NodeProgram for MaxFlood {
    type Msg = u32;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
        ctx.neighbors.iter().map(|&w| (w, self.best)).collect()
    }

    fn on_round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
        let incoming = inbox.iter().map(|&(_, v)| v).max().unwrap_or(0);
        if incoming > self.best {
            self.best = incoming;
            ctx.neighbors.iter().map(|&w| (w, self.best)).collect()
        } else {
            Vec::new()
        }
    }
}

/// Inbox transcript recorder: the strongest determinism witness (any change
/// in delivery order, not just content, changes the state).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Transcript {
    log: Vec<(usize, u32, u64)>,
    hops: u32,
}

impl NodeProgram for Transcript {
    type Msg = u64;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u64)> {
        ctx.neighbors
            .iter()
            .map(|&w| (w, u64::from(ctx.id.0) << 8))
            .collect()
    }

    fn on_round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(VertexId, u64)]) -> Vec<(VertexId, u64)> {
        for &(from, v) in inbox {
            self.log.push((ctx.round, from.0, v));
        }
        if ctx.round >= usize::from(self.hops as u16) {
            return Vec::new();
        }
        let min = inbox.iter().map(|&(_, v)| v).min().unwrap_or(0);
        ctx.neighbors.iter().map(|&w| (w, min + 1)).collect()
    }
}

/// Gates a program off entirely: `None` is an inert bystander that never
/// sends and never asks for ticks. Used to express "instance `i` running
/// alone" as a plain full-graph run the batched outcome must match.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Gated<P>(Option<P>);

impl<P: NodeProgram> NodeProgram for Gated<P> {
    type Msg = P::Msg;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, Self::Msg)> {
        self.0.as_mut().map(|p| p.init(ctx)).unwrap_or_default()
    }

    fn on_round(
        &mut self,
        ctx: &NodeCtx<'_>,
        inbox: &[(VertexId, Self::Msg)],
    ) -> Vec<(VertexId, Self::Msg)> {
        self.0
            .as_mut()
            .map(|p| p.on_round(ctx, inbox))
            .unwrap_or_default()
    }

    fn wants_tick(&self) -> bool {
        self.0.as_ref().is_some_and(|p| p.wants_tick())
    }
}

/// One graph, three mutually unreachable components (a path, a grid and a
/// star side by side in one vertex space) — the simplest shape on which
/// vertex-disjoint instances are also message-disjoint for programs that
/// talk to all their neighbors.
fn components() -> (Graph, Vec<Vec<VertexId>>) {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // Component 0: path on vertices 0..12.
    edges.extend((0..11).map(|i| (i, i + 1)));
    // Component 1: 4x4 grid on vertices 12..28.
    let gidx = |r: u32, c: u32| 12 + r * 4 + c;
    for r in 0..4 {
        for c in 0..4 {
            if c + 1 < 4 {
                edges.push((gidx(r, c), gidx(r, c + 1)));
            }
            if r + 1 < 4 {
                edges.push((gidx(r, c), gidx(r + 1, c)));
            }
        }
    }
    // Component 2: star on vertices 28..37, centered at 28.
    edges.extend((29..37).map(|i| (28, i)));
    let g = Graph::from_edges(37, edges).unwrap();
    let members = vec![
        (0..12).map(VertexId).collect(),
        (12..28).map(VertexId).collect(),
        (28..37).map(VertexId).collect(),
    ];
    (g, members)
}

fn flood_for(members: &[VertexId]) -> Vec<(VertexId, MaxFlood)> {
    members
        .iter()
        .map(|&v| {
            (
                v,
                MaxFlood {
                    best: (v.0 * 7) % 64,
                },
            )
        })
        .collect()
}

fn transcript_for(members: &[VertexId]) -> Vec<(VertexId, Transcript)> {
    members
        .iter()
        .map(|&v| {
            (
                v,
                Transcript {
                    log: Vec::new(),
                    hops: 6,
                },
            )
        })
        .collect()
}

/// Fault plans the batch must replay identically to individual runs. The
/// crash victims live in different components on purpose.
fn fault_plans() -> Vec<(&'static str, FaultPlan)> {
    let drops = FaultPlan::uniform(11, 0.15, 0.0, 0.0, 0);
    let chaos = FaultPlan::uniform(12, 0.1, 0.1, 0.2, 3);
    let mut crashes = FaultPlan::default();
    crashes.crashes.push((VertexId(5), 3)); // path component
    crashes.crashes.push((VertexId(30), 0)); // star component
    let mut everything = FaultPlan::uniform(13, 0.08, 0.05, 0.15, 2);
    everything.crashes.push((VertexId(14), 4)); // grid component
    vec![
        ("drops", drops),
        ("chaos", chaos),
        ("crashes", crashes),
        ("everything", everything),
    ]
}

/// Runs the batch on both kernels under the trace auditor and checks they
/// agree on everything observable; returns the fast kernel's outcome.
fn run_many_pair<P>(
    label: &str,
    g: &Graph,
    mk: impl Fn() -> Vec<Instance<P>>,
    cfg: &SimConfig,
) -> MultiOutcome<P>
where
    P: NodeProgram + Clone + PartialEq + std::fmt::Debug + Send,
    P::Msg: Send + Sync,
{
    let fast_audit = AuditSink::new();
    let mut fast_cfg = cfg.clone();
    fast_cfg.trace = TraceHandle::to(fast_audit.clone());
    let fast = run_many(g, mk(), &fast_cfg)
        .unwrap_or_else(|e| panic!("{label}: fast batched run failed: {e}"));
    let slow_audit = AuditSink::new();
    let mut slow_cfg = cfg.clone();
    slow_cfg.trace = TraceHandle::to(slow_audit.clone());
    let slow = run_reference_many(g, mk(), &slow_cfg)
        .unwrap_or_else(|e| panic!("{label}: reference batched run failed: {e}"));
    assert_eq!(fast.metrics, slow.metrics, "{label}: batch metrics diverge");
    assert_eq!(
        fast.instances.len(),
        slow.instances.len(),
        "{label}: instance counts diverge"
    );
    for (i, (f, s)) in fast.instances.iter().zip(&slow.instances).enumerate() {
        assert_eq!(f.members, s.members, "{label}: instance {i} members");
        assert_eq!(f.programs, s.programs, "{label}: instance {i} states");
        assert_eq!(f.metrics, s.metrics, "{label}: instance {i} metrics");
    }
    assert!(
        fast_audit.ok(),
        "{label}: fast kernel trace audit failed: {:?}",
        fast_audit.report().mismatches
    );
    assert!(
        slow_audit.ok(),
        "{label}: reference kernel trace audit failed: {:?}",
        slow_audit.report().mismatches
    );
    fast
}

/// Runs instance `i` alone (everyone else gated off) and returns its
/// outcome over the full graph.
fn run_alone<P>(
    label: &str,
    g: &Graph,
    members: &[VertexId],
    programs: Vec<(VertexId, P)>,
    cfg: &SimConfig,
) -> (Vec<P>, congest_sim::Metrics)
where
    P: NodeProgram + Clone + PartialEq + std::fmt::Debug + Send,
    P::Msg: Send + Sync,
{
    let mut gated: Vec<Gated<P>> = (0..g.vertex_count()).map(|_| Gated(None)).collect();
    for (v, p) in programs {
        gated[v.index()] = Gated(Some(p));
    }
    let out = run(g, gated, cfg).unwrap_or_else(|e| panic!("{label}: individual run failed: {e}"));
    let states = members
        .iter()
        .map(|&v| {
            out.programs[v.index()]
                .0
                .clone()
                .expect("member keeps its program")
        })
        .collect();
    (states, out.metrics)
}

/// Tentpole contract: each instance of a batch ends in exactly the state,
/// with exactly the metrics, it would have produced running alone —
/// fault-free and under every fault plan — and the batch totals compose the
/// instance values (`rounds` is their `join_parallel` maximum).
#[test]
fn batched_instances_match_individual_runs() {
    let (g, members) = components();
    let mut cfgs = vec![("fault_free", SimConfig::default())];
    cfgs.extend(fault_plans().into_iter().map(|(name, plan)| {
        (
            name,
            SimConfig {
                faults: plan,
                ..SimConfig::default()
            },
        )
    }));
    for (cfg_name, cfg) in cfgs {
        let mk = || {
            members
                .iter()
                .map(|m| Instance::new(flood_for(m)))
                .collect::<Vec<_>>()
        };
        let batch = run_many_pair(&format!("flood/{cfg_name}"), &g, mk, &cfg);
        let mut max_rounds = 0usize;
        let mut sum_messages = 0usize;
        let mut sum_words = 0usize;
        for (i, m) in members.iter().enumerate() {
            let label = format!("flood/{cfg_name}/instance{i}");
            let (alone_states, alone_metrics) = run_alone(&label, &g, m, flood_for(m), &cfg);
            let inst = &batch.instances[i];
            assert_eq!(inst.members, *m, "{label}: members");
            assert_eq!(inst.programs, alone_states, "{label}: states diverge");
            assert_eq!(inst.metrics, alone_metrics, "{label}: metrics diverge");
            max_rounds = max_rounds.max(inst.metrics.rounds);
            sum_messages += inst.metrics.messages;
            sum_words += inst.metrics.words;
        }
        // The shared lattice's cost is the parallel composition of the
        // measured per-instance costs.
        assert_eq!(
            batch.metrics.rounds, max_rounds,
            "{cfg_name}: batch rounds must be the instance maximum"
        );
        assert_eq!(batch.metrics.messages, sum_messages, "{cfg_name}");
        assert_eq!(batch.metrics.words, sum_words, "{cfg_name}");
    }
}

/// Same contract for the transcript workload (order witness), plus replay
/// determinism of the batch itself.
#[test]
fn batched_transcripts_match_individual_runs_and_replay() {
    let (g, members) = components();
    let cfg = SimConfig {
        faults: FaultPlan::uniform(12, 0.1, 0.1, 0.2, 3),
        ..SimConfig::default()
    };
    let mk = || {
        members
            .iter()
            .map(|m| Instance::new(transcript_for(m)))
            .collect::<Vec<_>>()
    };
    let batch = run_many_pair("transcript/chaos", &g, mk, &cfg);
    let replay = run_many_pair("transcript/chaos/replay", &g, mk, &cfg);
    assert_eq!(batch.metrics, replay.metrics, "batched replay diverged");
    for (a, b) in batch.instances.iter().zip(&replay.instances) {
        assert_eq!(a.programs, b.programs, "batched replay states diverged");
        assert_eq!(a.metrics, b.metrics);
    }
    for (i, m) in members.iter().enumerate() {
        let label = format!("transcript/chaos/instance{i}");
        let (alone_states, alone_metrics) = run_alone(&label, &g, m, transcript_for(m), &cfg);
        assert_eq!(batch.instances[i].programs, alone_states, "{label}");
        assert_eq!(batch.instances[i].metrics, alone_metrics, "{label}");
    }
}

/// A batch of one instance is the degenerate case: identical to a plain
/// gated run, on both kernels, including via a reused [`SimSession`].
#[test]
fn single_instance_batch_degenerates_to_a_plain_run() {
    let (g, members) = components();
    let cfg = SimConfig::default();
    let m = &members[1];
    let mk = || vec![Instance::new(flood_for(m))];
    let batch = run_many_pair("single", &g, mk, &cfg);
    let (alone_states, alone_metrics) = run_alone("single", &g, m, flood_for(m), &cfg);
    assert_eq!(batch.instances[0].programs, alone_states);
    assert_eq!(batch.instances[0].metrics, alone_metrics);
    assert_eq!(batch.metrics.rounds, alone_metrics.rounds);

    let mut session = SimSession::new(&g);
    let via_session = session.run_many(mk(), &cfg).unwrap();
    assert_eq!(via_session.metrics, batch.metrics);
    assert_eq!(
        via_session.instances[0].programs,
        batch.instances[0].programs
    );
}

/// The reliable wrapper composes with batching: wrapped batched runs match
/// wrapped individual runs, per-instance retransmissions included.
#[test]
fn reliable_batches_match_individual_reliable_runs() {
    let (g, members) = components();
    let cfg = SimConfig {
        budget_words: 3 * congest_sim::DEFAULT_BUDGET_WORDS + 2,
        faults: FaultPlan::uniform(21, 0.2, 0.1, 0.2, 2),
        ..SimConfig::default()
    };
    let rel = ReliableConfig::default();
    let instances = members
        .iter()
        .map(|m| Instance::new(transcript_for(m)))
        .collect::<Vec<_>>();
    let batch = run_reliable_many(&g, instances, &cfg, &rel).unwrap();
    let mut sum_retrans = 0usize;
    for (i, m) in members.iter().enumerate() {
        let label = format!("reliable/instance{i}");
        // Running alone: gate the wrapper itself, so bystanders carry no
        // reliability state at all.
        let mut gated: Vec<Gated<Reliable<Transcript>>> =
            (0..g.vertex_count()).map(|_| Gated(None)).collect();
        for (v, p) in transcript_for(m) {
            gated[v.index()] = Gated(Some(Reliable::new(p, rel.clone())));
        }
        let alone = run(&g, gated, &cfg).unwrap_or_else(|e| panic!("{label}: {e}"));
        let mut alone_metrics = alone.metrics;
        let mut alone_retrans = 0usize;
        let alone_states: Vec<Transcript> = m
            .iter()
            .map(|&v| {
                let w = alone.programs[v.index()].0.clone().expect("member");
                alone_retrans += w.retransmissions();
                w.into_inner()
            })
            .collect();
        alone_metrics.retransmissions += alone_retrans;
        assert_eq!(batch.instances[i].programs, alone_states, "{label}");
        assert_eq!(batch.instances[i].metrics, alone_metrics, "{label}");
        sum_retrans += alone_retrans;
    }
    assert_eq!(batch.metrics.retransmissions, sum_retrans);
}

/// Isolation is enforced, not assumed: a program that messages a neighbor
/// owned by another instance aborts the batch with `CrossInstanceSend`, and
/// both kernels report the identical error.
#[test]
fn cross_instance_sends_are_rejected() {
    let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
    // MaxFlood floods to *all* neighbors, so splitting a connected path
    // across two instances guarantees traffic over the 1-2 edge.
    let mk = || {
        vec![
            Instance::new(flood_for(&[VertexId(0), VertexId(1)])),
            Instance::new(flood_for(&[VertexId(2), VertexId(3)])),
        ]
    };
    let cfg = SimConfig::default();
    let fast = run_many(&g, mk(), &cfg).unwrap_err();
    let slow = run_reference_many(&g, mk(), &cfg).unwrap_err();
    assert_eq!(fast, slow);
    assert!(
        matches!(fast, SimError::CrossInstanceSend { .. }),
        "expected CrossInstanceSend, got {fast}"
    );
    // A send to an unassigned bystander is a violation too.
    let mk_partial = || vec![Instance::new(flood_for(&[VertexId(0), VertexId(1)]))];
    let fast = run_many(&g, mk_partial(), &cfg).unwrap_err();
    let slow = run_reference_many(&g, mk_partial(), &cfg).unwrap_err();
    assert_eq!(fast, slow);
    assert!(matches!(fast, SimError::CrossInstanceSend { .. }));
}

/// Disjointness is asserted at batch setup.
#[test]
#[should_panic(expected = "vertex-disjoint")]
fn overlapping_instances_panic() {
    let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
    let _ = run_many(
        &g,
        vec![
            Instance::new(flood_for(&[VertexId(0), VertexId(1)])),
            Instance::new(flood_for(&[VertexId(1), VertexId(2)])),
        ],
        &SimConfig::default(),
    );
}
