//! Session / kernel-cache reuse regression suite.
//!
//! A [`KernelCache`] outlives the graph it was warmed on: the embedding
//! service rebinds one cache per tenant across edge deltas, and the
//! struct-of-arrays kernel retains mailbox arenas, chain tables and the
//! bit-packed payload pool between runs. The contract under test is that
//! *only capacity* survives a rebind — every logical table (chain heads,
//! word tallies, sentinel/slot epochs, fault state, bit pool) is fully
//! reinitialized for the graph at hand, so a warm run over a smaller,
//! larger, or differently-shaped graph is bit-identical to a cold one-shot
//! run. Each test walks a shrink-then-grow size sequence because stale
//! state hides exactly there: a buffer sized for the big graph whose tail
//! the small graph never rewrites, then re-exposed when growing again.

use congest_sim::{
    run, run_many, FaultPlan, Instance, KernelCache, NodeCtx, NodeProgram, SimConfig, SimError,
    SimSession,
};
use planar_graph::{Graph, VertexId};

/// Max-flood with an inbox transcript: final state witnesses both the
/// converged value and the exact delivery order/content of every round, so
/// any stale-state leak across reuse shows up as a state diff, not just a
/// metrics diff.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Flood {
    best: u32,
    log: Vec<(u32, u32)>,
}

impl Flood {
    fn new(v: VertexId) -> Self {
        Flood {
            best: v.0.wrapping_mul(0x9e37) % 1024,
            log: Vec::new(),
        }
    }
}

impl NodeProgram for Flood {
    type Msg = u32;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
        ctx.neighbors.iter().map(|&w| (w, self.best)).collect()
    }

    fn on_round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
        for &(from, v) in inbox {
            self.log.push((from.0, v));
        }
        let incoming = inbox.iter().map(|&(_, v)| v).max().unwrap_or(0);
        if incoming > self.best {
            self.best = incoming;
            ctx.neighbors.iter().map(|&w| (w, self.best)).collect()
        } else {
            Vec::new()
        }
    }
}

/// Triangulated grid: the denser workload family (multi-word traffic per
/// round, varied degrees) used across the conformance suites.
fn tri_grid(side: u32) -> Graph {
    let idx = |r: u32, c: u32| r * side + c;
    let mut edges = Vec::new();
    for r in 0..side {
        for c in 0..side {
            if c + 1 < side {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < side {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
            if r + 1 < side && c + 1 < side {
                edges.push((idx(r, c), idx(r + 1, c + 1)));
            }
        }
    }
    Graph::from_edges((side * side) as usize, edges).unwrap()
}

fn programs(g: &Graph) -> Vec<Flood> {
    g.vertices().map(Flood::new).collect()
}

/// Grow, shrink far below, then grow past the original size: warm runs
/// must match cold one-shot runs in final states *and* metrics at every
/// step. The shrink step leaves the tails of every retained buffer stale;
/// the final grow step re-exposes them.
#[test]
fn shrink_then_grow_reuse_is_bit_identical() {
    let cfg = SimConfig::default();
    let mut cache = KernelCache::new();
    for side in [9u32, 3, 12, 2, 13] {
        let g = tri_grid(side);
        let mut session = SimSession::with_cache(&g, cache);
        let warm = session.run(programs(&g), &cfg).unwrap();
        let cold = run(&g, programs(&g), &cfg).unwrap();
        assert_eq!(warm.metrics, cold.metrics, "side = {side}");
        assert_eq!(warm.programs, cold.programs, "side = {side}");
        cache = session.into_cache();
    }
    assert_eq!(cache.kernels(), 1);
}

/// Same walk under seeded faults: fault fates are keyed on per-arc stream
/// state, the most reuse-sensitive tables in the kernel.
#[test]
fn shrink_then_grow_reuse_with_faults() {
    let cfg = SimConfig {
        faults: FaultPlan::uniform(0xC0FFEE, 0.10, 0.05, 0.15, 3),
        ..SimConfig::default()
    };
    let mut cache = KernelCache::new();
    for side in [10u32, 3, 11] {
        let g = tri_grid(side);
        let mut session = SimSession::with_cache(&g, cache);
        let warm = session.run(programs(&g), &cfg).unwrap();
        let cold = run(&g, programs(&g), &cfg).unwrap();
        assert_eq!(warm.metrics, cold.metrics, "side = {side}");
        assert_eq!(warm.programs, cold.programs, "side = {side}");
        cache = session.into_cache();
    }
}

/// [`Flood`] restricted to one instance's vertex-id range, so a batch of
/// two half-graph instances stays isolation-clean.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Confined {
    inner: Flood,
    lo: u32,
    hi: u32,
}

impl Confined {
    fn new(v: VertexId, lo: u32, hi: u32) -> Self {
        Confined {
            inner: Flood::new(v),
            lo,
            hi,
        }
    }

    fn clip(&self, sends: Vec<(VertexId, u32)>) -> Vec<(VertexId, u32)> {
        sends
            .into_iter()
            .filter(|(w, _)| (self.lo..self.hi).contains(&w.0))
            .collect()
    }
}

impl NodeProgram for Confined {
    type Msg = u32;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
        let sends = self.inner.init(ctx);
        self.clip(sends)
    }

    fn on_round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
        let sends = self.inner.on_round(ctx, inbox);
        self.clip(sends)
    }
}

/// Batched runs through a rebound session: per-instance outcomes must
/// match the cold batched run after a shrink-grow cycle (the shared round
/// lattice adds the instance tables to the reused state).
#[test]
fn shrink_then_grow_reuse_batched() {
    let cfg = SimConfig::default();
    let mut cache = KernelCache::new();
    for side in [8u32, 3, 9] {
        let g = tri_grid(side);
        let n = g.vertex_count() as u32;
        let half = n / 2;
        let mk = || {
            vec![
                Instance::new(
                    (0..half)
                        .map(|i| (VertexId(i), Confined::new(VertexId(i), 0, half)))
                        .collect(),
                ),
                Instance::new(
                    (half..n)
                        .map(|i| (VertexId(i), Confined::new(VertexId(i), half, n)))
                        .collect(),
                ),
            ]
        };
        let mut session = SimSession::with_cache(&g, cache);
        let warm = session.run_many(mk(), &cfg).unwrap();
        let cold = run_many(&g, mk(), &cfg).unwrap();
        assert_eq!(warm.metrics, cold.metrics, "side = {side}");
        for (w, c) in warm.instances.iter().zip(&cold.instances) {
            assert_eq!(w.metrics, c.metrics, "side = {side}");
            assert_eq!(w.programs, c.programs, "side = {side}");
        }
        cache = session.into_cache();
    }
}

/// An aborted run (budget violation mid-flight) must not poison the cache:
/// the next warm run over a different graph still matches cold.
#[test]
fn reuse_after_error_is_clean() {
    /// Blasts an over-budget vector on round 2, after real traffic has
    /// populated the mailbox arena.
    #[derive(Debug)]
    struct Blaster {
        round: usize,
    }
    impl NodeProgram for Blaster {
        type Msg = Vec<u32>;
        fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, Vec<u32>)> {
            ctx.neighbors.iter().map(|&w| (w, vec![ctx.id.0])).collect()
        }
        fn on_round(
            &mut self,
            ctx: &NodeCtx<'_>,
            _: &[(VertexId, Vec<u32>)],
        ) -> Vec<(VertexId, Vec<u32>)> {
            self.round += 1;
            if self.round < 2 {
                // Keep every mailbox hot so the abort lands mid-flight.
                ctx.neighbors.iter().map(|&w| (w, vec![ctx.id.0])).collect()
            } else if self.round == 2 && ctx.id == VertexId(0) {
                vec![(ctx.neighbors[0], vec![7; 4096])]
            } else {
                Vec::new()
            }
        }
    }

    let cfg = SimConfig::default();
    let g = tri_grid(6);
    let mut session = SimSession::new(&g);
    let err = session
        .run(g.vertices().map(|_| Blaster { round: 0 }).collect(), &cfg)
        .unwrap_err();
    assert!(matches!(err, SimError::BudgetExceeded { .. }), "{err:?}");
    let mut cache = session.into_cache();

    // The poisoned arena reruns clean — smaller graph first, then larger,
    // with a second message type sharing the cache.
    for side in [4u32, 8] {
        let g = tri_grid(side);
        let mut session = SimSession::with_cache(&g, cache);
        let warm = session.run(programs(&g), &cfg).unwrap();
        let cold = run(&g, programs(&g), &cfg).unwrap();
        assert_eq!(warm.metrics, cold.metrics, "side = {side}");
        assert_eq!(warm.programs, cold.programs, "side = {side}");
        cache = session.into_cache();
    }
    assert_eq!(cache.kernels(), 2);
}

/// Session memory accounting is live: a warm cache reports a non-zero
/// resident footprint that does not shrink when rebinding to a smaller
/// graph (capacity is retained), and `SimSession::memory_bytes` includes
/// the arc index.
#[test]
fn memory_accounting_tracks_retained_capacity() {
    let cfg = SimConfig::default();
    let big = tri_grid(16);
    let mut session = SimSession::new(&big);
    assert_eq!(session.memory_bytes(), session.arc_index().memory_bytes());
    session.run(programs(&big), &cfg).unwrap();
    let warm_bytes = session.memory_bytes();
    assert!(warm_bytes > session.arc_index().memory_bytes());
    let cache = session.into_cache();
    let cache_bytes = cache.memory_bytes();
    assert!(cache_bytes > 0);

    let small = tri_grid(3);
    let mut session = SimSession::with_cache(&small, cache);
    session.run(programs(&small), &cfg).unwrap();
    // Capacity survives the rebind: the warm arena does not shrink.
    assert!(session.memory_bytes() >= cache_bytes);
}
