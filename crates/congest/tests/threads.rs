//! Thread-count determinism suite for the parallel round execution path.
//!
//! The contract (DESIGN.md §12): with [`SimConfig::threads`] set, the fast
//! kernel fans node stepping out across scoped workers, and **everything
//! observable is bit-identical at every thread count** — final program
//! states, [`Metrics`], fault fates, error values, and the full ordered
//! [`TraceEvent`] stream (stronger than the per-round multiset the
//! acceptance criterion asks for). An explicit `threads` override lowers
//! the parallel path's engagement floor to 2 recipients, so these small
//! conformance graphs genuinely exercise the sharded path rather than
//! falling back to the sequential loop.
//!
//! Every cell also pins the parallel kernel against the *reference* kernel
//! (which ignores `threads`), so the parallel path inherits the seed
//! kernel's semantics, not merely the sequential fast path's.

use congest_sim::protocols::{Reliable, ReliableConfig};
use congest_sim::reference::{run_reference, run_reference_many};
use congest_sim::{
    run, run_many, AuditSink, FaultPlan, Instance, LinkDown, MemorySink, NodeCtx, NodeProgram,
    SimConfig, SimError, TraceEvent, TraceHandle,
};
use planar_graph::{Graph, VertexId};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Max-flood: every node announces, floods improvements (same workload as
/// the kernel determinism suite).
#[derive(Clone, Debug, PartialEq, Eq)]
struct MaxFlood {
    best: u32,
}

impl NodeProgram for MaxFlood {
    type Msg = u32;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
        ctx.neighbors.iter().map(|&w| (w, self.best)).collect()
    }

    fn on_round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
        let incoming = inbox.iter().map(|&(_, v)| v).max().unwrap_or(0);
        if incoming > self.best {
            self.best = incoming;
            ctx.neighbors.iter().map(|&w| (w, self.best)).collect()
        } else {
            Vec::new()
        }
    }
}

/// Inbox transcript recorder: the strongest determinism witness — any
/// change in delivery *order*, not just content, changes the state.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Transcript {
    log: Vec<(usize, u32, u64)>,
    hops: u32,
}

impl NodeProgram for Transcript {
    type Msg = u64;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u64)> {
        ctx.neighbors
            .iter()
            .map(|&w| (w, u64::from(ctx.id.0) << 8))
            .collect()
    }

    fn on_round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(VertexId, u64)]) -> Vec<(VertexId, u64)> {
        for &(from, v) in inbox {
            self.log.push((ctx.round, from.0, v));
        }
        if ctx.round >= usize::from(self.hops as u16) {
            return Vec::new();
        }
        let min = inbox.iter().map(|&(_, v)| v).min().unwrap_or(0);
        ctx.neighbors.iter().map(|&w| (w, min + 1)).collect()
    }
}

fn grid(rows: usize, cols: usize, diagonals: bool) -> Graph {
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
            if diagonals && r + 1 < rows && c + 1 < cols {
                edges.push((idx(r, c), idx(r + 1, c + 1)));
            }
        }
    }
    Graph::from_edges(rows * cols, edges).unwrap()
}

fn workloads() -> Vec<(&'static str, Graph)> {
    vec![
        (
            "path32",
            Graph::from_edges(32, (0..31u32).map(|i| (i, i + 1))).unwrap(),
        ),
        (
            "star17",
            Graph::from_edges(17, (1..17u32).map(|i| (0, i))).unwrap(),
        ),
        ("grid8x8", grid(8, 8, false)),
        ("trigrid6x6", grid(6, 6, true)),
    ]
}

fn flood_programs(g: &Graph) -> Vec<MaxFlood> {
    (0..g.vertex_count())
        .map(|i| MaxFlood {
            best: (i as u32 * 7) % 64,
        })
        .collect()
}

fn transcript_programs(g: &Graph) -> Vec<Transcript> {
    (0..g.vertex_count())
        .map(|_| Transcript {
            log: Vec::new(),
            hops: 6,
        })
        .collect()
}

/// Fault plans the parallel path must replay identically at every thread
/// count: channel chaos, crash-stops, link-down windows, all combined.
fn fault_plans() -> Vec<(&'static str, FaultPlan)> {
    let chaos = FaultPlan::uniform(12, 0.1, 0.1, 0.2, 3);
    let mut crashes = FaultPlan::default();
    crashes.crashes.push((VertexId(2), 3));
    crashes.crashes.push((VertexId(5), 0));
    let mut everything = FaultPlan::uniform(13, 0.08, 0.05, 0.15, 2);
    everything.crashes.push((VertexId(3), 4));
    everything.link_down.push(LinkDown {
        from: VertexId(1),
        to: VertexId(2),
        start: 1,
        end: 3,
    });
    vec![
        ("none", FaultPlan::default()),
        ("chaos", chaos),
        ("crashes", crashes),
        ("everything", everything),
    ]
}

fn with_threads(cfg: &SimConfig, threads: usize) -> SimConfig {
    SimConfig {
        threads: Some(threads),
        ..cfg.clone()
    }
}

/// Runs `mk()` solo at the given thread count under a memory trace sink
/// and returns (final states, metrics, full event stream).
fn run_solo_traced<P>(
    label: &str,
    g: &Graph,
    programs: Vec<P>,
    cfg: &SimConfig,
    threads: usize,
) -> (Vec<P>, congest_sim::Metrics, Vec<TraceEvent>)
where
    P: NodeProgram + Send,
    P::Msg: Send + Sync,
{
    let sink = MemorySink::unbounded();
    let mut cfg = with_threads(cfg, threads);
    cfg.trace = TraceHandle::to(sink.clone());
    let out = run(g, programs, &cfg)
        .unwrap_or_else(|e| panic!("{label}@{threads}t: parallel run failed: {e}"));
    (out.programs, out.metrics, sink.events())
}

/// Solo runs: states, metrics and the full ordered trace stream are
/// bit-identical at threads 1/2/4/8 — fault-free and under every fault
/// plan — and match the reference kernel.
#[test]
fn solo_runs_identical_at_every_thread_count() {
    for (plan_name, plan) in fault_plans() {
        let cfg = SimConfig {
            faults: plan,
            ..SimConfig::default()
        };
        for (name, g) in workloads() {
            let label = format!("{name}/{plan_name}");
            let reference = run_reference(&g, transcript_programs(&g), &cfg)
                .unwrap_or_else(|e| panic!("{label}: reference run failed: {e}"));
            let base = run_solo_traced(&label, &g, transcript_programs(&g), &cfg, 1);
            assert_eq!(
                base.0, reference.programs,
                "{label}: parallel kernel diverged from the reference"
            );
            assert_eq!(base.1, reference.metrics, "{label}: reference metrics");
            for threads in THREAD_COUNTS {
                let got = run_solo_traced(&label, &g, transcript_programs(&g), &cfg, threads);
                assert_eq!(got.0, base.0, "{label}@{threads}t: states diverge");
                assert_eq!(got.1, base.1, "{label}@{threads}t: metrics diverge");
                assert_eq!(got.2, base.2, "{label}@{threads}t: trace stream diverges");
            }
        }
    }
}

/// Flood programs too (distinct send pattern: fan-out bursts that spill
/// multi-message arcs), fault-free, all thread counts.
#[test]
fn solo_flood_identical_at_every_thread_count() {
    let cfg = SimConfig::default();
    for (name, g) in workloads() {
        let base = run_solo_traced(name, &g, flood_programs(&g), &cfg, 1);
        for threads in THREAD_COUNTS {
            let got = run_solo_traced(name, &g, flood_programs(&g), &cfg, threads);
            assert_eq!(got.0, base.0, "{name}@{threads}t: states diverge");
            assert_eq!(got.1, base.1, "{name}@{threads}t: metrics diverge");
            assert_eq!(got.2, base.2, "{name}@{threads}t: trace stream diverges");
        }
    }
}

/// Three mutually unreachable components in one vertex space (path, grid,
/// star) — the batched suite's shape, where vertex-disjoint instances are
/// also message-disjoint.
fn components() -> (Graph, Vec<Vec<VertexId>>) {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    edges.extend((0..11).map(|i| (i, i + 1)));
    let gidx = |r: u32, c: u32| 12 + r * 4 + c;
    for r in 0..4 {
        for c in 0..4 {
            if c + 1 < 4 {
                edges.push((gidx(r, c), gidx(r, c + 1)));
            }
            if r + 1 < 4 {
                edges.push((gidx(r, c), gidx(r + 1, c)));
            }
        }
    }
    edges.extend((29..37).map(|i| (28, i)));
    let g = Graph::from_edges(37, edges).unwrap();
    let members = vec![
        (0..12).map(VertexId).collect(),
        (12..28).map(VertexId).collect(),
        (28..37).map(VertexId).collect(),
    ];
    (g, members)
}

fn transcript_instances(members: &[Vec<VertexId>]) -> Vec<Instance<Transcript>> {
    members
        .iter()
        .map(|m| {
            Instance::new(
                m.iter()
                    .map(|&v| {
                        (
                            v,
                            Transcript {
                                log: Vec::new(),
                                hops: 6,
                            },
                        )
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Batched runs: per-instance states and metrics, batch metrics, and the
/// full trace stream are identical at every thread count, fault-free and
/// under chaos, and match the reference kernel.
#[test]
fn batched_runs_identical_at_every_thread_count() {
    let (g, members) = components();
    for (plan_name, plan) in fault_plans() {
        let cfg = SimConfig {
            faults: plan,
            ..SimConfig::default()
        };
        let reference = run_reference_many(&g, transcript_instances(&members), &cfg)
            .unwrap_or_else(|e| panic!("{plan_name}: reference batched run failed: {e}"));
        let mut base: Option<(congest_sim::MultiOutcome<Transcript>, Vec<TraceEvent>)> = None;
        for threads in THREAD_COUNTS {
            let sink = MemorySink::unbounded();
            let mut tcfg = with_threads(&cfg, threads);
            tcfg.trace = TraceHandle::to(sink.clone());
            let out = run_many(&g, transcript_instances(&members), &tcfg)
                .unwrap_or_else(|e| panic!("{plan_name}@{threads}t: batched run failed: {e}"));
            let events = sink.events();
            assert_eq!(out.metrics, reference.metrics, "{plan_name}@{threads}t");
            for (i, (f, r)) in out.instances.iter().zip(&reference.instances).enumerate() {
                assert_eq!(f.members, r.members, "{plan_name}@{threads}t: inst {i}");
                assert_eq!(f.programs, r.programs, "{plan_name}@{threads}t: inst {i}");
                assert_eq!(f.metrics, r.metrics, "{plan_name}@{threads}t: inst {i}");
            }
            match &base {
                None => base = Some((out, events)),
                Some((b, bev)) => {
                    assert_eq!(
                        out.metrics, b.metrics,
                        "{plan_name}@{threads}t: batch metrics diverge"
                    );
                    for (i, (f, s)) in out.instances.iter().zip(&b.instances).enumerate() {
                        assert_eq!(
                            f.programs, s.programs,
                            "{plan_name}@{threads}t: inst {i} states diverge"
                        );
                        assert_eq!(
                            f.metrics, s.metrics,
                            "{plan_name}@{threads}t: inst {i} metrics diverge"
                        );
                    }
                    assert_eq!(
                        &events, bev,
                        "{plan_name}@{threads}t: trace stream diverges"
                    );
                }
            }
        }
    }
}

/// Chaos + reliable-delivery cell with the `TraceAuditor` armed: the
/// ack/retransmit wrapper under a lossy plan, metrics independently
/// recomputed from the event stream at every thread count, solo and
/// batched.
#[test]
fn reliable_chaos_audits_clean_at_every_thread_count() {
    let cfg = SimConfig {
        budget_words: 3 * congest_sim::DEFAULT_BUDGET_WORDS + 2,
        faults: FaultPlan::uniform(21, 0.2, 0.1, 0.2, 2),
        ..SimConfig::default()
    };
    let rel = ReliableConfig::default();
    for (name, g) in workloads() {
        let mk = || {
            transcript_programs(&g)
                .into_iter()
                .map(|p| Reliable::new(p, rel.clone()))
                .collect::<Vec<_>>()
        };
        let mut base: Option<(Vec<Reliable<Transcript>>, congest_sim::Metrics)> = None;
        for threads in THREAD_COUNTS {
            let audit = AuditSink::new();
            let mut tcfg = with_threads(&cfg, threads);
            tcfg.trace = TraceHandle::to(audit.clone());
            let out = run(&g, mk(), &tcfg)
                .unwrap_or_else(|e| panic!("{name}@{threads}t: wrapped run failed: {e}"));
            assert!(
                audit.ok(),
                "{name}@{threads}t: trace audit failed: {:?}",
                audit.report().mismatches
            );
            match &base {
                None => base = Some((out.programs, out.metrics)),
                Some((bp, bm)) => {
                    assert_eq!(&out.programs, bp, "{name}@{threads}t: states diverge");
                    assert_eq!(&out.metrics, bm, "{name}@{threads}t: metrics diverge");
                }
            }
        }
    }

    // Batched counterpart: wrapped instances over the component graph, with
    // per-instance metrics recomputed by the auditor.
    let (g, members) = components();
    let mk = || {
        transcript_instances(&members)
            .into_iter()
            .map(|inst| inst.map(|p| Reliable::new(p, rel.clone())))
            .collect::<Vec<_>>()
    };
    let mut base: Option<congest_sim::MultiOutcome<Reliable<Transcript>>> = None;
    for threads in THREAD_COUNTS {
        let audit = AuditSink::new();
        let mut tcfg = with_threads(&cfg, threads);
        tcfg.trace = TraceHandle::to(audit.clone());
        let out = run_many(&g, mk(), &tcfg)
            .unwrap_or_else(|e| panic!("batched@{threads}t: wrapped run failed: {e}"));
        assert!(
            audit.ok(),
            "batched@{threads}t: trace audit failed: {:?}",
            audit.report().mismatches
        );
        match &base {
            None => base = Some(out),
            Some(b) => {
                assert_eq!(out.metrics, b.metrics, "batched@{threads}t");
                for (i, (f, s)) in out.instances.iter().zip(&b.instances).enumerate() {
                    assert_eq!(f.programs, s.programs, "batched@{threads}t: inst {i}");
                    assert_eq!(f.metrics, s.metrics, "batched@{threads}t: inst {i}");
                }
            }
        }
    }
}

/// A program whose node 0 addresses a non-neighbor in round 2: the error
/// value and everything queued before it must be identical at every
/// thread count (the parallel path buffers validation errors and
/// surfaces them at the sequential replay position).
#[derive(Clone, Debug, PartialEq, Eq)]
struct BadSender;

impl NodeProgram for BadSender {
    type Msg = u32;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
        ctx.neighbors.iter().map(|&w| (w, 1)).collect()
    }

    fn on_round(&mut self, ctx: &NodeCtx<'_>, _inbox: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
        if ctx.round == 2 && ctx.id == VertexId(0) {
            // First a valid send, then a non-neighbor: the valid one must
            // still be queued (and traced) before the error fires.
            let mut out: Vec<(VertexId, u32)> = ctx.neighbors.iter().map(|&w| (w, 9)).collect();
            out.push((VertexId(u32::MAX - 1), 9));
            return out;
        }
        if ctx.round < 4 {
            ctx.neighbors.iter().map(|&w| (w, 2)).collect()
        } else {
            Vec::new()
        }
    }
}

#[test]
fn errors_identical_at_every_thread_count() {
    let g = grid(4, 4, false);
    let base_cfg = SimConfig::default();
    let mut streams: Vec<(usize, SimError, Vec<TraceEvent>)> = Vec::new();
    for threads in THREAD_COUNTS {
        let sink = MemorySink::unbounded();
        let mut cfg = with_threads(&base_cfg, threads);
        cfg.trace = TraceHandle::to(sink.clone());
        let err = run(&g, vec![BadSender; 16], &cfg)
            .err()
            .unwrap_or_else(|| panic!("@{threads}t: bad send must abort the run"));
        streams.push((threads, err, sink.events()));
    }
    let (_, base_err, base_events) = &streams[0];
    assert!(matches!(base_err, SimError::InvalidDestination { .. }));
    for (threads, err, events) in &streams[1..] {
        assert_eq!(err, base_err, "@{threads}t: error value diverges");
        assert_eq!(events, base_events, "@{threads}t: trace stream diverges");
    }
}

/// `PLANAR_THREADS`-driven automatic resolution also stays deterministic:
/// a run with `threads: None` equals a pinned run (the auto count only
/// picks *how many* workers, never what they compute).
#[test]
fn auto_thread_count_matches_pinned() {
    let (name, g) = ("grid8x8", grid(8, 8, false));
    let cfg = SimConfig::default();
    let auto = run(&g, transcript_programs(&g), &cfg).unwrap();
    for threads in THREAD_COUNTS {
        let pinned = run(&g, transcript_programs(&g), &with_threads(&cfg, threads)).unwrap();
        assert_eq!(pinned.programs, auto.programs, "{name}@{threads}t");
        assert_eq!(pinned.metrics, auto.metrics, "{name}@{threads}t");
    }
}
