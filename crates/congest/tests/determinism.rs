//! Determinism conformance suite for the simulation kernel.
//!
//! The allocation-free kernel (`congest_sim::run`) must be byte-for-byte
//! equivalent to the seed kernel preserved in
//! `congest_sim::reference::run_reference`: identical final program states,
//! identical [`Metrics`], identical errors. These tests pin that contract
//! so kernel optimizations cannot silently introduce ordering
//! nondeterminism — the property the round-count measurements in
//! EXPERIMENTS.md depend on.

use congest_sim::protocols::{Reliable, ReliableConfig};
use congest_sim::reference::run_reference;
use congest_sim::{
    run, AuditSink, FaultPlan, LinkDown, Metrics, NodeCtx, NodeProgram, SimConfig, SimError,
    Simulator, TraceHandle,
};
use planar_graph::{Graph, VertexId};

/// Max-flood: every node announces, floods improvements. Deterministic and
/// touches every edge repeatedly.
#[derive(Clone, Debug, PartialEq, Eq)]
struct MaxFlood {
    best: u32,
}

impl NodeProgram for MaxFlood {
    type Msg = u32;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
        ctx.neighbors.iter().map(|&w| (w, self.best)).collect()
    }

    fn on_round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
        let incoming = inbox.iter().map(|&(_, v)| v).max().unwrap_or(0);
        if incoming > self.best {
            self.best = incoming;
            ctx.neighbors.iter().map(|&w| (w, self.best)).collect()
        } else {
            Vec::new()
        }
    }
}

/// Inbox transcript recorder: state is the full ordered history of
/// `(round, from, value)` triples — the strongest determinism witness, since
/// any change in delivery *order*, not just content, changes the state.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Transcript {
    log: Vec<(usize, u32, u64)>,
    hops: u32,
}

impl NodeProgram for Transcript {
    type Msg = u64;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u64)> {
        ctx.neighbors
            .iter()
            .map(|&w| (w, u64::from(ctx.id.0) << 8))
            .collect()
    }

    fn on_round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(VertexId, u64)]) -> Vec<(VertexId, u64)> {
        for &(from, v) in inbox {
            self.log.push((ctx.round, from.0, v));
        }
        if ctx.round >= usize::from(self.hops as u16) {
            return Vec::new();
        }
        // Forward a decremented copy of the smallest value to all neighbors.
        let min = inbox.iter().map(|&(_, v)| v).min().unwrap_or(0);
        ctx.neighbors.iter().map(|&w| (w, min + 1)).collect()
    }
}

fn grid(rows: usize, cols: usize, diagonals: bool) -> Graph {
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
            if diagonals && r + 1 < rows && c + 1 < cols {
                edges.push((idx(r, c), idx(r + 1, c + 1)));
            }
        }
    }
    Graph::from_edges(rows * cols, edges).unwrap()
}

fn star(n: usize) -> Graph {
    Graph::from_edges(n, (1..n as u32).map(|i| (0, i))).unwrap()
}

fn path(n: usize) -> Graph {
    Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap()
}

fn workloads() -> Vec<(&'static str, Graph)> {
    vec![
        ("path32", path(32)),
        ("star17", star(17)),
        ("grid8x8", grid(8, 8, false)),
        ("trigrid6x6", grid(6, 6, true)),
    ]
}

fn flood_programs(g: &Graph) -> Vec<MaxFlood> {
    (0..g.vertex_count())
        .map(|i| MaxFlood {
            best: (i as u32 * 7) % 64,
        })
        .collect()
}

fn transcript_programs(g: &Graph) -> Vec<Transcript> {
    (0..g.vertex_count())
        .map(|_| Transcript {
            log: Vec::new(),
            hops: 6,
        })
        .collect()
}

fn run_pair<P: NodeProgram + Clone + PartialEq + std::fmt::Debug + Send>(
    name: &str,
    g: &Graph,
    programs: Vec<P>,
    cfg: &SimConfig,
) -> (Vec<P>, Metrics)
where
    P::Msg: Send + Sync,
{
    // Both kernels run under the trace auditor: every conformance workload
    // doubles as a check that the reported Metrics survive independent
    // recomputation from the event stream.
    let fast_audit = AuditSink::new();
    let mut fast_cfg = cfg.clone();
    fast_cfg.trace = TraceHandle::to(fast_audit.clone());
    let fast = run(g, programs.clone(), &fast_cfg)
        .unwrap_or_else(|e| panic!("{name}: fast kernel failed: {e}"));
    let slow_audit = AuditSink::new();
    let mut slow_cfg = cfg.clone();
    slow_cfg.trace = TraceHandle::to(slow_audit.clone());
    let slow = run_reference(g, programs, &slow_cfg)
        .unwrap_or_else(|e| panic!("{name}: reference kernel failed: {e}"));
    assert_eq!(fast.programs, slow.programs, "{name}: final states diverge");
    assert_eq!(fast.metrics, slow.metrics, "{name}: metrics diverge");
    assert!(
        fast_audit.ok(),
        "{name}: fast kernel trace audit failed: {:?}",
        fast_audit.report().mismatches
    );
    assert!(
        slow_audit.ok(),
        "{name}: reference kernel trace audit failed: {:?}",
        slow_audit.report().mismatches
    );
    (fast.programs, fast.metrics)
}

/// Three identical runs of the fast kernel agree with each other and with
/// the reference kernel, on every workload, for both program shapes.
#[test]
fn kernels_agree_and_reruns_are_identical() {
    let cfg = SimConfig::default();
    for (name, g) in workloads() {
        let (s1, m1) = run_pair(name, &g, flood_programs(&g), &cfg);
        for _ in 0..2 {
            let (s, m) = run_pair(name, &g, flood_programs(&g), &cfg);
            assert_eq!(s, s1, "{name}: flood rerun diverged");
            assert_eq!(m, m1, "{name}: flood rerun metrics diverged");
        }

        let (t1, tm1) = run_pair(name, &g, transcript_programs(&g), &cfg);
        for _ in 0..2 {
            let (t, tm) = run_pair(name, &g, transcript_programs(&g), &cfg);
            assert_eq!(t, t1, "{name}: transcript rerun diverged");
            assert_eq!(tm, tm1, "{name}: transcript rerun metrics diverged");
        }
    }
}

/// A `Simulator` reused across runs — different graphs, and immediately
/// after a run that aborted with an error — behaves exactly like a fresh
/// one: buffer reuse must not leak any state between runs.
#[test]
fn simulator_reuse_matches_fresh_runs() {
    /// Overflows the word budget toward node 0 at init time.
    #[derive(Clone, Debug)]
    struct Overflow;
    impl NodeProgram for Overflow {
        type Msg = u32;
        fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
            if ctx.id == VertexId(1) {
                (0..50).map(|i| (VertexId(0), i)).collect()
            } else {
                Vec::new()
            }
        }
        fn on_round(&mut self, _: &NodeCtx<'_>, _: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
            Vec::new()
        }
    }

    let cfg = SimConfig::default();
    let mut sim: Simulator<u32> = Simulator::new();
    for round_trip in 0..2 {
        for (name, g) in workloads() {
            let fresh = run(&g, flood_programs(&g), &cfg)
                .unwrap_or_else(|e| panic!("{name}: fresh run failed: {e}"));
            let reused = sim
                .run(&g, flood_programs(&g), &cfg)
                .unwrap_or_else(|e| panic!("{name}: reused run failed: {e}"));
            assert_eq!(
                fresh.programs, reused.programs,
                "{name} (pass {round_trip})"
            );
            assert_eq!(fresh.metrics, reused.metrics, "{name} (pass {round_trip})");

            // Poison the simulator with an aborted run; the next iteration
            // must still match a fresh simulator exactly.
            let n = g.vertex_count();
            let err = sim.run(&g, vec![Overflow; n], &cfg).unwrap_err();
            assert!(
                matches!(err, SimError::BudgetExceeded { .. }),
                "{name}: {err}"
            );
        }
    }
}

/// Budget-overflow regression: the fast kernel reports the same
/// `(from, to, words, budget, round)` as the seed kernel did.
#[test]
fn budget_exceeded_matches_reference() {
    /// Node 0 floods `words_per_round` one-word messages to node 1 starting
    /// in the given round, overflowing a budget of 8.
    #[derive(Clone, Debug)]
    struct Burst {
        fire_round: usize,
        volume: usize,
    }
    impl NodeProgram for Burst {
        type Msg = u32;
        fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
            if ctx.id == VertexId(0) {
                vec![(VertexId(1), 1)]
            } else {
                Vec::new()
            }
        }
        fn on_round(&mut self, ctx: &NodeCtx<'_>, _: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
            if ctx.id == VertexId(1) && ctx.round == self.fire_round {
                (0..self.volume).map(|i| (VertexId(2), i as u32)).collect()
            } else if ctx.id == VertexId(1) && ctx.round < self.fire_round {
                vec![(VertexId(0), 0)] // keep the run alive until fire_round
            } else if ctx.id == VertexId(0) && ctx.round < self.fire_round {
                vec![(VertexId(1), 0)]
            } else {
                Vec::new()
            }
        }
    }
    let g = path(3);
    let cfg = SimConfig {
        budget_words: 8,
        max_rounds: 100,
        ..SimConfig::default()
    };
    let mk = || {
        (0..3)
            .map(|_| Burst {
                fire_round: 3,
                volume: 20,
            })
            .collect::<Vec<_>>()
    };
    let fast_err = run(&g, mk(), &cfg).unwrap_err();
    let slow_err = run_reference(&g, mk(), &cfg).unwrap_err();
    assert_eq!(fast_err, slow_err);
    // The overflow happens on the 9th word sent by node 1 to node 2 in
    // round 3, delivered (and reported) in round 4.
    assert_eq!(
        fast_err,
        SimError::BudgetExceeded {
            from: VertexId(1),
            to: VertexId(2),
            words: 9,
            budget: 8,
            round: 4,
        }
    );
}

/// A bouquet of distinct fault plans exercised by the conformance suite:
/// channel faults alone, crashes alone, link-down windows, and everything
/// combined.
fn fault_plans() -> Vec<(&'static str, FaultPlan)> {
    let drops = FaultPlan::uniform(11, 0.15, 0.0, 0.0, 0);
    let chaos = FaultPlan::uniform(12, 0.1, 0.1, 0.2, 3);
    let mut crashes = FaultPlan::default();
    crashes.crashes.push((VertexId(2), 3));
    crashes.crashes.push((VertexId(5), 0));
    let mut outage = FaultPlan::default();
    outage.link_down.push(LinkDown {
        from: VertexId(0),
        to: VertexId(1),
        start: 2,
        end: 5,
    });
    outage.link_down.push(LinkDown {
        from: VertexId(1),
        to: VertexId(0),
        start: 2,
        end: 5,
    });
    let mut everything = FaultPlan::uniform(13, 0.08, 0.05, 0.15, 2);
    everything.crashes.push((VertexId(3), 4));
    everything.link_down.push(LinkDown {
        from: VertexId(1),
        to: VertexId(2),
        start: 1,
        end: 3,
    });
    vec![
        ("drops", drops),
        ("chaos", chaos),
        ("crashes", crashes),
        ("outage", outage),
        ("everything", everything),
    ]
}

/// Tentpole conformance: under every fault plan, both kernels produce
/// identical final states and identical Metrics (including the fault
/// counters), and replaying the same `(seed, plan)` is byte-identical.
#[test]
fn kernels_agree_under_faults() {
    for (plan_name, plan) in fault_plans() {
        let cfg = SimConfig {
            faults: plan,
            ..SimConfig::default()
        };
        for (name, g) in workloads() {
            let label = format!("{name}/{plan_name}");
            let (s1, m1) = run_pair(&label, &g, flood_programs(&g), &cfg);
            let (s2, m2) = run_pair(&label, &g, flood_programs(&g), &cfg);
            assert_eq!(s1, s2, "{label}: faulty replay diverged");
            assert_eq!(m1, m2, "{label}: faulty replay metrics diverged");

            let (t1, tm1) = run_pair(&label, &g, transcript_programs(&g), &cfg);
            let (t2, tm2) = run_pair(&label, &g, transcript_programs(&g), &cfg);
            assert_eq!(t1, t2, "{label}: transcript faulty replay diverged");
            assert_eq!(tm1, tm2, "{label}: transcript metrics diverged");
        }
    }
}

/// The reliable wrapper is deterministic too: wrapped transcript runs under
/// a lossy plan agree across kernels and replays (its BTreeMap-backed state
/// must not leak iteration-order nondeterminism into message emission).
#[test]
fn reliable_wrapper_agrees_under_faults() {
    let cfg = SimConfig {
        budget_words: 3 * congest_sim::DEFAULT_BUDGET_WORDS + 2,
        faults: FaultPlan::uniform(21, 0.2, 0.1, 0.2, 2),
        ..SimConfig::default()
    };
    let rel = ReliableConfig::default();
    for (name, g) in workloads() {
        let mk = || {
            transcript_programs(&g)
                .into_iter()
                .map(|p| Reliable::new(p, rel.clone()))
                .collect::<Vec<_>>()
        };
        let (s1, m1) = run_pair(name, &g, mk(), &cfg);
        let (s2, m2) = run_pair(name, &g, mk(), &cfg);
        assert_eq!(s1, s2, "{name}: wrapped replay diverged");
        assert_eq!(m1, m2, "{name}: wrapped replay metrics diverged");
    }
}

/// Fault-free outcomes are byte-identical with and without the fault fields
/// present: `FaultPlan::default()` must keep both kernels on their original
/// code paths (satellite of the zero-overhead acceptance criterion).
#[test]
fn default_plan_reproduces_fault_free_outcomes() {
    for (name, g) in workloads() {
        let plain = SimConfig::default();
        let explicit = SimConfig {
            budget_words: plain.budget_words,
            max_rounds: plain.max_rounds,
            faults: FaultPlan::default(),
            watchdog: None,
            ..SimConfig::default()
        };
        let a = run(&g, transcript_programs(&g), &plain).unwrap();
        let b = run(&g, transcript_programs(&g), &explicit).unwrap();
        assert_eq!(a.programs, b.programs, "{name}");
        assert_eq!(a.metrics, b.metrics, "{name}");
        assert_eq!(a.metrics.dropped, 0, "{name}");
        assert_eq!(a.metrics.crashed_nodes, 0, "{name}");
        // And the reference kernel agrees, via the standard pair check.
        run_pair(name, &g, transcript_programs(&g), &explicit);
    }
}

/// Watchdog fires identically on both kernels (with and without faults).
#[test]
fn watchdog_matches_reference() {
    let g = path(32);
    let cfg = SimConfig {
        watchdog: Some(5),
        ..SimConfig::default()
    };
    let fast = run(&g, flood_programs(&g), &cfg).unwrap_err();
    let slow = run_reference(&g, flood_programs(&g), &cfg).unwrap_err();
    assert_eq!(fast, slow);
    assert_eq!(fast, SimError::WatchdogTimeout { limit: 5 });

    let faulty = SimConfig {
        watchdog: Some(4),
        faults: FaultPlan::uniform(3, 0.3, 0.0, 0.3, 2),
        ..SimConfig::default()
    };
    assert_eq!(
        run(&g, flood_programs(&g), &faulty).unwrap_err(),
        run_reference(&g, flood_programs(&g), &faulty).unwrap_err(),
    );
}

/// Invalid destinations and the max-rounds guard error identically on both
/// kernels.
#[test]
fn error_surfaces_match_reference() {
    #[derive(Clone, Debug)]
    struct Wild;
    impl NodeProgram for Wild {
        type Msg = u32;
        fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
            if ctx.id == VertexId(2) {
                vec![(VertexId(0), 1)] // 0 is not adjacent to 2 on a path
            } else {
                Vec::new()
            }
        }
        fn on_round(&mut self, _: &NodeCtx<'_>, _: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
            Vec::new()
        }
    }
    let g = path(4);
    let cfg = SimConfig::default();
    assert_eq!(
        run(&g, vec![Wild; 4], &cfg).unwrap_err(),
        run_reference(&g, vec![Wild; 4], &cfg).unwrap_err(),
    );

    #[derive(Clone, Debug)]
    struct PingPong;
    impl NodeProgram for PingPong {
        type Msg = u32;
        fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
            if ctx.id == VertexId(0) {
                vec![(VertexId(1), 0)]
            } else {
                Vec::new()
            }
        }
        fn on_round(&mut self, _: &NodeCtx<'_>, inbox: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
            inbox.iter().map(|&(from, v)| (from, v + 1)).collect()
        }
    }
    let g = path(2);
    let cfg = SimConfig {
        budget_words: 8,
        max_rounds: 25,
        ..SimConfig::default()
    };
    assert_eq!(
        run(&g, vec![PingPong; 2], &cfg).unwrap_err(),
        run_reference(&g, vec![PingPong; 2], &cfg).unwrap_err(),
    );
}
