//! Property tests of the fault-injection subsystem: replayability,
//! crash-stop semantics, crash policies, and no-hang guarantees — each
//! checked on *both* kernels (the conformance contract extends to every
//! fault feature).

use congest_sim::reference::run_reference;
use congest_sim::{
    run, CrashPolicy, FaultPlan, LinkFaults, NodeCtx, NodeProgram, SimConfig, SimError,
};
use planar_graph::{Graph, VertexId};

/// Every node floods a token once on first receipt; node 0 starts.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Flood {
    seen: bool,
    heard_from: Vec<VertexId>,
}

impl NodeProgram for Flood {
    type Msg = u32;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
        if ctx.id == VertexId(0) {
            self.seen = true;
            ctx.neighbors.iter().map(|&w| (w, 1)).collect()
        } else {
            Vec::new()
        }
    }

    fn on_round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
        for &(from, _) in inbox {
            self.heard_from.push(from);
        }
        if self.seen || inbox.is_empty() {
            return Vec::new();
        }
        self.seen = true;
        ctx.neighbors.iter().map(|&w| (w, 1)).collect()
    }
}

fn programs(g: &Graph) -> Vec<Flood> {
    vec![
        Flood {
            seen: false,
            heard_from: Vec::new(),
        };
        g.vertex_count()
    ]
}

fn path(n: usize) -> Graph {
    Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap()
}

fn grid(w: usize, h: usize) -> Graph {
    let mut edges = Vec::new();
    let id = |x: usize, y: usize| (y * w + x) as u32;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    Graph::from_edges(w * h, edges).unwrap()
}

/// Property (a): the default (empty) plan is byte-identical to the
/// pre-fault-subsystem behavior on both kernels.
#[test]
fn default_plan_is_fault_free() {
    let g = grid(5, 5);
    let base_cfg = SimConfig::default();
    let explicit = SimConfig {
        faults: FaultPlan::default(),
        watchdog: None,
        ..SimConfig::default()
    };
    let a = run(&g, programs(&g), &base_cfg).unwrap();
    let b = run(&g, programs(&g), &explicit).unwrap();
    let r = run_reference(&g, programs(&g), &explicit).unwrap();
    assert_eq!(a.programs, b.programs);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.programs, r.programs);
    assert_eq!(a.metrics, r.metrics);
    assert_eq!(
        a.metrics.dropped + a.metrics.duplicated + a.metrics.delayed,
        0
    );
}

/// Property (b): a fixed `(seed, plan)` replays identically — across
/// reruns and across kernels — for plans combining every fault feature.
#[test]
fn same_seed_and_plan_replay_identically() {
    let g = grid(6, 6);
    let mut plan = FaultPlan::uniform(424242, 0.12, 0.06, 0.18, 3);
    plan.crashes.push((VertexId(17), 4));
    for seed_shift in 0..3u64 {
        let mut p = plan.clone();
        p.seed = plan.seed + seed_shift;
        let cfg = SimConfig {
            faults: p,
            ..SimConfig::default()
        };
        let a = run(&g, programs(&g), &cfg).unwrap();
        let b = run(&g, programs(&g), &cfg).unwrap();
        let r = run_reference(&g, programs(&g), &cfg).unwrap();
        assert_eq!(a.programs, b.programs, "fast kernel replay diverged");
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.programs, r.programs, "kernels diverged under plan");
        assert_eq!(a.metrics, r.metrics, "metrics diverged under plan");
    }
}

/// Different seeds actually produce different fault schedules (the RNG is
/// not inert).
#[test]
fn different_seeds_differ() {
    let g = grid(6, 6);
    let outcomes: Vec<_> = (0..4u64)
        .map(|seed| {
            let cfg = SimConfig {
                faults: FaultPlan::uniform(seed, 0.3, 0.0, 0.3, 2),
                ..SimConfig::default()
            };
            run(&g, programs(&g), &cfg).unwrap()
        })
        .collect();
    assert!(
        outcomes
            .windows(2)
            .any(|w| w[0].programs != w[1].programs || w[0].metrics != w[1].metrics),
        "four different seeds produced identical faulty outcomes"
    );
}

/// Property (c): drop rate 1.0 on a cut edge terminates (quiescence, not a
/// hang) with the far side never reached — on both kernels.
#[test]
fn dead_cut_edge_quiesces_without_delivery() {
    let g = path(8);
    let mut plan = FaultPlan {
        seed: 3,
        ..FaultPlan::default()
    };
    for (a, b) in [(3u32, 4u32), (4, 3)] {
        plan.link_overrides.push((
            (VertexId(a), VertexId(b)),
            LinkFaults {
                drop: 1.0,
                duplicate: 0.0,
                delay: 0.0,
                max_delay: 0,
            },
        ));
    }
    let cfg = SimConfig {
        faults: plan,
        ..SimConfig::default()
    };
    let fast = run(&g, programs(&g), &cfg).expect("must quiesce, not hang");
    let slow = run_reference(&g, programs(&g), &cfg).unwrap();
    assert_eq!(fast.programs, slow.programs);
    assert_eq!(fast.metrics, slow.metrics);
    for i in 0..8 {
        assert_eq!(fast.programs[i].seen, i <= 3, "node {i}");
    }
    assert!(fast.metrics.dropped > 0);
}

/// Crash-stop: a node crashed at round 0 does nothing at all; in-flight
/// messages to nodes that crash before delivery are discarded; neighbors
/// never hear from the dead.
#[test]
fn crash_stop_semantics() {
    let g = path(5);
    let mut plan = FaultPlan::default();
    plan.crashes.push((VertexId(2), 0));
    let cfg = SimConfig {
        faults: plan,
        ..SimConfig::default()
    };
    let fast = run(&g, programs(&g), &cfg).unwrap();
    let slow = run_reference(&g, programs(&g), &cfg).unwrap();
    assert_eq!(fast.programs, slow.programs);
    assert_eq!(fast.metrics, slow.metrics);
    // The flood dies at the crashed node: 3 and 4 never hear anything.
    assert!(fast.programs[1].seen);
    assert!(!fast.programs[3].seen && !fast.programs[4].seen);
    assert!(fast
        .programs
        .iter()
        .all(|p| !p.heard_from.contains(&VertexId(2))));
    assert_eq!(fast.metrics.crashed_nodes, 1);
}

/// `CrashPolicy::Error` surfaces sends to crashed destinations as the
/// typed `DestinationCrashed` error — identically on both kernels.
#[test]
fn crash_policy_error_matches_across_kernels() {
    let g = path(3);
    let mut plan = FaultPlan::default();
    plan.crashes.push((VertexId(1), 0));
    plan.on_crashed_send = CrashPolicy::Error;
    let cfg = SimConfig {
        faults: plan,
        ..SimConfig::default()
    };
    let fast = run(&g, programs(&g), &cfg).unwrap_err();
    let slow = run_reference(&g, programs(&g), &cfg).unwrap_err();
    assert_eq!(fast, slow);
    assert!(
        matches!(
            fast,
            SimError::DestinationCrashed {
                from: VertexId(0),
                to: VertexId(1),
                round: 0,
            }
        ),
        "got {fast:?}"
    );
}

/// The watchdog bounds faulty runs: a plan that keeps traffic alive past
/// the limit times out identically on both kernels, and the error Display
/// names the limit.
#[test]
fn watchdog_bounds_delayed_traffic() {
    let g = path(16);
    let cfg = SimConfig {
        watchdog: Some(3),
        faults: FaultPlan::uniform(8, 0.0, 0.0, 1.0, 6),
        ..SimConfig::default()
    };
    let fast = run(&g, programs(&g), &cfg).unwrap_err();
    let slow = run_reference(&g, programs(&g), &cfg).unwrap_err();
    assert_eq!(fast, slow);
    assert_eq!(fast, SimError::WatchdogTimeout { limit: 3 });
    assert!(fast.to_string().contains('3'));
}

/// Duplication inflates delivery counts deterministically and both kernels
/// agree on the duplicated transcript (duplicates arrive adjacently).
#[test]
fn duplication_is_deterministic_and_conformant() {
    let g = grid(4, 4);
    let cfg = SimConfig {
        faults: FaultPlan::uniform(55, 0.0, 0.5, 0.0, 0),
        ..SimConfig::default()
    };
    let a = run(&g, programs(&g), &cfg).unwrap();
    let r = run_reference(&g, programs(&g), &cfg).unwrap();
    assert_eq!(a.programs, r.programs);
    assert_eq!(a.metrics, r.metrics);
    assert!(a.metrics.duplicated > 0);
    assert_eq!(a.metrics.dropped, 0);
}

/// Regression: `Metrics::crashed_nodes` counts nodes of *this graph* that
/// crashed, not plan entries. A plan is graph-agnostic and may name
/// vertices beyond the vertex range (e.g. one plan shared across substrate
/// sizes); those phantom victims must not inflate the counter. Pre-fix,
/// both kernels reported the plan-level count (1 here) instead of 0.
#[test]
fn out_of_range_crash_victims_are_not_counted() {
    let g = path(4);
    let mut plan = FaultPlan::uniform(9, 0.0, 0.0, 0.0, 0);
    plan.crashes.push((VertexId(999), 0)); // no such node on 4 vertices
    let cfg = SimConfig {
        faults: plan,
        ..SimConfig::default()
    };
    let fast = run(&g, programs(&g), &cfg).unwrap();
    let slow = run_reference(&g, programs(&g), &cfg).unwrap();
    assert_eq!(fast.metrics, slow.metrics);
    assert_eq!(fast.metrics.crashed_nodes, 0);

    // A mixed plan: one real victim, one phantom — exactly one counted.
    let mut plan = FaultPlan::uniform(9, 0.0, 0.0, 0.0, 0);
    plan.crashes.push((VertexId(2), 1));
    plan.crashes.push((VertexId(4), 0)); // first out-of-range id
    let cfg = SimConfig {
        faults: plan,
        ..SimConfig::default()
    };
    let fast = run(&g, programs(&g), &cfg).unwrap();
    let slow = run_reference(&g, programs(&g), &cfg).unwrap();
    assert_eq!(fast.metrics, slow.metrics);
    assert_eq!(fast.metrics.crashed_nodes, 1);
}
