//! Trace conformance suite: the two kernels must tell the *same story*,
//! not just reach the same final states.
//!
//! The determinism suite pins final program states and `Metrics`; these
//! tests pin the event streams. Both kernels emit per-round
//! [`TraceEvent`]s, and within a round the fast kernel groups work by
//! recipient in arc-index order while the reference kernel groups by
//! sorted recipient id — so the streams are compared as per-round
//! *multisets*: round boundaries (`RunStart`, `RoundStart`, `RoundEnd`,
//! `Watchdog`, `RunEnd`) must agree exactly and in order, and the events
//! between two boundaries must be equal up to reordering.
//!
//! Every run here also replays through [`TraceAuditor`], which recomputes
//! `Metrics` from the stream alone and diffs them against what the kernel
//! reported.

use congest_sim::reference::run_reference;
use congest_sim::{
    run, AuditSink, FaultPlan, LinkDown, MemorySink, NodeCtx, NodeProgram, SimConfig, SimError,
    SimOutcome, TraceEvent, TraceHandle, TraceSink,
};
use planar_graph::{Graph, VertexId};

/// Max-flood (same shape as the determinism suite): touches every edge
/// repeatedly and quiesces on its own.
#[derive(Clone, Debug, PartialEq, Eq)]
struct MaxFlood {
    best: u32,
}

impl NodeProgram for MaxFlood {
    type Msg = u32;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
        ctx.neighbors.iter().map(|&w| (w, self.best)).collect()
    }

    fn on_round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
        let incoming = inbox.iter().map(|&(_, v)| v).max().unwrap_or(0);
        if incoming > self.best {
            self.best = incoming;
            ctx.neighbors.iter().map(|&w| (w, self.best)).collect()
        } else {
            Vec::new()
        }
    }
}

fn flood_programs(g: &Graph) -> Vec<MaxFlood> {
    (0..g.vertex_count())
        .map(|i| MaxFlood {
            best: (i as u32 * 7) % 64,
        })
        .collect()
}

fn grid(rows: usize, cols: usize, diagonals: bool) -> Graph {
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
            if diagonals && r + 1 < rows && c + 1 < cols {
                edges.push((idx(r, c), idx(r + 1, c + 1)));
            }
        }
    }
    Graph::from_edges(rows * cols, edges).unwrap()
}

fn star(n: usize) -> Graph {
    Graph::from_edges(n, (1..n as u32).map(|i| (0, i))).unwrap()
}

fn path(n: usize) -> Graph {
    Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap()
}

fn workloads() -> Vec<(&'static str, Graph)> {
    vec![
        ("path32", path(32)),
        ("star17", star(17)),
        ("grid8x8", grid(8, 8, false)),
        ("trigrid6x6", grid(6, 6, true)),
    ]
}

/// The determinism suite's fault-plan bouquet.
fn fault_plans() -> Vec<(&'static str, FaultPlan)> {
    let drops = FaultPlan::uniform(11, 0.15, 0.0, 0.0, 0);
    let chaos = FaultPlan::uniform(12, 0.1, 0.1, 0.2, 3);
    let mut crashes = FaultPlan::default();
    crashes.crashes.push((VertexId(2), 3));
    crashes.crashes.push((VertexId(5), 0));
    let mut outage = FaultPlan::default();
    outage.link_down.push(LinkDown {
        from: VertexId(0),
        to: VertexId(1),
        start: 2,
        end: 5,
    });
    outage.link_down.push(LinkDown {
        from: VertexId(1),
        to: VertexId(0),
        start: 2,
        end: 5,
    });
    let mut everything = FaultPlan::uniform(13, 0.08, 0.05, 0.15, 2);
    everything.crashes.push((VertexId(3), 4));
    everything.link_down.push(LinkDown {
        from: VertexId(1),
        to: VertexId(2),
        start: 1,
        end: 3,
    });
    vec![
        ("drops", drops),
        ("chaos", chaos),
        ("crashes", crashes),
        ("outage", outage),
        ("everything", everything),
    ]
}

/// True for the events whose *position* in the stream is part of the
/// contract — everything between two boundaries may differ in order
/// across kernels (they group a round's work by recipient differently).
fn is_boundary(ev: &TraceEvent) -> bool {
    matches!(
        ev,
        TraceEvent::RunStart { .. }
            | TraceEvent::RoundStart { .. }
            | TraceEvent::RoundEnd { .. }
            | TraceEvent::Watchdog { .. }
            | TraceEvent::RunEnd { .. }
    )
}

/// Canonical form of a stream: boundary events stay put, each inter-
/// boundary span collapses to its sorted JSON lines.
fn normalize(events: &[TraceEvent]) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = Vec::new();
    let mut span: Vec<String> = Vec::new();
    for ev in events {
        if is_boundary(ev) {
            if !span.is_empty() {
                span.sort();
                out.push(std::mem::take(&mut span));
            }
            out.push(vec![congest_sim::trace::event_json(ev)]);
        } else {
            span.push(congest_sim::trace::event_json(ev));
        }
    }
    if !span.is_empty() {
        span.sort();
        out.push(span);
    }
    out
}

type Runner<P> = fn(&Graph, Vec<P>, &SimConfig) -> Result<SimOutcome<P>, SimError>;

fn capture<P: NodeProgram>(
    runner: Runner<P>,
    g: &Graph,
    programs: Vec<P>,
    cfg: &SimConfig,
) -> Vec<TraceEvent> {
    let sink = MemorySink::unbounded();
    let mut traced = cfg.clone();
    traced.trace = TraceHandle::to(sink.clone());
    runner(g, programs, &traced).expect("traced run completes");
    sink.events()
}

/// Tentpole conformance: fault-free, both kernels emit per-round-
/// equivalent event streams on every workload.
#[test]
fn kernels_emit_equivalent_streams_fault_free() {
    let cfg = SimConfig::default();
    for (name, g) in workloads() {
        let fast = capture(run, &g, flood_programs(&g), &cfg);
        let slow = capture(run_reference, &g, flood_programs(&g), &cfg);
        assert_eq!(
            normalize(&fast),
            normalize(&slow),
            "{name}: event streams diverge"
        );
        assert!(
            fast.iter().any(|e| matches!(e, TraceEvent::Send { .. })),
            "{name}: stream must contain sends"
        );
    }
}

/// Under every fault plan of the determinism bouquet, the streams still
/// agree as per-round multisets — drops, duplicates, delays, crashes and
/// link outages are narrated identically by both kernels.
#[test]
fn kernels_emit_equivalent_streams_under_faults() {
    for (plan_name, plan) in fault_plans() {
        let cfg = SimConfig {
            faults: plan,
            ..SimConfig::default()
        };
        for (name, g) in workloads() {
            let fast = capture(run, &g, flood_programs(&g), &cfg);
            let slow = capture(run_reference, &g, flood_programs(&g), &cfg);
            assert_eq!(
                normalize(&fast),
                normalize(&slow),
                "{name}/{plan_name}: event streams diverge"
            );
        }
    }
}

/// The auditor accepts both kernels on every workload × fault plan, and
/// its independently recomputed totals agree across kernels.
#[test]
fn auditor_accepts_both_kernels_across_the_fault_matrix() {
    let mut plans = fault_plans();
    plans.push(("fault-free", FaultPlan::default()));
    for (plan_name, plan) in plans {
        let cfg = SimConfig {
            faults: plan,
            ..SimConfig::default()
        };
        for (name, g) in workloads() {
            let label = format!("{name}/{plan_name}");
            let fast_audit = AuditSink::new();
            let mut fast_cfg = cfg.clone();
            fast_cfg.trace = TraceHandle::to(fast_audit.clone());
            run(&g, flood_programs(&g), &fast_cfg).expect("fast run completes");
            let slow_audit = AuditSink::new();
            let mut slow_cfg = cfg.clone();
            slow_cfg.trace = TraceHandle::to(slow_audit.clone());
            run_reference(&g, flood_programs(&g), &slow_cfg).expect("reference run completes");
            let fast_report = fast_audit.report();
            let slow_report = slow_audit.report();
            assert!(
                fast_report.mismatches.is_empty(),
                "{label}: fast kernel drifted: {:?}",
                fast_report.mismatches
            );
            assert!(
                slow_report.mismatches.is_empty(),
                "{label}: reference kernel drifted: {:?}",
                slow_report.mismatches
            );
            assert_eq!(fast_report.segments, 1, "{label}");
            assert_eq!(fast_report.aborted_segments, 0, "{label}");
            assert_eq!(
                fast_report.totals, slow_report.totals,
                "{label}: recomputed totals diverge"
            );
            assert_eq!(
                fast_report.profile.len(),
                fast_report.totals.rounds,
                "{label}: one profile row per delivering round"
            );
        }
    }
}

/// A watchdogged run is narrated as an aborted segment: the stream ends
/// with `Watchdog` instead of `RunEnd`, the auditor raises no mismatch
/// (there is nothing to diff), and the partial rounds are still profiled.
#[test]
fn watchdogged_runs_audit_as_aborted_segments() {
    let g = path(32);
    let cfg = SimConfig {
        watchdog: Some(5),
        ..SimConfig::default()
    };
    let runners: [(&str, Runner<MaxFlood>); 2] = [("fast", run), ("reference", run_reference)];
    for (name, runner) in runners {
        let sink = MemorySink::unbounded();
        let audit = AuditSink::new();
        let mut traced = cfg.clone();
        traced.trace = TraceHandle::to(sink.clone());
        let err = runner(&g, flood_programs(&g), &traced).unwrap_err();
        assert_eq!(err, SimError::WatchdogTimeout { limit: 5 }, "{name}");
        let events = sink.events();
        assert!(
            matches!(events.last(), Some(TraceEvent::Watchdog { limit: 5 })),
            "{name}: stream must end with the watchdog event"
        );
        for ev in &events {
            audit.record(ev);
        }
        let report = audit.report();
        assert!(report.mismatches.is_empty(), "{name}: {report:?}");
        assert_eq!(report.segments, 0, "{name}: no segment completed");
        assert_eq!(report.aborted_segments, 1, "{name}");
        assert_eq!(
            report.profile.len(),
            5,
            "{name}: the 5 delivered rounds are still profiled"
        );
    }
}
