//! Seeded smoke test of the generator registry's declared invariants.
//!
//! The DST scenario engine (`crates/dst`) draws its workloads from
//! [`gen::FAMILIES`] and *classifies run outcomes under the assumption*
//! that every generated graph is connected and planar (and outerplanar
//! where claimed): a generator that quietly emitted a disconnected or
//! non-planar instance would turn every downstream shadow-check violation
//! into noise. This suite pins the contract at the source, against the
//! centralized checks (`is_planar` via the DMP embedder, `is_outerplanar`),
//! across every family, several sizes, and several seeds.

use planar_lib::gen;
use planar_lib::{embed, is_outerplanar, is_planar};

/// Every registry family, at several small sizes and seeds: connected,
/// planar by the centralized check (with a planar rotation actually
/// constructible), outerplanar where declared, and within the requested
/// size's ballpark.
#[test]
fn every_family_satisfies_its_declared_invariants() {
    for fam in gen::FAMILIES {
        for req_n in [fam.min_n, 8, 17, 30] {
            let seeds: &[u64] = if fam.randomized {
                &[0, 1, 0xC0FFEE]
            } else {
                &[0]
            };
            for &seed in seeds {
                let g = (fam.build)(req_n, seed);
                let label = format!("{}/n={req_n}/seed={seed}", fam.name);

                assert!(
                    g.vertex_count() >= fam.min_n.min(2),
                    "{label}: built only {} vertices",
                    g.vertex_count()
                );
                assert!(g.is_connected(), "{label}: disconnected instance");
                assert!(is_planar(&g), "{label}: non-planar instance");
                let rotation = embed(&g).unwrap_or_else(|e| {
                    panic!("{label}: centralized embedder rejected the instance: {e}")
                });
                assert!(
                    rotation.is_planar_embedding(),
                    "{label}: embedding is not genus 0"
                );
                if fam.outerplanar {
                    assert!(is_outerplanar(&g), "{label}: outerplanarity claim violated");
                }
            }
        }
    }
}

/// Rigid families round the requested size to their nearest valid shape;
/// the rounding must stay within a factor of the request so the scenario
/// engine's size dimension keeps meaning something.
#[test]
fn built_sizes_track_requested_sizes() {
    for fam in gen::FAMILIES {
        for req_n in [12usize, 24, 48] {
            let g = (fam.build)(req_n, 3);
            let n = g.vertex_count();
            assert!(
                n >= req_n / 3 && n <= req_n * 2 + 4,
                "{}: requested {req_n}, built {n}",
                fam.name
            );
        }
    }
}

/// Randomized families must be deterministic in `(n, seed)` and actually
/// vary with the seed (at sizes with more than one possible instance);
/// deterministic families must ignore the seed entirely.
#[test]
fn seed_discipline_matches_the_randomized_flag() {
    for fam in gen::FAMILIES {
        let a = (fam.build)(20, 7);
        let b = (fam.build)(20, 7);
        assert_eq!(a, b, "{}: not deterministic in (n, seed)", fam.name);
        let c = (fam.build)(20, 8);
        if fam.randomized {
            assert_ne!(a, c, "{}: seed has no effect", fam.name);
        } else {
            assert_eq!(a, c, "{}: deterministic family consumed the seed", fam.name);
        }
    }
}

/// The registry is well-formed: unique stable names, resolvable by
/// `gen::family`.
#[test]
fn registry_names_are_unique_and_resolvable() {
    let mut seen = std::collections::HashSet::new();
    for fam in gen::FAMILIES {
        assert!(seen.insert(fam.name), "duplicate family {}", fam.name);
        let found = gen::family(fam.name).expect("registered family resolves");
        assert_eq!(found.name, fam.name);
    }
    assert!(gen::family("no-such-family").is_none());
    assert!(gen::FAMILIES.len() >= 15, "registry lost families");
}
