//! Property test for `graph::rotation` face traversal: the face walks of
//! any rotation system **partition the directed-arc set** — every arc
//! `(u, v)` appears in exactly one face, exactly once. This is the
//! combinatorial fact the certification layer's face-leader counters are
//! built on, so it is pinned here on the full generator suite, including
//! disconnected and multi-block (articulated) inputs.

use std::collections::HashMap;

use planar_graph::{Graph, RotationSystem, VertexId};
use planar_lib::{embed, gen};

/// Every generated instance the property is checked on: connected,
/// disconnected, biconnected, and articulated (multi-block) shapes.
fn instances() -> Vec<(String, Graph)> {
    let mut out: Vec<(String, Graph)> = vec![
        ("path_9".into(), gen::path(9)),
        ("cycle_12".into(), gen::cycle(12)),
        ("star_10".into(), gen::star(10)),
        ("grid_4x5".into(), gen::grid(4, 5)),
        ("tri_grid_4x4".into(), gen::triangulated_grid(4, 4)),
        ("wheel_11".into(), gen::wheel(11)),
        ("fan_12".into(), gen::fan(12)),
        ("theta_3x4".into(), gen::theta(3, 4)),
        // Multi-block: wheels chained through articulation vertices.
        ("wheel_chain_4x5".into(), gen::wheel_chain(4, 5)),
        ("k4_subdivided_3".into(), gen::k4_subdivided(3)),
    ];
    for seed in 0..4u64 {
        out.push((format!("random_tree_s{seed}"), gen::random_tree(20, seed)));
        out.push((
            format!("random_outerplanar_s{seed}"),
            gen::random_outerplanar(18, seed),
        ));
        out.push((
            format!("random_planar_s{seed}"),
            gen::random_planar(22, 40, seed),
        ));
        out.push((
            format!("random_maximal_planar_s{seed}"),
            gen::random_maximal_planar(16, seed),
        ));
    }
    // Disconnected: unions of generated components, plus isolated
    // vertices (which contribute no arcs and no faces).
    let grid = gen::grid(3, 3);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for u in grid.vertices() {
        for &w in grid.neighbors(u) {
            if u < w {
                edges.push((u.0, w.0));
            }
        }
    }
    edges.extend([(10, 11), (11, 12), (12, 10)]); // triangle; 9 isolated
    out.push((
        "disconnected_grid_triangle_isolated".into(),
        Graph::from_edges(14, edges).unwrap(),
    ));
    out
}

/// The property: the multiset of arcs covered by `faces()` equals the
/// directed-arc set of the graph, each arc exactly once.
fn assert_faces_partition_arcs(name: &str, g: &Graph, rot: &RotationSystem) {
    let mut seen: HashMap<(VertexId, VertexId), usize> = HashMap::new();
    let mut covered = 0usize;
    for face in rot.faces() {
        assert!(!face.is_empty(), "{name}: empty face walk");
        for &(u, v) in &face {
            assert!(
                g.neighbors(u).contains(&v),
                "{name}: face walk uses non-arc ({u:?},{v:?})"
            );
            *seen.entry((u, v)).or_insert(0) += 1;
            covered += 1;
        }
    }
    let total_arcs: usize = g.vertices().map(|v| g.neighbors(v).len()).sum();
    assert_eq!(
        covered, total_arcs,
        "{name}: face walks covered {covered} arc slots, graph has {total_arcs}"
    );
    for ((u, v), count) in &seen {
        assert_eq!(
            *count, 1,
            "{name}: arc ({u:?},{v:?}) appears in face walks {count} times"
        );
    }
    // Exactly-once coverage of the right total means every arc occurred.
    assert_eq!(seen.len(), total_arcs, "{name}: some arc never covered");
}

#[test]
fn face_walks_partition_arcs_for_computed_embeddings() {
    for (name, g) in instances() {
        let rot = embed(&g).expect("suite graphs are planar");
        assert!(rot.is_planar_embedding(), "{name}");
        assert_faces_partition_arcs(&name, &g, &rot);
    }
}

#[test]
fn face_walks_partition_arcs_for_arbitrary_rotations() {
    // The partition property is about rotation systems, not planarity:
    // it must hold for *any* permutation data, planar or not (e.g. the
    // sorted-default rotation of K4 and K5, which have positive genus).
    for (name, g) in [
        ("k4".to_string(), gen::complete(4)),
        ("k5".to_string(), gen::complete(5)),
        ("grid_3x4_sorted".to_string(), gen::grid(3, 4)),
        (
            "disconnected_sorted".to_string(),
            Graph::from_edges(7, [(0, 1), (1, 2), (2, 0), (4, 5), (5, 6)]).unwrap(),
        ),
    ] {
        let rot = RotationSystem::sorted_default(&g);
        assert_faces_partition_arcs(&name, &g, &rot);
    }
    // Mirrored embeddings keep the property too.
    let g = gen::wheel(8);
    let rot = embed(&g).unwrap().mirrored();
    assert_faces_partition_arcs("wheel_8_mirrored", &g, &rot);
}

#[test]
fn euler_holds_per_component_on_the_suite() {
    // Companion check tying the partition to the certification layer's
    // Euler counters: for planar embeddings of connected graphs,
    // f = m - n + 2; for c components (isolated vertices have no faces),
    // total faces = m - n + c + (number of non-trivial components).
    for (name, g) in instances() {
        let rot = embed(&g).expect("suite graphs are planar");
        let faces = rot.faces().len();
        let n_nontrivial = g.vertices().filter(|&v| !g.neighbors(v).is_empty()).count();
        let isolated = g.vertex_count() - n_nontrivial;
        let m: usize = g.vertices().map(|v| g.neighbors(v).len()).sum::<usize>() / 2;
        // Count components among non-trivial vertices via union-find-ish
        // BFS on the fly.
        let mut comp = vec![usize::MAX; g.vertex_count()];
        let mut ncomp = 0usize;
        for v in g.vertices() {
            if comp[v.index()] != usize::MAX || g.neighbors(v).is_empty() {
                continue;
            }
            let mut stack = vec![v];
            comp[v.index()] = ncomp;
            while let Some(u) = stack.pop() {
                for &w in g.neighbors(u) {
                    if comp[w.index()] == usize::MAX {
                        comp[w.index()] = ncomp;
                        stack.push(w);
                    }
                }
            }
            ncomp += 1;
        }
        assert_eq!(
            faces as i64,
            m as i64 - n_nontrivial as i64 + 2 * ncomp as i64,
            "{name}: Euler per component failed (m={m}, n={n_nontrivial}, c={ncomp}, isolated={isolated})"
        );
    }
}
