use std::error::Error;
use std::fmt;

use planar_graph::GraphError;

/// Errors produced by planarity testing and embedding.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanarityError {
    /// The input graph is not planar; embedding is impossible.
    ///
    /// Carries the number of edges already embedded when the obstruction was
    /// found (useful for diagnostics).
    NonPlanar {
        /// Edges successfully embedded before the obstruction.
        embedded_edges: usize,
    },
    /// The input graph exceeds the planar edge bound `m <= 3n - 6`, detected
    /// before any embedding work.
    TooManyEdges {
        /// Number of vertices.
        n: usize,
        /// Number of edges.
        m: usize,
    },
    /// A constraint set (e.g. pinned outer-face vertices) cannot be satisfied
    /// even though the graph itself is planar.
    UnsatisfiableConstraint {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// An underlying graph-structure error.
    Graph(GraphError),
}

impl fmt::Display for PlanarityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanarityError::NonPlanar { embedded_edges } => {
                write!(
                    f,
                    "graph is not planar (obstruction after embedding {embedded_edges} edges)"
                )
            }
            PlanarityError::TooManyEdges { n, m } => {
                write!(
                    f,
                    "graph has {m} edges but planar graphs on {n} vertices have at most {}",
                    3 * (*n).max(3) - 6
                )
            }
            PlanarityError::UnsatisfiableConstraint { reason } => {
                write!(f, "embedding constraint cannot be satisfied: {reason}")
            }
            PlanarityError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for PlanarityError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlanarityError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<GraphError> for PlanarityError {
    fn from(e: GraphError) -> Self {
        PlanarityError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PlanarityError::NonPlanar { embedded_edges: 5 };
        assert!(e.to_string().contains("not planar"));
        let e = PlanarityError::TooManyEdges { n: 5, m: 10 };
        assert!(e.to_string().contains("at most 9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlanarityError>();
    }
}
