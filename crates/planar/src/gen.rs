//! Planar graph generators: the workload families used by the experiment
//! suite (DESIGN.md, Section 4).
//!
//! All generators are deterministic given their seed, produce connected
//! simple graphs, and are planar by construction (verified by property tests
//! against the DMP embedder).

use planar_graph::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A path on `n >= 1` vertices.
pub fn path(n: usize) -> Graph {
    Graph::from_edges(n, (0..n.saturating_sub(1) as u32).map(|i| (i, i + 1)))
        .expect("path edges are valid")
}

/// A cycle on `n >= 3` vertices.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    Graph::from_edges(n, (0..n as u32).map(|i| (i, (i + 1) % n as u32)))
        .expect("cycle edges are valid")
}

/// A star with one hub and `n - 1` leaves (`n >= 1`).
pub fn star(n: usize) -> Graph {
    Graph::from_edges(n, (1..n as u32).map(|i| (0, i))).expect("star edges are valid")
}

/// The complete graph `K_n` (non-planar for `n >= 5`; used in negative tests).
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, edges).expect("complete graph edges are valid")
}

/// The `rows x cols` grid graph (`rows, cols >= 1`).
///
/// Diameter is `rows + cols - 2`; the work-horse family for the scaling
/// experiments (T1, T2).
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1);
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
        }
    }
    Graph::from_edges(rows * cols, edges).expect("grid edges are valid")
}

/// The grid with one diagonal added in every cell (a triangulated grid),
/// still planar but denser and biconnected.
pub fn triangulated_grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1);
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
            if r + 1 < rows && c + 1 < cols {
                edges.push((idx(r, c), idx(r + 1, c + 1)));
            }
        }
    }
    Graph::from_edges(rows * cols, edges).expect("triangulated grid edges are valid")
}

/// The fan: a path `1..n-1` plus a hub `0` adjacent to every path vertex.
/// Outerplanar with diameter 2.
pub fn fan(n: usize) -> Graph {
    assert!(n >= 2);
    let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (0, i)).collect();
    edges.extend((1..n as u32 - 1).map(|i| (i, i + 1)));
    Graph::from_edges(n, edges).expect("fan edges are valid")
}

/// The wheel: a cycle `1..n-1` plus a hub `0` adjacent to every cycle vertex.
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4);
    let k = (n - 1) as u32;
    let mut edges: Vec<(u32, u32)> = (1..=k).map(|i| (0, i)).collect();
    edges.extend((1..=k).map(|i| (i, if i == k { 1 } else { i + 1 })));
    Graph::from_edges(n, edges).expect("wheel edges are valid")
}

/// The paper's `Omega(D)` lower-bound instance (footnote 1): `K_4` with
/// every edge replaced by a path of `len` edges.
///
/// Has `4 + 6·(len - 1)` vertices and diameter `Theta(len)`. Any planar
/// embedding forces the four degree-3 vertices, pairwise `len` hops apart, to
/// output consistent cyclic orders.
pub fn k4_subdivided(len: usize) -> Graph {
    assert!(len >= 1);
    let k4_edges = [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
    let mut next = 4u32;
    let mut edges = Vec::new();
    for (u, v) in k4_edges {
        let mut prev = u;
        for _ in 0..len - 1 {
            edges.push((prev, next));
            prev = next;
            next += 1;
        }
        edges.push((prev, v));
    }
    Graph::from_edges(next as usize, edges).expect("subdivision edges are valid")
}

/// The theta graph: two hubs joined by `k >= 2` internally disjoint paths of
/// `len >= 2` edges each. Biconnected with diameter `~len`.
pub fn theta(k: usize, len: usize) -> Graph {
    assert!(k >= 2 && len >= 2);
    let mut next = 2u32;
    let mut edges = Vec::new();
    for _ in 0..k {
        let mut prev = 0u32;
        for _ in 0..len - 1 {
            edges.push((prev, next));
            prev = next;
            next += 1;
        }
        edges.push((prev, 1));
    }
    Graph::from_edges(next as usize, edges).expect("theta edges are valid")
}

/// A uniformly random labelled tree on `n` vertices (random Prüfer-like
/// attachment: vertex `i` attaches to a uniform earlier vertex).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for i in 1..n as u32 {
        let p = rng.gen_range(0..i);
        edges.push((p, i));
    }
    Graph::from_edges(n, edges).expect("tree edges are valid")
}

/// A random *stacked triangulation* (Apollonian-style maximal planar graph):
/// start from a triangle and repeatedly insert a new vertex into a uniformly
/// random triangular face, connecting it to the face's three corners.
///
/// Always maximal planar (`m = 3n - 6`), 3-connected for `n >= 4`.
pub fn random_maximal_planar(n: usize, seed: u64) -> Graph {
    assert!(n >= 3, "maximal planar graphs need at least 3 vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = vec![(0u32, 1u32), (1, 2), (0, 2)];
    // Faces as vertex triples; both sides of the initial triangle.
    let mut faces = vec![[0u32, 1, 2], [0, 2, 1]];
    for v in 3..n as u32 {
        let fi = rng.gen_range(0..faces.len());
        let [a, b, c] = faces.swap_remove(fi);
        edges.push((a.min(v), a.max(v)));
        edges.push((b.min(v), b.max(v)));
        edges.push((c.min(v), c.max(v)));
        faces.push([a, b, v]);
        faces.push([b, c, v]);
        faces.push([c, a, v]);
    }
    Graph::from_edges(n, edges).expect("stacked triangulation edges are valid")
}

/// A random connected planar graph on `n` vertices with approximately `m`
/// edges: a random stacked triangulation thinned by deleting random
/// non-bridge edges until `m` edges remain (never disconnecting).
pub fn random_planar(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 3);
    let m = m.clamp(n - 1, 3 * n - 6);
    let full = random_maximal_planar(n, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    // Protect one spanning tree so the graph stays connected.
    let tree = planar_graph::traversal::bfs(&full, VertexId(0));
    let mut removable: Vec<(u32, u32)> = full
        .edges()
        .filter(|e| {
            tree.parent[e.lo().index()] != Some(e.hi())
                && tree.parent[e.hi().index()] != Some(e.lo())
        })
        .map(|e| (e.lo().0, e.hi().0))
        .collect();
    // Fisher-Yates shuffle.
    for i in (1..removable.len()).rev() {
        let j = rng.gen_range(0..=i);
        removable.swap(i, j);
    }
    let to_remove = full.edge_count().saturating_sub(m).min(removable.len());
    let removed: std::collections::HashSet<(u32, u32)> =
        removable.into_iter().take(to_remove).collect();
    let edges = full
        .edges()
        .map(|e| (e.lo().0, e.hi().0))
        .filter(|e| !removed.contains(e));
    Graph::from_edges(n, edges).expect("thinned edges are valid")
}

/// A random maximal outerplanar graph: a cycle `0..n` plus a full set of
/// non-crossing chords from a random triangulation of the polygon.
pub fn random_outerplanar(n: usize, seed: u64) -> Graph {
    assert!(n >= 3);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = cycle(n);
    // Random polygon triangulation by recursive splitting.
    let mut stack = vec![(0u32, n as u32 - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi - lo < 2 {
            continue;
        }
        // Split the sub-polygon lo..hi with triangle (lo, mid, hi).
        let mid = rng.gen_range(lo + 1..hi);
        if mid != lo + 1 && !g.has_edge(VertexId(lo), VertexId(mid)) {
            g.add_edge(VertexId(lo), VertexId(mid))
                .expect("non-crossing chord");
        }
        if hi != mid + 1 && !g.has_edge(VertexId(mid), VertexId(hi)) {
            g.add_edge(VertexId(mid), VertexId(hi))
                .expect("non-crossing chord");
        }
        stack.push((lo, mid));
        stack.push((mid, hi));
    }
    g
}

/// A sparse random outerplanar graph: cycle plus `chords` random
/// non-crossing chords (rejection-sampled).
pub fn sparse_outerplanar(n: usize, chords: usize, seed: u64) -> Graph {
    assert!(n >= 4);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = cycle(n);
    let mut placed: Vec<(u32, u32)> = Vec::new();
    let crosses = |(a, b): (u32, u32), (c, d): (u32, u32)| {
        (a < c && c < b && b < d) || (c < a && a < d && d < b)
    };
    let mut attempts = 0;
    while placed.len() < chords && attempts < 50 * chords.max(1) {
        attempts += 1;
        let mut a = rng.gen_range(0..n as u32);
        let mut b = rng.gen_range(0..n as u32);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        if b - a < 2 || (a == 0 && b == n as u32 - 1) {
            continue; // cycle edge or self
        }
        if g.has_edge(VertexId(a), VertexId(b)) {
            continue;
        }
        if placed.iter().any(|&p| crosses((a, b), p)) {
            continue;
        }
        g.add_edge(VertexId(a), VertexId(b))
            .expect("validated chord");
        placed.push((a, b));
    }
    g
}

/// A "caterpillar of blocks": a path of `k` wheels of size `w`, consecutive
/// wheels joined at a shared cut vertex. Exercises block-cut structure with
/// controllable diameter.
pub fn wheel_chain(k: usize, w: usize) -> Graph {
    assert!(k >= 1 && w >= 4);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut n = 0u32;
    let mut prev_anchor: Option<u32> = None;
    for _ in 0..k {
        // Wheel on vertices n..n+w with hub n; reuse prev_anchor as hub rim
        // connection by linking with an edge.
        let hub = n;
        let ring = (w - 1) as u32;
        for i in 1..=ring {
            edges.push((hub, hub + i));
            edges.push((hub + i, if i == ring { hub + 1 } else { hub + i + 1 }));
        }
        if let Some(p) = prev_anchor {
            edges.push((p, hub));
        }
        prev_anchor = Some(hub + 1);
        n += w as u32;
    }
    Graph::from_edges(n as usize, edges).expect("wheel chain edges are valid")
}

/// One generator family as the DST scenario engine consumes it: a name, a
/// declared invariant set, and a uniform `(n, seed)` constructor that maps
/// any requested size onto the family's nearest valid instance.
///
/// Every family in [`registry`] declares — and the seeded smoke test
/// `tests/gen_invariants.rs` verifies against the centralized checks — that
/// its graphs are **connected** and **planar**; families with
/// [`Family::outerplanar`] set are additionally outerplanar. Downstream
/// harnesses (the DST swarm in `crates/dst`) lean on those invariants to
/// classify run outcomes, so a generator regression would masquerade as an
/// algorithm bug; the smoke test pins the contract at the source.
#[derive(Clone, Copy)]
pub struct Family {
    /// Stable family name (used in artifacts and seeds).
    pub name: &'static str,
    /// The smallest vertex count the constructor accepts; `build` clamps
    /// smaller requests up to it.
    pub min_n: usize,
    /// Whether every instance is outerplanar (checked, not aspirational).
    pub outerplanar: bool,
    /// Whether the constructor consumes the seed (deterministic families
    /// ignore it; their instances depend on `n` alone).
    pub randomized: bool,
    /// Builds an instance with *approximately* `n` vertices (families with
    /// rigid shapes — grids, subdivisions, chains — round to the nearest
    /// valid size; the caller reads the actual count off the graph).
    pub build: fn(n: usize, seed: u64) -> Graph,
}

impl std::fmt::Debug for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Family")
            .field("name", &self.name)
            .field("min_n", &self.min_n)
            .field("outerplanar", &self.outerplanar)
            .field("randomized", &self.randomized)
            .finish()
    }
}

/// The generator registry: every family above, uniformly constructible.
///
/// Order is stable (artifacts and scenario seeds index into it); append
/// new families at the end.
pub const FAMILIES: &[Family] = &[
    Family {
        name: "path",
        min_n: 2,
        outerplanar: true,
        randomized: false,
        build: |n, _| path(n.max(2)),
    },
    Family {
        name: "cycle",
        min_n: 3,
        outerplanar: true,
        randomized: false,
        build: |n, _| cycle(n.max(3)),
    },
    Family {
        name: "star",
        min_n: 2,
        outerplanar: true,
        randomized: false,
        build: |n, _| star(n.max(2)),
    },
    Family {
        name: "grid",
        min_n: 4,
        outerplanar: false,
        randomized: false,
        build: |n, _| {
            let side = (n.max(4) as f64).sqrt().round().max(2.0) as usize;
            grid(side, side)
        },
    },
    Family {
        name: "tri-grid",
        min_n: 4,
        outerplanar: false,
        randomized: false,
        build: |n, _| {
            let side = (n.max(4) as f64).sqrt().round().max(2.0) as usize;
            triangulated_grid(side, side)
        },
    },
    Family {
        name: "fan",
        min_n: 2,
        outerplanar: true,
        randomized: false,
        build: |n, _| fan(n.max(2)),
    },
    Family {
        name: "wheel",
        min_n: 4,
        outerplanar: false,
        randomized: false,
        build: |n, _| wheel(n.max(4)),
    },
    Family {
        name: "theta",
        min_n: 5,
        outerplanar: false,
        randomized: false,
        build: |n, _| theta(3, (n.max(5) / 3).max(2)),
    },
    Family {
        name: "k4-subdivided",
        min_n: 4,
        outerplanar: false,
        randomized: false,
        build: |n, _| k4_subdivided(n.saturating_sub(4) / 6 + 1),
    },
    Family {
        name: "wheel-chain",
        min_n: 5,
        outerplanar: false,
        randomized: false,
        build: |n, _| wheel_chain((n.max(5) / 5).max(1), 5),
    },
    Family {
        name: "random-tree",
        min_n: 2,
        outerplanar: true,
        randomized: true,
        build: |n, seed| random_tree(n.max(2), seed),
    },
    Family {
        name: "random-maximal-planar",
        min_n: 3,
        outerplanar: false,
        randomized: true,
        build: |n, seed| random_maximal_planar(n.max(3), seed),
    },
    Family {
        name: "random-planar",
        min_n: 3,
        outerplanar: false,
        randomized: true,
        build: |n, seed| {
            let n = n.max(3);
            random_planar(n, n + n / 2, seed)
        },
    },
    Family {
        name: "random-outerplanar",
        min_n: 3,
        outerplanar: true,
        randomized: true,
        build: |n, seed| random_outerplanar(n.max(3), seed),
    },
    Family {
        name: "sparse-outerplanar",
        min_n: 4,
        outerplanar: true,
        randomized: true,
        build: |n, seed| sparse_outerplanar(n.max(4), n / 3, seed),
    },
];

/// Looks a family up by name.
pub fn family(name: &str) -> Option<&'static Family> {
    FAMILIES.iter().find(|f| f.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{embed, is_outerplanar, is_planar};
    use planar_graph::traversal::diameter_exact;

    #[test]
    fn basic_families_are_planar() {
        for g in [
            path(10),
            cycle(10),
            star(10),
            grid(4, 6),
            triangulated_grid(4, 4),
            fan(8),
            wheel(8),
            theta(4, 5),
            k4_subdivided(5),
            wheel_chain(3, 5),
        ] {
            assert!(g.is_connected(), "generator must produce connected graphs");
            let rs = embed(&g).expect("generator families are planar");
            assert!(rs.is_planar_embedding());
        }
    }

    #[test]
    fn complete_graphs_nonplanar_from_5() {
        assert!(is_planar(&complete(4)));
        assert!(!is_planar(&complete(5)));
        assert!(!is_planar(&complete(6)));
    }

    #[test]
    fn grid_dimensions() {
        let g = grid(3, 5);
        assert_eq!(g.vertex_count(), 15);
        assert_eq!(g.edge_count(), 3 * 4 + 2 * 5);
        assert_eq!(diameter_exact(&g), Some(6));
    }

    #[test]
    fn k4_subdivided_structure() {
        let l = 7;
        let g = k4_subdivided(l);
        assert_eq!(g.vertex_count(), 4 + 6 * (l - 1));
        assert_eq!(g.edge_count(), 6 * l);
        for v in 0..4u32 {
            assert_eq!(g.degree(VertexId(v)), 3);
        }
        let d = diameter_exact(&g).unwrap() as usize;
        assert!(d >= l && d <= 2 * l);
    }

    #[test]
    fn maximal_planar_edge_count() {
        for n in [3usize, 4, 10, 50] {
            let g = random_maximal_planar(n, 42);
            assert_eq!(g.edge_count(), 3 * n - 6);
            assert!(is_planar(&g), "n = {n}");
        }
    }

    #[test]
    fn random_planar_hits_target_edges() {
        let g = random_planar(50, 80, 7);
        assert_eq!(g.edge_count(), 80);
        assert!(g.is_connected());
        assert!(is_planar(&g));
    }

    #[test]
    fn random_planar_tree_extreme() {
        let g = random_planar(30, 29, 3);
        assert_eq!(g.edge_count(), 29);
        assert!(g.is_connected());
    }

    #[test]
    fn outerplanar_generators_are_outerplanar() {
        for seed in 0..5 {
            let g = random_outerplanar(12, seed);
            assert!(is_outerplanar(&g), "seed {seed}");
            let s = sparse_outerplanar(15, 5, seed);
            assert!(is_outerplanar(&s), "seed {seed}");
        }
    }

    #[test]
    fn random_maximal_outerplanar_is_triangulation() {
        // A triangulated polygon has 2n - 3 edges.
        let n = 20;
        let g = random_outerplanar(n, 11);
        assert_eq!(g.edge_count(), 2 * n - 3);
    }

    #[test]
    fn random_tree_is_tree() {
        let g = random_tree(40, 5);
        assert_eq!(g.edge_count(), 39);
        assert!(g.is_connected());
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_maximal_planar(30, 9), random_maximal_planar(30, 9));
        assert_eq!(random_tree(30, 9), random_tree(30, 9));
        assert_eq!(random_outerplanar(30, 9), random_outerplanar(30, 9));
    }

    #[test]
    fn theta_diameter_scales_with_len() {
        let g = theta(3, 10);
        let d = diameter_exact(&g).unwrap();
        assert!((10..=20).contains(&d));
    }
}
