//! Outerplanarity testing and outerplanar embeddings.
//!
//! Outerplanar graphs (all vertices on one face) play a special role in the
//! paper: the inter-part graph `G_P \ P_0` that the symmetry-breaking
//! algorithm of Lemma 5.3 runs on is always outerplanar, because every part
//! hangs off the coordinator path `P_0`.

use planar_graph::{Graph, VertexId};

use crate::{embed_pinned, PinnedEmbedding, PlanarityError};

/// An outerplanar embedding: a planar rotation system with every vertex on a
/// single common ("outer") face, plus the cyclic order of the vertices along
/// that face.
#[derive(Clone, Debug)]
pub struct OuterplanarEmbedding {
    /// The underlying planar embedding.
    pub embedding: PinnedEmbedding,
}

impl OuterplanarEmbedding {
    /// The cyclic order in which vertices appear on the outer face.
    pub fn boundary_order(&self) -> &[VertexId] {
        &self.embedding.pin_order
    }
}

/// Tests whether `g` is outerplanar.
///
/// # Example
///
/// ```
/// use planar_graph::Graph;
/// use planar_lib::is_outerplanar;
///
/// # fn main() -> Result<(), planar_lib::PlanarityError> {
/// // A cycle with one chord is outerplanar; K4 is planar but not outerplanar.
/// let c = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])?;
/// assert!(is_outerplanar(&c));
/// let k4 = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])?;
/// assert!(!is_outerplanar(&k4));
/// # Ok(())
/// # }
/// ```
pub fn is_outerplanar(g: &Graph) -> bool {
    embed_outerplanar(g).is_ok()
}

/// Computes an outerplanar embedding of `g` (all vertices on one face).
///
/// # Errors
///
/// Returns an error if `g` is not outerplanar: either
/// [`PlanarityError::NonPlanar`] (not even planar) or
/// [`PlanarityError::UnsatisfiableConstraint`] (planar, but some vertex
/// cannot reach the outer face).
pub fn embed_outerplanar(g: &Graph) -> Result<OuterplanarEmbedding, PlanarityError> {
    // Outerplanar graphs have m <= 2n - 3 edges; cheap early exit.
    let n = g.vertex_count();
    if n >= 2 && g.edge_count() > 2 * n - 3 {
        return Err(PlanarityError::UnsatisfiableConstraint {
            reason: format!(
                "{} edges exceed the outerplanar bound {}",
                g.edge_count(),
                2 * n - 3
            ),
        });
    }
    let pins: Vec<VertexId> = g.vertices().collect();
    let embedding = embed_pinned(g, &pins)?;
    Ok(OuterplanarEmbedding { embedding })
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_graph::cyclic::cyclic_eq_reflect;

    #[test]
    fn cycle_is_outerplanar_with_cycle_boundary() {
        let n = 6u32;
        let g = Graph::from_edges(n as usize, (0..n).map(|i| (i, (i + 1) % n))).unwrap();
        let oe = embed_outerplanar(&g).unwrap();
        let expected: Vec<VertexId> = (0..n).map(VertexId).collect();
        assert!(cyclic_eq_reflect(oe.boundary_order(), &expected));
    }

    #[test]
    fn fan_is_outerplanar() {
        // Fan: path 1-2-3-4 plus hub 0 adjacent to all.
        let g =
            Graph::from_edges(5, [(1, 2), (2, 3), (3, 4), (0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert!(is_outerplanar(&g));
    }

    #[test]
    fn k4_not_outerplanar() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        assert!(!is_outerplanar(&g));
    }

    #[test]
    fn k23_not_outerplanar() {
        // K2,3 is the other outerplanarity obstruction.
        let g = Graph::from_edges(5, [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]).unwrap();
        assert!(is_planar_helper(&g));
        assert!(!is_outerplanar(&g));
    }

    fn is_planar_helper(g: &Graph) -> bool {
        crate::is_planar(g)
    }

    #[test]
    fn trees_and_forests_are_outerplanar() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (1, 3), (4, 5)]).unwrap();
        let oe = embed_outerplanar(&g).unwrap();
        assert_eq!(oe.boundary_order().len(), 6);
    }

    #[test]
    fn edge_bound_early_exit() {
        // Dense planar graph: octahedron has 12 > 2*6-3 = 9 edges.
        let g = Graph::from_edges(
            6,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (5, 1),
                (5, 2),
                (5, 3),
                (5, 4),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 1),
            ],
        )
        .unwrap();
        assert!(matches!(
            embed_outerplanar(&g),
            Err(PlanarityError::UnsatisfiableConstraint { .. })
        ));
    }
}
