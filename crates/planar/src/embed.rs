//! Whole-graph planarity testing and embedding, built on the DMP block
//! embedder, plus constrained ("pinned outer face") embedding.

use std::collections::HashMap;

use planar_graph::biconnected::BiconnectedDecomposition;
use planar_graph::{Graph, RotationSystem, VertexId};

use crate::dmp::embed_biconnected;
use crate::PlanarityError;

/// Computes a combinatorial planar embedding of `g` (any simple graph,
/// connected or not).
///
/// The graph is decomposed into biconnected blocks; each block is embedded by
/// DMP and the blocks are composed at cut vertices (any arrangement of blocks
/// around a cut vertex is planar — the freedom Figure 3 of the paper
/// describes).
///
/// # Errors
///
/// Returns [`PlanarityError::TooManyEdges`] or [`PlanarityError::NonPlanar`]
/// when `g` is not planar.
///
/// # Example
///
/// ```
/// use planar_graph::Graph;
/// use planar_lib::embed;
///
/// # fn main() -> Result<(), planar_lib::PlanarityError> {
/// let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])?;
/// let rs = embed(&g)?;
/// assert!(rs.is_planar_embedding());
/// # Ok(())
/// # }
/// ```
pub fn embed(g: &Graph) -> Result<RotationSystem, PlanarityError> {
    let n = g.vertex_count();
    let m = g.edge_count();
    if n >= 3 && m > 3 * n - 6 {
        return Err(PlanarityError::TooManyEdges { n, m });
    }
    let bc = BiconnectedDecomposition::compute(g);
    let mut rot: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for b in 0..bc.block_count() {
        let verts = bc.block_vertices(b);
        let index: HashMap<VertexId, u32> = verts
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let mut sub = Graph::new(verts.len());
        for &e in bc.block_edges(b) {
            sub.add_edge(VertexId(index[&e.lo()]), VertexId(index[&e.hi()]))
                .expect("block edges are unique");
        }
        let sub_rot = embed_biconnected(&sub)?;
        for (local, order) in sub_rot.into_iter().enumerate() {
            let global = verts[local];
            rot[global.index()].extend(order.into_iter().map(|w| verts[w.index()]));
        }
    }
    Ok(RotationSystem::new(g, rot).expect("block composition yields valid rotations"))
}

/// Returns `true` if `g` is planar.
pub fn is_planar(g: &Graph) -> bool {
    embed(g).is_ok()
}

/// A planar embedding together with the cyclic order in which a set of
/// pinned vertices appears on one common face.
#[derive(Clone, Debug)]
pub struct PinnedEmbedding {
    /// The embedding of the (un-augmented) input graph.
    pub rotation: RotationSystem,
    /// The pinned vertices in the cyclic order they appear around the
    /// common face. Contains each pinned vertex exactly once.
    pub pin_order: Vec<VertexId>,
}

/// Embeds `g` such that all `pins` lie on one common face.
///
/// This is the primitive the distributed merge solver relies on: a part's
/// half-embedded edges must all reach the outer face (the consequence of the
/// safety property, Definition 3.1). Implemented by the classical apex
/// trick: add a virtual vertex adjacent to every pin, embed, then delete it —
/// the faces around the apex merge into a single face containing all pins.
///
/// # Errors
///
/// * [`PlanarityError::NonPlanar`] / [`PlanarityError::TooManyEdges`] if `g`
///   itself is not planar;
/// * [`PlanarityError::UnsatisfiableConstraint`] if `g` is planar but no
///   planar embedding has all pins on one face.
///
/// # Example
///
/// ```
/// use planar_graph::{Graph, VertexId};
/// use planar_lib::embed_pinned;
///
/// # fn main() -> Result<(), planar_lib::PlanarityError> {
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// let pinned = embed_pinned(&g, &[VertexId(0), VertexId(2)])?;
/// assert!(pinned.rotation.is_planar_embedding());
/// assert_eq!(pinned.pin_order.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn embed_pinned(g: &Graph, pins: &[VertexId]) -> Result<PinnedEmbedding, PlanarityError> {
    let n = g.vertex_count();
    let mut unique_pins: Vec<VertexId> = pins.to_vec();
    unique_pins.sort();
    unique_pins.dedup();
    for &p in &unique_pins {
        g.check_vertex(p)?;
    }
    if unique_pins.is_empty() {
        let rotation = embed(g)?;
        return Ok(PinnedEmbedding {
            rotation,
            pin_order: Vec::new(),
        });
    }
    // Augment with an apex vertex adjacent to every pin.
    let apex = VertexId::from_index(n);
    let mut aug = Graph::new(n + 1);
    for e in g.edges() {
        aug.add_edge(e.lo(), e.hi())
            .expect("copying a simple graph");
    }
    for &p in &unique_pins {
        aug.add_edge(apex, p).expect("apex edges are new");
    }
    let aug_rot = match embed(&aug) {
        Ok(r) => r,
        Err(_) => {
            return if is_planar(g) {
                Err(PlanarityError::UnsatisfiableConstraint {
                    reason: format!(
                        "no planar embedding of the graph has all {} pinned vertices on one face",
                        unique_pins.len()
                    ),
                })
            } else {
                Err(PlanarityError::NonPlanar { embedded_edges: 0 })
            };
        }
    };
    // The cyclic order of pins on the merged face is the rotation around the
    // apex, reversed (looking at the face from the other side of the deleted
    // vertex).
    let mut pin_order: Vec<VertexId> = aug_rot.order_at(apex).to_vec();
    pin_order.reverse();
    // Delete the apex from all rotations.
    let mut orders = aug_rot.into_orders();
    orders.pop();
    for order in &mut orders {
        order.retain(|&w| w != apex);
    }
    let rotation = RotationSystem::new(g, orders).expect("removing the apex preserves validity");
    debug_assert!(rotation.is_planar_embedding());
    Ok(PinnedEmbedding {
        rotation,
        pin_order,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_graph::cyclic::cyclic_eq_reflect;

    #[test]
    fn embeds_tree() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 3), (1, 4)]).unwrap();
        let rs = embed(&g).unwrap();
        assert!(rs.is_planar_embedding());
        assert_eq!(rs.face_count(), 1);
    }

    #[test]
    fn embeds_graph_with_cut_vertices() {
        // Bow-tie plus a pendant path.
        let g = Graph::from_edges(
            7,
            [
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (2, 4),
                (4, 5),
                (5, 6),
            ],
        )
        .unwrap();
        let rs = embed(&g).unwrap();
        assert!(rs.is_planar_embedding());
    }

    #[test]
    fn embeds_disconnected() {
        let g = Graph::from_edges(7, [(0, 1), (1, 2), (2, 0), (3, 4), (5, 6)]).unwrap();
        let rs = embed(&g).unwrap();
        assert!(rs.is_planar_embedding());
    }

    #[test]
    fn rejects_k5_and_k33() {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        assert!(!is_planar(&Graph::from_edges(5, edges).unwrap()));
        let k33 = Graph::from_edges(
            6,
            [
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 3),
                (1, 4),
                (1, 5),
                (2, 3),
                (2, 4),
                (2, 5),
            ],
        )
        .unwrap();
        assert!(!is_planar(&k33));
    }

    #[test]
    fn pinned_cycle_all_vertices() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let pins: Vec<VertexId> = g.vertices().collect();
        let pe = embed_pinned(&g, &pins).unwrap();
        assert!(pe.rotation.is_planar_embedding());
        // Pins around the common face must follow the cycle order (up to
        // rotation/reflection).
        let expected: Vec<VertexId> = (0..5).map(VertexId).collect();
        assert!(cyclic_eq_reflect(&pe.pin_order, &expected));
    }

    #[test]
    fn pinned_unsatisfiable_on_octahedron() {
        // The octahedron is 4-connected, so its embedding is unique; vertices
        // 0 and 5 are antipodal and never co-facial.
        let g = Graph::from_edges(
            6,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (5, 1),
                (5, 2),
                (5, 3),
                (5, 4),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 1),
            ],
        )
        .unwrap();
        let err = embed_pinned(&g, &[VertexId(0), VertexId(5)]).unwrap_err();
        assert!(matches!(
            err,
            PlanarityError::UnsatisfiableConstraint { .. }
        ));
    }

    #[test]
    fn pinned_with_no_pins_is_plain_embed() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        let pe = embed_pinned(&g, &[]).unwrap();
        assert!(pe.rotation.is_planar_embedding());
        assert!(pe.pin_order.is_empty());
    }

    #[test]
    fn pinned_duplicate_pins_are_deduped() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        let pe = embed_pinned(&g, &[VertexId(0), VertexId(0), VertexId(1)]).unwrap();
        assert_eq!(pe.pin_order.len(), 2);
    }

    #[test]
    fn pinned_rejects_bad_vertex() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(embed_pinned(&g, &[VertexId(17)]).is_err());
    }

    #[test]
    fn pin_order_covers_k4_outer_triangle() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let pe = embed_pinned(&g, &[VertexId(0), VertexId(1), VertexId(2)]).unwrap();
        assert_eq!(pe.pin_order.len(), 3);
        assert!(pe.rotation.is_planar_embedding());
    }
}
