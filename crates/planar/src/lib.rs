//! # planar-lib
//!
//! Planar graph theory substrate for the planar-networks workspace — the
//! centralized counterpart the paper contrasts itself with, used here for
//! three purposes:
//!
//! 1. **Verification ground truth**: every distributed embedding produced by
//!    the `planar-embedding` crate is checked against embeddings and
//!    planarity facts computed centrally.
//! 2. **The trivial baseline** (footnote 2 of the paper): gather the whole
//!    topology and embed locally with the [`embed`] function, the analogue
//!    of Hopcroft–Tarjan in our pipeline (implemented as the simpler DMP
//!    algorithm, which also produces an embedding, not just a yes/no answer).
//! 3. **Merge skeleton solving**: the distributed algorithm's coordinators
//!    embed small summarized "outline" graphs with pinned outer faces via
//!    [`embed_pinned`].
//!
//! # Example
//!
//! ```
//! use planar_lib::{embed, gen};
//!
//! # fn main() -> Result<(), planar_lib::PlanarityError> {
//! let g = gen::grid(5, 8);
//! let embedding = embed(&g)?;
//! assert!(embedding.is_planar_embedding());
//! // Euler: F = 2 - V + E = 2 - 40 + 67.
//! assert_eq!(embedding.face_count(), 29);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dmp;
mod embed;
mod error;
pub mod gen;
mod outerplanar;

pub use embed::{embed, embed_pinned, is_planar, PinnedEmbedding};
pub use error::PlanarityError;
pub use outerplanar::{embed_outerplanar, is_outerplanar, OuterplanarEmbedding};
