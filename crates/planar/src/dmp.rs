//! The Demoucron–Malgrange–Pertuiset (DMP) incremental planarity test and
//! embedder for biconnected graphs.
//!
//! DMP is the classical "face by face" algorithm: embed any cycle, then
//! repeatedly take a *fragment* (a chord, or a connected component of the
//! unembedded part together with its attachment edges), check which faces of
//! the current partial embedding can host it, and embed one path of the
//! fragment into such a face, splitting it in two. If some fragment has no
//! admissible face the graph is non-planar.
//!
//! The workspace uses this embedder in two roles mandated by the paper:
//! * the **trivial baseline** (footnote 2: gather the topology in `O(n)`
//!   rounds and solve locally), and
//! * the **merge skeleton solver** of the distributed algorithm, which
//!   embeds small summarized "outline" graphs at merge coordinators.
//!
//! The implementation maintains faces (as directed vertex cycles) and the
//! rotation system *together*, so the returned rotations always trace the
//! maintained faces; planarity of every output is independently checked by
//! [`RotationSystem::is_planar_embedding`] in the test suite.

use std::collections::{HashSet, VecDeque};

use planar_graph::{EdgeId, Graph, VertexId};

use crate::PlanarityError;

/// A fragment of the unembedded part relative to the embedded subgraph `S`.
#[derive(Clone, Debug)]
struct Fragment {
    /// Attachment vertices (embedded vertices touched by the fragment), sorted.
    attachments: Vec<VertexId>,
    /// Vertices of the fragment outside `S` (empty for a chord).
    interior: Vec<VertexId>,
    /// For a chord fragment, the chord edge.
    chord: Option<EdgeId>,
}

/// Embeds a biconnected graph (a single "block": one edge, or a 2-connected
/// graph), returning per-vertex rotations.
///
/// # Errors
///
/// Returns [`PlanarityError::NonPlanar`] if the block is not planar.
///
/// # Panics
///
/// Panics (in debug builds) if the input is not a single block; callers go
/// through [`crate::embed`], which decomposes arbitrary graphs into blocks.
pub(crate) fn embed_biconnected(g: &Graph) -> Result<Vec<Vec<VertexId>>, PlanarityError> {
    let n = g.vertex_count();
    let m = g.edge_count();
    debug_assert!(g.is_connected(), "block must be connected");
    if m == 0 {
        return Ok(vec![Vec::new(); n]);
    }
    if m == 1 {
        let e = g.edges().next().expect("m == 1");
        let mut rot = vec![Vec::new(); n];
        rot[e.lo().index()].push(e.hi());
        rot[e.hi().index()].push(e.lo());
        return Ok(rot);
    }
    // Planar edge bound: blocks with n >= 3 satisfy m <= 3n - 6.
    if n >= 3 && m > 3 * n - 6 {
        return Err(PlanarityError::TooManyEdges { n, m });
    }

    let mut state = DmpState::new(g);
    state.embed_initial_cycle();
    loop {
        let fragments = state.fragments();
        if fragments.is_empty() {
            break;
        }
        // Face vertex sets for admissibility checks, rebuilt per iteration.
        let face_sets: Vec<HashSet<VertexId>> = state
            .faces
            .iter()
            .map(|f| f.iter().copied().collect())
            .collect();
        let mut choice: Option<(usize, usize)> = None; // (fragment, face)
        for (fi, frag) in fragments.iter().enumerate() {
            let admissible: Vec<usize> = face_sets
                .iter()
                .enumerate()
                .filter(|(_, fs)| frag.attachments.iter().all(|a| fs.contains(a)))
                .map(|(i, _)| i)
                .collect();
            match admissible.len() {
                0 => {
                    return Err(PlanarityError::NonPlanar {
                        embedded_edges: state.embedded_edge_count,
                    })
                }
                1 => {
                    choice = Some((fi, admissible[0]));
                    break;
                }
                _ => {
                    if choice.is_none() {
                        choice = Some((fi, admissible[0]));
                    }
                }
            }
        }
        let (fi, face_idx) = choice.expect("non-empty fragment list yields a choice");
        let path = state.alpha_path(&fragments[fi]);
        state.embed_path(&path, face_idx);
    }
    Ok(state.rot)
}

struct DmpState<'g> {
    g: &'g Graph,
    in_s: Vec<bool>,
    edge_embedded: HashSet<EdgeId>,
    embedded_edge_count: usize,
    rot: Vec<Vec<VertexId>>,
    /// Faces as directed vertex cycles: consecutive entries are edges, and
    /// for any consecutive triple `(a, b, c)`, `c` follows `a` in `rot[b]`.
    faces: Vec<Vec<VertexId>>,
}

impl<'g> DmpState<'g> {
    fn new(g: &'g Graph) -> Self {
        DmpState {
            g,
            in_s: vec![false; g.vertex_count()],
            edge_embedded: HashSet::new(),
            embedded_edge_count: 0,
            rot: vec![Vec::new(); g.vertex_count()],
            faces: Vec::new(),
        }
    }

    /// Finds any cycle via DFS (undirected graphs have only back edges) and
    /// embeds it as the initial two-face configuration.
    fn embed_initial_cycle(&mut self) {
        let cycle = find_cycle(self.g).expect("biconnected graph with >= 2 edges has a cycle");
        let k = cycle.len();
        for i in 0..k {
            let prev = cycle[(i + k - 1) % k];
            let next = cycle[(i + 1) % k];
            let v = cycle[i];
            self.rot[v.index()] = vec![prev, next];
            self.in_s[v.index()] = true;
            self.mark_edge(EdgeId::new(v, next));
        }
        let fwd = cycle.clone();
        let bwd: Vec<VertexId> = cycle.iter().rev().copied().collect();
        self.faces = vec![fwd, bwd];
    }

    fn mark_edge(&mut self, e: EdgeId) {
        if self.edge_embedded.insert(e) {
            self.embedded_edge_count += 1;
        }
    }

    /// Computes all fragments relative to the current embedded subgraph.
    fn fragments(&self) -> Vec<Fragment> {
        let mut frags = Vec::new();
        // Chords: unembedded edges with both endpoints embedded.
        for e in self.g.edges() {
            if !self.edge_embedded.contains(&e)
                && self.in_s[e.lo().index()]
                && self.in_s[e.hi().index()]
            {
                frags.push(Fragment {
                    attachments: vec![e.lo(), e.hi()],
                    interior: Vec::new(),
                    chord: Some(e),
                });
            }
        }
        // Components of G - S with their attachment edges.
        let mut seen = vec![false; self.g.vertex_count()];
        for v in self.g.vertices() {
            if self.in_s[v.index()] || seen[v.index()] {
                continue;
            }
            let mut comp = Vec::new();
            let mut attach = HashSet::new();
            let mut queue = VecDeque::from([v]);
            seen[v.index()] = true;
            while let Some(x) = queue.pop_front() {
                comp.push(x);
                for &w in self.g.neighbors(x) {
                    if self.in_s[w.index()] {
                        attach.insert(w);
                    } else if !seen[w.index()] {
                        seen[w.index()] = true;
                        queue.push_back(w);
                    }
                }
            }
            let mut attachments: Vec<VertexId> = attach.into_iter().collect();
            attachments.sort();
            debug_assert!(
                attachments.len() >= 2,
                "fragment of a 2-connected graph has >= 2 attachments"
            );
            frags.push(Fragment {
                attachments,
                interior: comp,
                chord: None,
            });
        }
        frags
    }

    /// A path through the fragment between two distinct attachment vertices,
    /// with all interior vertices outside `S`.
    fn alpha_path(&self, frag: &Fragment) -> Vec<VertexId> {
        if let Some(chord) = frag.chord {
            return vec![chord.lo(), chord.hi()];
        }
        let a1 = frag.attachments[0];
        let a2 = frag.attachments[1];
        let in_interior: HashSet<VertexId> = frag.interior.iter().copied().collect();
        // BFS from a1 through interior vertices only, targeting a2.
        let mut pred: Vec<Option<VertexId>> = vec![None; self.g.vertex_count()];
        let mut seen = vec![false; self.g.vertex_count()];
        let mut queue = VecDeque::new();
        seen[a1.index()] = true;
        for &w in self.g.neighbors(a1) {
            if in_interior.contains(&w) && !seen[w.index()] {
                seen[w.index()] = true;
                pred[w.index()] = Some(a1);
                queue.push_back(w);
            }
        }
        while let Some(x) = queue.pop_front() {
            if self.g.has_edge(x, a2) {
                let mut path = vec![a2, x];
                let mut cur = x;
                while let Some(p) = pred[cur.index()] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return path;
            }
            for &w in self.g.neighbors(x) {
                if in_interior.contains(&w) && !seen[w.index()] {
                    seen[w.index()] = true;
                    pred[w.index()] = Some(x);
                    queue.push_back(w);
                }
            }
        }
        unreachable!("fragment interior connects its attachments by construction")
    }

    /// Embeds `path` (endpoints embedded and on face `face_idx`, interior
    /// new) into the face, splitting it in two.
    fn embed_path(&mut self, path: &[VertexId], face_idx: usize) {
        let f = self.faces.swap_remove(face_idx);
        let k = f.len();
        let u = path[0];
        let v = *path.last().expect("path has >= 2 vertices");
        let i = f.iter().position(|&x| x == u).expect("u on face");
        let j = f.iter().position(|&x| x == v).expect("v on face");
        debug_assert_ne!(i, j, "path endpoints must be distinct");
        let a = f[(i + k - 1) % k]; // predecessor of u on the face
        let c = f[(j + k - 1) % k]; // predecessor of v on the face

        // Insert path[1] right after `a` in rot[u]: the face guarantees that
        // `b = f[i+1]` currently follows `a`, and the new edge goes between.
        let first = path[1];
        let pos_a = self.rot[u.index()]
            .iter()
            .position(|&x| x == a)
            .expect("face predecessor present in rotation");
        self.rot[u.index()].insert(pos_a + 1, first);

        // Insert path[m-1] right after `c` in rot[v].
        let last = path[path.len() - 2];
        let pos_c = self.rot[v.index()]
            .iter()
            .position(|&x| x == c)
            .expect("face predecessor present in rotation");
        self.rot[v.index()].insert(pos_c + 1, last);

        // Interior vertices get the degree-2 rotation [prev, next].
        for t in 1..path.len() - 1 {
            let p = path[t];
            self.rot[p.index()] = vec![path[t - 1], path[t + 1]];
            self.in_s[p.index()] = true;
        }
        for t in 0..path.len() - 1 {
            self.mark_edge(EdgeId::new(path[t], path[t + 1]));
        }

        // Split the face. Let arc1 = f[i..=j] (cyclically) and arc2 = f[j..=i].
        let mut arc1 = Vec::new();
        let mut t = i;
        loop {
            arc1.push(f[t]);
            if t == j {
                break;
            }
            t = (t + 1) % k;
        }
        let mut arc2 = Vec::new();
        let mut t = j;
        loop {
            arc2.push(f[t]);
            if t == i {
                break;
            }
            t = (t + 1) % k;
        }
        // f1 = u ..arc1.. v, then the path interior reversed (v back to u).
        let mut f1 = arc1;
        f1.extend(path[1..path.len() - 1].iter().rev());
        // f2 = v ..arc2.. u, then the path interior forward (u to v).
        let mut f2 = arc2;
        f2.extend(path[1..path.len() - 1].iter());
        self.faces.push(f1);
        self.faces.push(f2);
    }
}

/// Finds any cycle in `g` as a vertex list, or `None` if `g` is a forest.
fn find_cycle(g: &Graph) -> Option<Vec<VertexId>> {
    let n = g.vertex_count();
    let mut depth: Vec<Option<u32>> = vec![None; n];
    let mut parent: Vec<Option<VertexId>> = vec![None; n];
    for root in g.vertices() {
        if depth[root.index()].is_some() {
            continue;
        }
        // Iterative DFS.
        depth[root.index()] = Some(0);
        let mut stack = vec![(root, 0usize)];
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < g.degree(v) {
                let w = g.neighbors(v)[*next];
                *next += 1;
                if depth[w.index()].is_none() {
                    depth[w.index()] = Some(depth[v.index()].unwrap() + 1);
                    parent[w.index()] = Some(v);
                    stack.push((w, 0));
                } else if Some(w) != parent[v.index()] && depth[w.index()] < depth[v.index()] {
                    // Back edge (v, w): cycle is w -> ... -> v via parents.
                    let mut cycle = vec![v];
                    let mut cur = v;
                    while cur != w {
                        cur = parent[cur.index()].expect("w is an ancestor of v");
                        cycle.push(cur);
                    }
                    cycle.reverse();
                    return Some(cycle);
                }
            } else {
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_graph::RotationSystem;

    fn embed_and_verify(g: &Graph) -> RotationSystem {
        let rot = embed_biconnected(g).expect("graph should be planar");
        let rs = RotationSystem::new(g, rot).expect("valid rotation");
        assert!(rs.is_planar_embedding(), "embedding must have genus 0");
        rs
    }

    #[test]
    fn cycle_embeds_with_two_faces() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let rs = embed_and_verify(&g);
        assert_eq!(rs.face_count(), 2);
    }

    #[test]
    fn k4_embeds_with_four_faces() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let rs = embed_and_verify(&g);
        assert_eq!(rs.face_count(), 4);
    }

    #[test]
    fn cube_graph_embeds() {
        // Q3: 8 vertices, 12 edges, 6 faces.
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0), // bottom
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4), // top
                (0, 4),
                (1, 5),
                (2, 6),
                (3, 7), // pillars
            ],
        )
        .unwrap();
        let rs = embed_and_verify(&g);
        assert_eq!(rs.face_count(), 6);
    }

    #[test]
    fn maximal_planar_octahedron() {
        // Octahedron: 6 vertices, 12 edges, 8 triangular faces.
        let g = Graph::from_edges(
            6,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (5, 1),
                (5, 2),
                (5, 3),
                (5, 4),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 1),
            ],
        )
        .unwrap();
        let rs = embed_and_verify(&g);
        assert_eq!(rs.face_count(), 8);
        for f in rs.faces() {
            assert_eq!(f.len(), 3);
        }
    }

    #[test]
    fn k5_is_nonplanar() {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(5, edges).unwrap();
        // K5 has m = 10 > 3*5 - 6 = 9: caught by the edge bound.
        assert!(matches!(
            embed_biconnected(&g),
            Err(PlanarityError::TooManyEdges { .. })
        ));
    }

    #[test]
    fn k33_is_nonplanar() {
        let g = Graph::from_edges(
            6,
            [
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 3),
                (1, 4),
                (1, 5),
                (2, 3),
                (2, 4),
                (2, 5),
            ],
        )
        .unwrap();
        // K3,3 passes the edge bound (9 <= 12) so DMP itself must reject it.
        assert!(matches!(
            embed_biconnected(&g),
            Err(PlanarityError::NonPlanar { .. })
        ));
    }

    #[test]
    fn k5_minus_edge_is_planar() {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                if (u, v) != (0, 1) {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(5, edges).unwrap();
        embed_and_verify(&g);
    }

    #[test]
    fn k33_minus_edge_is_planar() {
        let g = Graph::from_edges(
            6,
            [
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 3),
                (1, 4),
                (1, 5),
                (2, 3),
                (2, 4),
            ],
        )
        .unwrap();
        embed_and_verify(&g);
    }

    #[test]
    fn single_edge_block() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let rot = embed_biconnected(&g).unwrap();
        assert_eq!(rot[0], vec![VertexId(1)]);
        assert_eq!(rot[1], vec![VertexId(0)]);
    }

    #[test]
    fn find_cycle_on_forest_is_none() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (1, 3)]).unwrap();
        assert!(find_cycle(&g).is_none());
    }

    #[test]
    fn find_cycle_returns_real_cycle() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 0), (3, 4), (4, 5)]).unwrap();
        let c = find_cycle(&g).unwrap();
        assert!(c.len() >= 3);
        for i in 0..c.len() {
            assert!(g.has_edge(c[i], c[(i + 1) % c.len()]));
        }
    }

    #[test]
    fn grid_block_embeds() {
        // 4x4 grid: biconnected, 16 vertices, 24 edges, 10 faces.
        let idx = |r: u32, c: u32| r * 4 + c;
        let mut edges = Vec::new();
        for r in 0..4u32 {
            for c in 0..4u32 {
                if c + 1 < 4 {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < 4 {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        let g = Graph::from_edges(16, edges).unwrap();
        let rs = embed_and_verify(&g);
        assert_eq!(rs.face_count(), 10); // Euler: F = 2 - V + E = 2 - 16 + 24
    }
}
