//! Determinism of the parallel bench harness: fanning trials out over
//! worker threads must produce tables byte-identical to a sequential run,
//! no matter how the OS schedules the workers.

use planar_bench::chaos::{chaos_cell, chaos_sweep};
use planar_bench::parallel::par_map;
use planar_bench::{t1_scaling, t1_trial, t5_lower_bound, Family};

/// The parallel T1 sweep equals the same trials mapped sequentially, and
/// reruns are identical.
#[test]
fn t1_parallel_matches_sequential() {
    let sizes = [48usize, 96];
    let sequential: Vec<_> = Family::ALL
        .into_iter()
        .flat_map(|f| sizes.iter().map(move |&n| t1_trial(f, n)))
        .collect();
    let parallel = t1_scaling(&sizes);
    assert_eq!(
        parallel, sequential,
        "parallel sweep diverged from sequential"
    );
    assert_eq!(t1_scaling(&sizes), parallel, "rerun diverged");
}

/// Same check on a sweep whose trial axis is not family × size.
#[test]
fn t5_parallel_is_stable() {
    let a = t5_lower_bound(&[4, 8, 16]);
    let b = t5_lower_bound(&[4, 8, 16]);
    assert_eq!(a, b);
    assert_eq!(a.len(), 3);
}

/// Faulty runs stay deterministic through the parallel harness: the chaos
/// sweep (seeded fault plans, reliable delivery, worker threads) equals
/// both a rerun of itself and the same cells computed sequentially.
#[test]
fn chaos_parallel_matches_sequential() {
    let sizes = [64usize];
    let parallel = chaos_sweep(&sizes);
    assert_eq!(chaos_sweep(&sizes), parallel, "chaos rerun diverged");
    let sequential: Vec<_> = ["grid", "tri-grid"]
        .into_iter()
        .enumerate()
        .flat_map(|(fam_idx, family)| {
            (0..planar_bench::chaos::RATES.len())
                .map(move |rate_idx| chaos_cell(family, fam_idx, 64, rate_idx))
        })
        .collect();
    assert_eq!(parallel, sequential, "parallel chaos diverged");
}

/// par_map preserves input order even when work sizes are skewed enough
/// that completion order is certain to differ from input order.
#[test]
fn par_map_order_with_skewed_work() {
    let items: Vec<u64> = (0..64).rev().collect();
    let out = par_map(items.clone(), |i| {
        // Busy work proportional to the item so late inputs finish first.
        let mut acc = i;
        for _ in 0..(i * 1000) {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        (i, acc)
    });
    for (slot, &(i, _)) in out.iter().enumerate() {
        assert_eq!(i, items[slot]);
    }
}
