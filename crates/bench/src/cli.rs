//! The harness subcommand registry: one authoritative list of every
//! subcommand with its one-line description, the usage text derived from
//! it, and nothing else.
//!
//! `harness.rs` dispatches against this list and prints [`usage`] on an
//! unknown subcommand (then exits non-zero); the test below pins the list
//! so adding a subcommand without registering it — or registering one
//! without documenting it — fails in CI, not in a user's terminal.

/// One harness subcommand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Subcommand {
    /// The name typed on the command line.
    pub name: &'static str,
    /// One-line description for the usage listing.
    pub description: &'static str,
}

/// Every subcommand the harness accepts, in display order.
pub const SUBCOMMANDS: &[Subcommand] = &[
    Subcommand {
        name: "all",
        description: "run every EXPERIMENTS.md table (t1-t6, fobs, fsafe, ablate); the default",
    },
    Subcommand {
        name: "t1",
        description: "Theorem 1.1 scaling: rounds vs n, ours vs trivial baseline",
    },
    Subcommand {
        name: "t2",
        description: "rounds vs diameter at fixed n (grid aspect sweep)",
    },
    Subcommand {
        name: "t3",
        description: "Lemmas 4.2/4.3: recursion depth, part ratios, final parts",
    },
    Subcommand {
        name: "t4",
        description: "Lemma 5.3 symmetry breaking on outerplanar graphs",
    },
    Subcommand {
        name: "t5",
        description: "Omega(D) lower-bound instance (subdivided K4)",
    },
    Subcommand {
        name: "t6",
        description: "CONGEST discipline audit (words per edge per round)",
    },
    Subcommand {
        name: "fobs",
        description: "Observation 3.2 interface characterization (exhaustive)",
    },
    Subcommand {
        name: "fsafe",
        description: "Definition 3.1 partition safety with full invariant checking",
    },
    Subcommand {
        name: "ablate",
        description: "per-edge word budget vs rounds ablation",
    },
    Subcommand {
        name: "bench-kernel",
        description: "kernel throughput vs the preserved seed kernel -> BENCH_kernel.json",
    },
    Subcommand {
        name: "mem",
        description: "memory gate: n=250k random-maximal-planar embedding under a peak-RSS ceiling",
    },
    Subcommand {
        name: "chaos",
        description: "embedding under seeded link faults, reliable delivery on -> BENCH_chaos.json",
    },
    Subcommand {
        name: "cert",
        description: "certification sweep: label sizes, O(1) verification, mutation soundness -> BENCH_cert.json",
    },
    Subcommand {
        name: "trace",
        description: "audited per-round profile of the full pipeline -> BENCH_trace.json",
    },
    Subcommand {
        name: "sched",
        description: "level-synchronous scheduler vs sequential oracle timings -> BENCH_sched.json",
    },
    Subcommand {
        name: "dst",
        description: "deterministic simulation testing: seeded scenario swarm, shadow oracles, \
                      failing-seed minimization -> BENCH_dst.json (see `harness dst --help`)",
    },
    Subcommand {
        name: "service",
        description: "multi-tenant churn soak: incremental vs full re-embed latency across a \
                      tenant fleet -> BENCH_service.json",
    },
];

/// Looks a subcommand up by name.
pub fn subcommand(name: &str) -> Option<&'static Subcommand> {
    SUBCOMMANDS.iter().find(|s| s.name == name)
}

/// The full usage text: synopsis plus one aligned line per subcommand.
pub fn usage() -> String {
    let names: Vec<&str> = SUBCOMMANDS.iter().map(|s| s.name).collect();
    let width = names.iter().map(|n| n.len()).max().unwrap_or(0);
    let mut out = format!(
        "usage: harness [{}] [--large]\n\nsubcommands:\n",
        names.join("|")
    );
    for s in SUBCOMMANDS {
        out.push_str(&format!("  {:width$}  {}\n", s.name, s.description));
    }
    out.push_str(
        "\ndst options:\n  \
         --swarm <count>    run a swarm of scenarios from consecutive seeds\n  \
         --seed <base>      base (swarm) or single replay seed; default 0\n  \
         --canary           arm the test-only broken-fate canary (divergences expected)\n  \
         --artifacts <dir>  per-run artifact directory (default dst-artifacts)\n",
    );
    out.push_str(
        "\nservice options:\n  \
         --fleet <count>        concurrent tenant graphs in the soak (default 1024)\n  \
         --deltas <count>       churn deltas applied per tenant (default 4)\n  \
         --min-coverage <frac>  fail if incremental coverage drops below this (default 0.5)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pinned subcommand list: renaming, removing, or adding a harness
    /// subcommand must update this test (and the docs that quote it).
    #[test]
    fn subcommand_list_is_pinned() {
        let names: Vec<&str> = SUBCOMMANDS.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "all",
                "t1",
                "t2",
                "t3",
                "t4",
                "t5",
                "t6",
                "fobs",
                "fsafe",
                "ablate",
                "bench-kernel",
                "mem",
                "chaos",
                "cert",
                "trace",
                "sched",
                "dst",
                "service",
            ]
        );
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for s in SUBCOMMANDS {
            assert!(seen.insert(s.name), "duplicate subcommand {}", s.name);
            assert_eq!(subcommand(s.name), Some(s));
            assert!(!s.description.is_empty());
        }
        assert_eq!(subcommand("no-such-subcommand"), None);
    }

    #[test]
    fn usage_mentions_every_subcommand() {
        let text = usage();
        assert!(text.starts_with("usage: harness ["));
        for s in SUBCOMMANDS {
            assert!(text.contains(s.name), "usage missing {}", s.name);
        }
        assert!(text.contains("--large"));
        assert!(text.contains("--swarm"));
        assert!(text.contains("--fleet"));
        assert!(text.contains("--deltas"));
        assert!(text.contains("--min-coverage"));
    }
}
