//! Deterministic parallel execution of independent bench trials.
//!
//! The experiment sweeps (seeds × graph families × sizes) are
//! embarrassingly parallel: every trial builds its own `Graph` and runs its
//! own simulation, sharing nothing. This module is a thin wrapper over the
//! workspace's shared worker pool ([`congest_sim::pool`]) — one pool
//! implementation, one thread-count knob — keeping the historical
//! `PLANAR_BENCH_THREADS` override for sweeps while deferring to the
//! shared `PLANAR_THREADS` knob otherwise. Results are collected **by
//! trial index**, never by completion order, so the output of [`par_map`]
//! is byte-identical to the sequential `map` no matter how the OS
//! schedules the workers.
//!
//! rayon would be the natural backend, but it cannot be vendored in this
//! offline build environment (see `shims/README.md`); the semantics are
//! the same as `par_iter().map().collect()`. Disabling the crate's
//! `parallel` feature (or setting `PLANAR_BENCH_THREADS=1`) degrades to a
//! plain sequential map, which is how the determinism conformance test
//! cross-checks the two paths.
//!
//! # Composition with the kernel's parallel rounds
//!
//! Sweep workers are marked via the shared pool, so a kernel running
//! *inside* a trial resolves an automatic thread count to 1 instead of
//! oversubscribing the host with `threads × threads` workers — the outer
//! sweep owns the cores (it parallelizes whole independent trials, the
//! coarser grain). See [`congest_sim::pool`]'s module docs for the full
//! rule; an explicit `SimConfig::threads` override remains absolute, which
//! is what the thread-scaling benchmark uses (with its sweep kept
//! sequential).

use congest_sim::pool;

/// Number of worker threads for bench sweeps: `PLANAR_BENCH_THREADS` if
/// set (the historical bench-specific override), else the shared pool's
/// resolution ([`pool::worker_threads`]: `PLANAR_THREADS`, else available
/// parallelism, else 1). Always at least 1.
pub fn worker_threads() -> usize {
    if let Ok(v) = std::env::var("PLANAR_BENCH_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    pool::worker_threads()
}

/// Applies `f` to every item, in parallel when the `parallel` feature is on,
/// returning results in input order (deterministic regardless of scheduling).
/// Workers are marked in the shared pool, so kernels inside `f` fall back
/// to sequential rounds unless explicitly pinned (see the module docs).
///
/// # Panics
///
/// Propagates a panic from `f` (the first worker panic observed).
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = if cfg!(feature = "parallel") {
        worker_threads()
    } else {
        1
    };
    pool::par_map(threads, items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(items, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..37).collect();
        let seq: Vec<u64> = items.iter().map(|&i| i.wrapping_mul(0x9E3779B9)).collect();
        let par = par_map(items, |i| i.wrapping_mul(0x9E3779B9));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(Vec::<u32>::new(), |i| i), Vec::<u32>::new());
        assert_eq!(par_map(vec![7u32], |i| i + 1), vec![8]);
    }

    /// The oversubscription fix: a kernel asked for an automatic thread
    /// count inside a sweep worker gets 1 (the sweep owns the cores); an
    /// explicit pin stays absolute. When the sweep itself degrades to a
    /// sequential map (single core, feature off), nothing is marked and
    /// the automatic count resolves as usual.
    #[test]
    fn sweep_workers_suppress_nested_kernel_threads() {
        let outside_pin = pool::kernel_threads(Some(3));
        let resolved = par_map(vec![(); 4], |()| {
            (
                pool::in_worker(),
                pool::kernel_threads(None),
                pool::kernel_threads(Some(3)),
            )
        });
        for &(marked, auto, pinned) in &resolved {
            if marked {
                assert_eq!(auto, 1, "automatic kernel threads must not oversubscribe");
            } else {
                assert_eq!(auto, pool::kernel_threads(None), "sequential fallback");
            }
            assert_eq!(pinned, outside_pin, "explicit kernel threads are absolute");
        }
    }
}
