//! Deterministic parallel execution of independent bench trials.
//!
//! The experiment sweeps (seeds × graph families × sizes) are
//! embarrassingly parallel: every trial builds its own `Graph` and runs its
//! own simulation, sharing nothing. This module fans those trials out over
//! scoped `std::thread` workers pulling from an atomic work queue, and
//! collects results **by trial index** — never by completion order — so the
//! output of [`par_map`] is byte-identical to the sequential `map` no
//! matter how the OS schedules the workers.
//!
//! rayon would be the natural backend, but it cannot be vendored in this
//! offline build environment (see `shims/README.md`); the semantics here
//! are the same as `par_iter().map().collect()`. Disabling the crate's
//! `parallel` feature (or setting `PLANAR_BENCH_THREADS=1`) degrades to a
//! plain sequential map, which is how the determinism conformance test
//! cross-checks the two paths.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use: `PLANAR_BENCH_THREADS` if set, else
/// available parallelism, else 1. Always at least 1.
pub fn worker_threads() -> usize {
    if let Ok(v) = std::env::var("PLANAR_BENCH_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item, in parallel when the `parallel` feature is on,
/// returning results in input order (deterministic regardless of scheduling).
///
/// # Panics
///
/// Propagates a panic from `f` (the first worker panic observed).
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = if cfg!(feature = "parallel") {
        worker_threads()
    } else {
        1
    };
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    let n = items.len();
    // Hand each item an index so results land in their input slot.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each slot is claimed exactly once");
                let out = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(items, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..37).collect();
        let seq: Vec<u64> = items.iter().map(|&i| i.wrapping_mul(0x9E3779B9)).collect();
        let par = par_map(items, |i| i.wrapping_mul(0x9E3779B9));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(Vec::<u32>::new(), |i| i), Vec::<u32>::new());
        assert_eq!(par_map(vec![7u32], |i| i + 1), vec![8]);
    }
}
