//! Chaos sweep: the embedding algorithm under seeded fault injection — the
//! record behind `BENCH_chaos.json`.
//!
//! For each substrate (`grid`, `tri-grid`) × size × fault rate, the sweep
//! runs several independently-seeded trials of the full distributed
//! embedding with per-link drop/duplicate/delay faults
//! ([`congest_sim::FaultPlan::uniform`]) and reliable delivery
//! ([`planar_embedding::ReliableConfig`]) switched on. Every trial must end
//! in either a verified embedding or a typed
//! [`EmbedError::Degraded`](planar_embedding::EmbedError) — any other
//! outcome (a hang would trip the watchdog; an untyped error) fails the
//! sweep with a panic.
//!
//! Reported per row: success rate, mean round overhead of successful runs
//! against the fault-free baseline on the same substrate, and the fault /
//! recovery counters. All trials are seeded deterministically from the row
//! coordinates, so the sweep is replayable and its rows are directly
//! comparable across machines (timings are deliberately not recorded).

use congest_sim::{AuditSink, FaultPlan, SimConfig, TraceHandle};
use planar_embedding::{embed_distributed, EmbedError, EmbedderConfig, ReliableConfig};
use planar_graph::Graph;
use planar_lib::gen;

use crate::parallel::par_map;

/// The drop rates swept (duplicate rate is half, delay rate is equal, max
/// delay 3 rounds). Rate 0.0 measures the pure overhead of the reliable
/// wrapper (sequence words + acks), isolating recovery cost from transport
/// cost.
pub const RATES: [f64; 4] = [0.0, 0.01, 0.03, 0.1];

/// Trials per row; seeds are `trial`-indexed, so rows are replayable.
pub const TRIALS: usize = 5;

/// One row of the chaos sweep: a substrate × fault-rate cell.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosRow {
    /// Substrate family (`"grid"` or `"tri-grid"`).
    pub family: &'static str,
    /// Vertex count.
    pub n: usize,
    /// Per-message drop probability (duplicate = rate/2, delay = rate).
    pub rate: f64,
    /// Independent seeded trials run.
    pub trials: usize,
    /// Trials that produced a verified embedding.
    pub successes: usize,
    /// Trials that ended in [`EmbedError::Degraded`].
    pub degraded: usize,
    /// Fault-free round count of the same substrate (the overhead
    /// denominator), run without the wrapper.
    pub baseline_rounds: usize,
    /// Mean over successful trials of `rounds / baseline_rounds`
    /// (0.0 when no trial succeeded).
    pub mean_round_overhead: f64,
    /// Total messages dropped across all trials.
    pub dropped: usize,
    /// Total retransmissions across all trials.
    pub retransmissions: usize,
}

impl ChaosRow {
    /// Fraction of trials ending in a verified embedding.
    pub fn success_rate(&self) -> f64 {
        self.successes as f64 / self.trials as f64
    }
}

fn substrate(family: &'static str, n: usize) -> Graph {
    let side = (n as f64).sqrt().round() as usize;
    match family {
        "grid" => gen::grid(side, side),
        "tri-grid" => gen::triangulated_grid(side, side),
        other => unreachable!("unknown chaos substrate {other}"),
    }
}

/// Deterministic per-trial plan seed from the row coordinates, via the
/// workspace's shared audited mixer ([`congest_sim::mix_seed`]): each
/// coordinate goes through a full splitmix64 finalization before being
/// mixed in, so distinct coordinate tuples map to distinct seeds. The old
/// local shift-and-add packing was collision-prone (coordinates could carry
/// into each other's bit ranges, e.g. `(rate_idx, trial) = (0, 256)` packed
/// the same as `(1, 0)`); the fixed mixer now lives in `congest_sim::faults`
/// so this sweep and the DST scenario engine derive sub-seeds identically.
fn trial_seed(fam_idx: usize, n: usize, rate_idx: usize, trial: usize) -> u64 {
    congest_sim::mix_seed(
        0,
        &[fam_idx as u64, n as u64, rate_idx as u64, trial as u64],
    )
}

/// Runs one chaos cell: `TRIALS` seeded faulty runs against the fault-free
/// baseline of the same substrate.
///
/// # Panics
///
/// Panics if any trial ends in something other than a verified embedding
/// or [`EmbedError::Degraded`] — the tentpole's graceful-degradation
/// contract.
pub fn chaos_cell(family: &'static str, fam_idx: usize, n: usize, rate_idx: usize) -> ChaosRow {
    let rate = RATES[rate_idx];
    let g = substrate(family, n);
    let baseline = embed_distributed(
        &g,
        &EmbedderConfig {
            check_invariants: false,
            ..EmbedderConfig::default()
        },
    )
    .expect("fault-free baseline embeds");
    let baseline_rounds = baseline.metrics.rounds.max(1);

    let mut successes = 0;
    let mut degraded = 0;
    let mut overhead_sum = 0.0;
    let mut dropped = 0;
    let mut retransmissions = 0;
    for trial in 0..TRIALS {
        // Every trial runs under the trace auditor: the kernel's reported
        // metrics must survive independent recomputation from the event
        // stream across the whole fault matrix.
        let audit = AuditSink::new();
        let cfg = EmbedderConfig {
            sim: SimConfig {
                faults: FaultPlan::uniform(
                    trial_seed(fam_idx, n, rate_idx, trial),
                    rate,
                    rate / 2.0,
                    rate,
                    3,
                ),
                trace: TraceHandle::to(audit.clone()),
                ..SimConfig::default()
            },
            check_invariants: false,
            reliability: Some(ReliableConfig::default()),
            ..EmbedderConfig::default()
        };
        let outcome = embed_distributed(&g, &cfg);
        assert!(
            audit.ok(),
            "chaos trial {family}/n={n}/rate={rate}/#{trial}: trace audit \
             found accounting drift: {:?}",
            audit.report().mismatches
        );
        match outcome {
            Ok(out) => {
                successes += 1;
                overhead_sum += out.metrics.rounds as f64 / baseline_rounds as f64;
                dropped += out.metrics.dropped;
                retransmissions += out.metrics.retransmissions;
            }
            Err(EmbedError::Degraded { .. }) => degraded += 1,
            Err(other) => panic!(
                "chaos trial {family}/n={n}/rate={rate}/#{trial} must end in \
                 success or Degraded, got: {other}"
            ),
        }
    }
    ChaosRow {
        family,
        n,
        rate,
        trials: TRIALS,
        successes,
        degraded,
        baseline_rounds,
        mean_round_overhead: if successes > 0 {
            overhead_sum / successes as f64
        } else {
            0.0
        },
        dropped,
        retransmissions,
    }
}

/// Runs the full sweep (`RATES` × substrates × `sizes`), fanning the cells
/// out through [`par_map`], printing one line per row. Deterministic:
/// repeat calls return identical rows.
pub fn chaos_sweep(sizes: &[usize]) -> Vec<ChaosRow> {
    let cells: Vec<(&'static str, usize, usize, usize)> = ["grid", "tri-grid"]
        .into_iter()
        .enumerate()
        .flat_map(|(fam_idx, family)| {
            sizes.iter().flat_map(move |&n| {
                (0..RATES.len()).map(move |rate_idx| (family, fam_idx, n, rate_idx))
            })
        })
        .collect();
    let rows = par_map(cells, |(family, fam_idx, n, rate_idx)| {
        chaos_cell(family, fam_idx, n, rate_idx)
    });
    for r in &rows {
        println!(
            "chaos/{:<9} n={:<6} rate={:<5} success={}/{} degraded={} overhead={:.2}x dropped={} retx={}",
            r.family,
            r.n,
            r.rate,
            r.successes,
            r.trials,
            r.degraded,
            r.mean_round_overhead,
            r.dropped,
            r.retransmissions,
        );
    }
    rows
}

/// Renders rows as the `BENCH_chaos.json` document (hand-rolled JSON, as
/// `BENCH_kernel.json`: every field numeric or a known-safe literal).
pub fn to_json(rows: &[ChaosRow]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"embedding-chaos\",\n");
    s.push_str(
        "  \"metric\": \"success rate and round overhead under seeded link faults \
         (drop/duplicate/delay), reliable delivery on\",\n",
    );
    s.push_str(&format!(
        "  \"trials_per_cell\": {TRIALS},\n  \"cells\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\"family\": \"{}\", \"n\": {}, \"drop_rate\": {}, ",
                "\"trials\": {}, \"successes\": {}, \"degraded\": {}, ",
                "\"success_rate\": {:.3}, \"baseline_rounds\": {}, ",
                "\"mean_round_overhead\": {:.4}, \"dropped\": {}, ",
                "\"retransmissions\": {}}}{}\n"
            ),
            r.family,
            r.n,
            r.rate,
            r.trials,
            r.successes,
            r.degraded,
            r.success_rate(),
            r.baseline_rounds,
            r.mean_round_overhead,
            r.dropped,
            r.retransmissions,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Writes [`to_json`] to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_json(path: &std::path::Path, rows: &[ChaosRow]) -> std::io::Result<()> {
    std::fs::write(path, to_json(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_cell_is_deterministic_and_total() {
        let a = chaos_cell("grid", 0, 64, 3); // rate 0.1, the nastiest cell
        let b = chaos_cell("grid", 0, 64, 3);
        assert_eq!(a, b, "chaos cells must replay identically");
        assert_eq!(a.successes + a.degraded, a.trials);
    }

    #[test]
    fn zero_rate_cell_always_succeeds() {
        let r = chaos_cell("tri-grid", 1, 64, 0);
        assert_eq!(r.successes, r.trials);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.retransmissions, 0);
    }

    /// Satellite regression: the per-trial seeds must be collision-free
    /// over (far more than) the whole sweep grid. The pre-fix
    /// shift-and-add packing collided whenever one coordinate carried into
    /// another's bit range — `trial_seed(f, n, 0, 256) ==
    /// trial_seed(f, n, 1, 0)`.
    #[test]
    fn trial_seeds_are_collision_free_over_the_sweep_grid() {
        let mut seen = std::collections::HashSet::new();
        for fam_idx in 0..2 {
            for n in [64usize, 256, 1024, 4096, 16384] {
                for rate_idx in 0..8 {
                    for trial in 0..300 {
                        let s = trial_seed(fam_idx, n, rate_idx, trial);
                        assert!(
                            seen.insert(s),
                            "seed collision at ({fam_idx}, {n}, {rate_idx}, {trial})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn json_record_is_well_formed_enough() {
        let rows = vec![chaos_cell("grid", 0, 64, 1)];
        let j = to_json(&rows);
        assert!(j.contains("\"success_rate\""));
        assert!(j.contains("\"mean_round_overhead\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
