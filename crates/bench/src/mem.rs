//! Process-level memory probes for the bench harness.
//!
//! The kernel reports its *retained arena* bytes precisely
//! ([`congest_sim::Simulator::memory_bytes`] and friends), but the
//! million-node acceptance gate cares about the whole process: allocator
//! slack, the graph itself, the driver's host-side artifacts. On Linux the
//! kernel already tracks that as the peak resident set (`VmHWM` in
//! `/proc/self/status`); this module reads it. Elsewhere (or in a
//! container without procfs) the probe degrades to `0`, which every
//! consumer treats as "unavailable" — columns print `-` and ceilings
//! don't gate.

/// Peak resident set size of this process in bytes (`VmHWM`), or `0` when
/// the probe is unavailable. Monotone over the process lifetime: a value
/// read after a workload bounds everything that ran before it.
pub fn peak_rss_bytes() -> usize {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    parse_vm_hwm(&status).unwrap_or(0)
}

/// Parses the `VmHWM:` line of a `/proc/<pid>/status` document (value in
/// kibibytes) into bytes.
fn parse_vm_hwm(status: &str) -> Option<usize> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: usize = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kib * 1024)
}

/// Renders a byte count for table output: `-` when unavailable (0),
/// otherwise MiB with one decimal.
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes == 0 {
        "-".to_string()
    } else {
        format!("{:.1}MiB", bytes as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let doc = "Name:\tharness\nVmPeak:\t  999 kB\nVmHWM:\t  123456 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(doc), Some(123456 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tx\n"), None);
    }

    #[test]
    fn live_probe_is_sane_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            // A running test binary has touched at least a megabyte and
            // (we hope) less than a terabyte.
            assert!(rss > 1 << 20, "VmHWM implausibly small: {rss}");
            assert!(rss < 1 << 40, "VmHWM implausibly large: {rss}");
        }
    }

    #[test]
    fn formats_bytes() {
        assert_eq!(fmt_bytes(0), "-");
        assert_eq!(fmt_bytes(52_428_800), "50.0MiB");
    }
}
