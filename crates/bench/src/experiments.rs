//! The experiment implementations (see crate docs and DESIGN.md §4).
//!
//! Every function is deterministic (fixed seeds) and returns typed rows so
//! the harness can render tables and the integration tests can assert the
//! paper's claims on the same data.
//!
//! Each sweep is a cross product of independent trials (family × size,
//! aspect ratio, budget, …); the trial list is fanned out through
//! [`crate::parallel::par_map`], which returns rows in input order, so the
//! tables are byte-identical to a sequential run (asserted by
//! `tests/parallel_determinism.rs`).

use crate::parallel::par_map;
use congest_sim::SimConfig;
use planar_embedding::interface::{achievable_boundary_orders, InterfaceSummary};
use planar_embedding::symmetry::symmetry_break;
use planar_embedding::{embed_baseline, embed_distributed, EmbedderConfig};
use planar_graph::traversal::diameter_exact;
use planar_graph::{Graph, VertexId};
use planar_lib::gen;
use serde::Serialize;

/// The workload families used across experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Family {
    /// Square grid (`D ~ 2 sqrt(n)`).
    Grid,
    /// Grid with diagonals (denser, biconnected).
    TriGrid,
    /// Fan: hub + path (outerplanar, `D = 2`).
    Fan,
    /// Random maximal outerplanar graph.
    Outerplanar,
    /// Random connected planar graph with `m ~ 2n`.
    RandomPlanar,
    /// Random tree.
    Tree,
    /// Subdivided `K_4` (the lower-bound instance).
    K4Subdivided,
}

impl Family {
    /// All families of the T1 sweep.
    pub const ALL: [Family; 7] = [
        Family::Grid,
        Family::TriGrid,
        Family::Fan,
        Family::Outerplanar,
        Family::RandomPlanar,
        Family::Tree,
        Family::K4Subdivided,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Grid => "grid",
            Family::TriGrid => "tri-grid",
            Family::Fan => "fan",
            Family::Outerplanar => "outerplanar",
            Family::RandomPlanar => "random-planar",
            Family::Tree => "tree",
            Family::K4Subdivided => "k4-subdiv",
        }
    }

    /// Instantiates the family at (approximately) `n` vertices.
    pub fn instantiate(self, n: usize, seed: u64) -> Graph {
        match self {
            Family::Grid => {
                let side = (n as f64).sqrt().round() as usize;
                gen::grid(side.max(2), side.max(2))
            }
            Family::TriGrid => {
                let side = (n as f64).sqrt().round() as usize;
                gen::triangulated_grid(side.max(2), side.max(2))
            }
            Family::Fan => gen::fan(n.max(3)),
            Family::Outerplanar => gen::random_outerplanar(n.max(3), seed),
            Family::RandomPlanar => gen::random_planar(n.max(4), 2 * n, seed),
            Family::Tree => gen::random_tree(n.max(2), seed),
            Family::K4Subdivided => gen::k4_subdivided((n.saturating_sub(4) / 6).max(1) + 1),
        }
    }
}

fn fast_config() -> EmbedderConfig {
    EmbedderConfig {
        sim: SimConfig::default(),
        check_invariants: false,
        ..EmbedderConfig::default()
    }
}

/// The `family × size` trial list shared by the sweep experiments, in the
/// deterministic order the result tables are rendered in.
fn family_size_trials(sizes: &[usize]) -> Vec<(Family, usize)> {
    Family::ALL
        .into_iter()
        .flat_map(|f| sizes.iter().map(move |&n| (f, n)))
        .collect()
}

/// One row of the T1 scaling table.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct T1Row {
    /// Workload family.
    pub family: &'static str,
    /// Actual vertex count.
    pub n: usize,
    /// Exact diameter.
    pub d: u32,
    /// Rounds of the distributed algorithm (Theorem 1.1).
    pub ours_rounds: usize,
    /// Rounds of the trivial gather baseline (footnote 2).
    pub baseline_rounds: usize,
    /// `ours / (D * min(log2 n, D))` — should be a family-dependent constant.
    pub normalized: f64,
    /// Recursion depth.
    pub depth: usize,
}

/// One T1 trial (used by both the parallel sweep and the determinism test).
pub fn t1_trial(family: Family, n: usize) -> T1Row {
    let g = family.instantiate(n, 42);
    let d = diameter_exact(&g).expect("connected instance");
    let ours = embed_distributed(&g, &fast_config()).expect("planar instance");
    let base = embed_baseline(&g, &SimConfig::default()).expect("planar instance");
    let nn = g.vertex_count() as f64;
    let denom = (d as f64).max(1.0) * nn.log2().min(d as f64).max(1.0);
    T1Row {
        family: family.name(),
        n: g.vertex_count(),
        d,
        ours_rounds: ours.metrics.rounds,
        baseline_rounds: base.metrics.rounds,
        normalized: ours.metrics.rounds as f64 / denom,
        depth: ours.stats.depth,
    }
}

/// T1 — Theorem 1.1 scaling sweep over families and sizes.
pub fn t1_scaling(sizes: &[usize]) -> Vec<T1Row> {
    par_map(family_size_trials(sizes), |(family, n)| t1_trial(family, n))
}

/// One row of the T2 diameter-sweep table.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct T2Row {
    /// Instance description.
    pub instance: String,
    /// Vertex count.
    pub n: usize,
    /// Exact diameter.
    pub d: u32,
    /// Rounds of the distributed algorithm.
    pub ours_rounds: usize,
    /// Rounds of the trivial baseline.
    pub baseline_rounds: usize,
    /// `ours / D` — should grow like `min(log n, D)`, i.e. stay ~flat
    /// within the sweep once `D >= log n`.
    pub rounds_per_d: f64,
}

/// T2 — round growth in `D` at (near-)fixed `n`: grids of fixed area and
/// varying aspect ratio (the subdivided-`K_4` diameter sweep is T5).
pub fn t2_diameter(area: usize) -> Vec<T2Row> {
    let mut rc = Vec::new();
    let mut r = (area as f64).sqrt().round() as usize;
    while r >= 4 {
        rc.push((r, area / r));
        r /= 2;
    }
    par_map(rc, |(r, c)| {
        let g = gen::grid(r, c);
        let d = diameter_exact(&g).expect("grid connected");
        let ours = embed_distributed(&g, &fast_config()).expect("grid planar");
        let base = embed_baseline(&g, &SimConfig::default()).expect("grid planar");
        T2Row {
            instance: format!("grid {r}x{c}"),
            n: g.vertex_count(),
            d,
            ours_rounds: ours.metrics.rounds,
            baseline_rounds: base.metrics.rounds,
            rounds_per_d: ours.metrics.rounds as f64 / d as f64,
        }
    })
}

/// One row of the T3 structural table (Lemmas 4.2/4.3).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct T3Row {
    /// Workload family.
    pub family: &'static str,
    /// Vertex count.
    pub n: usize,
    /// Recursion depth reached.
    pub depth: usize,
    /// The bound `log_{3/2} n` of Lemma 4.3.
    pub depth_bound: f64,
    /// Largest `|P_i| / |T_s|` (Lemma 4.2: `<= 2/3`).
    pub max_child_ratio: f64,
    /// Largest number of parts at any restricted merge (bounded `O(D)`).
    pub max_final_parts: usize,
    /// Exact diameter, for the `O(D)` comparison.
    pub d: u32,
}

/// T3 — partition structure across families.
pub fn t3_partition(sizes: &[usize]) -> Vec<T3Row> {
    par_map(family_size_trials(sizes), |(family, n)| {
        let g = family.instantiate(n, 7);
        let d = diameter_exact(&g).expect("connected instance");
        let out = embed_distributed(&g, &fast_config()).expect("planar instance");
        T3Row {
            family: family.name(),
            n: g.vertex_count(),
            depth: out.stats.depth,
            depth_bound: (g.vertex_count() as f64).ln() / 1.5f64.ln(),
            max_child_ratio: out.stats.max_child_ratio(),
            max_final_parts: out.stats.max_final_parts(),
            d,
        }
    })
}

/// One row of the T4 symmetry-breaking table (Lemma 5.3).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct T4Row {
    /// Vertex count of the outerplanar instance.
    pub n: usize,
    /// Kernel rounds (the lemma: O(1); our construction: exactly 5).
    pub rounds: usize,
    /// Number of stars produced.
    pub stars: usize,
    /// Fraction of nodes in stars or 2-chains (merge progress).
    pub merged_fraction: f64,
    /// Number of long (>= 3) monotone paths set aside.
    pub long_paths: usize,
}

/// T4 — Lemma 5.3 on random maximal outerplanar graphs with greedy proper
/// colorings.
pub fn t4_symmetry(sizes: &[usize]) -> Vec<T4Row> {
    par_map(sizes.to_vec(), |n| {
        let g = gen::random_outerplanar(n, 11);
        let colors = greedy_coloring(&g);
        let out = symmetry_break(&g, &colors, &SimConfig::default())
            .expect("symmetry breaking never fails on valid input");
        let merged: usize = out.stars.iter().map(|(_, l)| l.len() + 1).sum::<usize>()
            + out
                .chains
                .iter()
                .filter(|c| c.len() == 2)
                .map(|_| 2)
                .sum::<usize>();
        T4Row {
            n,
            rounds: out.rounds,
            stars: out.stars.len(),
            merged_fraction: merged as f64 / n as f64,
            long_paths: out.chains.iter().filter(|c| c.len() >= 3).count(),
        }
    })
}

/// Greedy proper coloring by ascending vertex id.
pub fn greedy_coloring(g: &Graph) -> Vec<u32> {
    let mut colors = vec![u32::MAX; g.vertex_count()];
    for v in g.vertices() {
        let used: Vec<u32> = g
            .neighbors(v)
            .iter()
            .filter(|w| w.index() < v.index())
            .map(|w| colors[w.index()])
            .collect();
        colors[v.index()] = (0..).find(|c| !used.contains(c)).expect("finite colors");
    }
    colors
}

/// One row of the T5 lower-bound table (footnote 1).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct T5Row {
    /// Subdivision length `L` (each `K_4` edge becomes an `L`-edge path).
    pub len: usize,
    /// Vertex count.
    pub n: usize,
    /// Exact diameter.
    pub d: u32,
    /// Rounds of the distributed algorithm.
    pub ours_rounds: usize,
    /// `rounds >= D` (the trivial lower bound must be respected).
    pub at_least_d: bool,
    /// The output is a genus-0 embedding — the global consistency the
    /// lower-bound argument is about.
    pub consistent: bool,
}

/// T5 — the `Omega(D)` instance: subdivided `K_4` with growing `L`.
pub fn t5_lower_bound(lens: &[usize]) -> Vec<T5Row> {
    par_map(lens.to_vec(), |len| {
        let g = gen::k4_subdivided(len);
        let d = diameter_exact(&g).expect("connected");
        let out = embed_distributed(&g, &fast_config()).expect("planar");
        T5Row {
            len,
            n: g.vertex_count(),
            d,
            ours_rounds: out.metrics.rounds,
            at_least_d: out.metrics.rounds >= d as usize,
            consistent: out.rotation.is_planar_embedding(),
        }
    })
}

/// One row of the T6 congestion audit.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct T6Row {
    /// Workload family.
    pub family: &'static str,
    /// Vertex count.
    pub n: usize,
    /// The configured per-edge word budget.
    pub budget_words: usize,
    /// Max words observed on any directed edge in any round.
    pub max_words_edge_round: usize,
    /// Total messages.
    pub messages: usize,
    /// Total bits (`words * ceil(log2 n)`).
    pub bits: usize,
    /// Whether the CONGEST discipline held throughout.
    pub within_budget: bool,
}

/// T6 — CONGEST discipline audit across families.
pub fn t6_congestion(sizes: &[usize]) -> Vec<T6Row> {
    let budget = SimConfig::default().budget_words;
    par_map(family_size_trials(sizes), move |(family, n)| {
        let g = family.instantiate(n, 3);
        let out = embed_distributed(&g, &fast_config()).expect("planar instance");
        T6Row {
            family: family.name(),
            n: g.vertex_count(),
            budget_words: budget,
            max_words_edge_round: out.metrics.max_words_edge_round,
            messages: out.metrics.messages,
            bits: out.metrics.bits(g.vertex_count()),
            within_budget: out.metrics.max_words_edge_round <= budget,
        }
    })
}

/// One row of the F-obs32 interface-characterization experiment.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct FobsRow {
    /// Instance description.
    pub instance: &'static str,
    /// Number of achievable boundary orders (brute-forced over all rotation
    /// systems).
    pub achievable_orders: usize,
    /// Number predicted by the Observation 3.2 characterization.
    pub predicted_orders: usize,
    /// Number of blocks in the interface summary.
    pub summary_blocks: usize,
    /// Summary size in words.
    pub summary_words: usize,
    /// Whether prediction matches the brute force exactly.
    pub matches: bool,
}

/// One F-obs32 catalog entry: (name, edges, half-edge attachments,
/// predicted #orders up to rotation+reflection).
type FobsCase = (&'static str, Vec<(u32, u32)>, Vec<u32>, usize);

/// F-obs32 — exhaustive validation of Observation 3.2 on a catalog of small
/// parts (the checkable content of Figures 2–4).
pub fn fobs_interface() -> Vec<FobsRow> {
    // Predictions derived from the characterization: per-block orders fixed
    // up to flip; free permutation around cut vertices; bundles consecutive.
    let catalog: Vec<FobsCase> = vec![
        (
            "triangle, 3 half-edges",
            vec![(0, 1), (1, 2), (2, 0)],
            vec![0, 1, 2],
            1,
        ),
        ("path, 2 half-edges", vec![(0, 1), (1, 2)], vec![0, 2], 1),
        (
            "bowtie, 4 half-edges",
            vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)],
            vec![0, 1, 3, 4],
            2,
        ),
        (
            "4 pendants at a cut vertex",
            vec![(4, 0), (4, 1), (4, 2), (4, 3)],
            vec![0, 1, 2, 3],
            3,
        ),
        (
            "square block, 4 half-edges",
            vec![(0, 1), (1, 2), (2, 3), (3, 0)],
            vec![0, 1, 2, 3],
            1,
        ),
        (
            "triangle + pendant",
            vec![(0, 1), (1, 2), (2, 0), (2, 3)],
            vec![0, 1, 3],
            1,
        ),
    ];
    let mut rows = Vec::new();
    for (name, edges, atts, predicted) in catalog {
        let n = edges.iter().flat_map(|&(a, b)| [a, b]).max().unwrap() as usize + 1;
        let g = Graph::from_edges(n, edges).expect("catalog edges valid");
        let half: Vec<(VertexId, u32)> = atts
            .iter()
            .enumerate()
            .map(|(i, &a)| (VertexId(a), i as u32))
            .collect();
        let orders = achievable_boundary_orders(&g, &half);
        let relevant: Vec<VertexId> = atts.iter().map(|&a| VertexId(a)).collect();
        let summary = InterfaceSummary::compute(&g, &relevant).expect("catalog parts planar");
        rows.push(FobsRow {
            instance: name,
            achievable_orders: orders.len(),
            predicted_orders: predicted,
            summary_blocks: summary.blocks.len(),
            summary_words: summary.words(),
            matches: orders.len() == predicted,
        });
    }
    rows
}

/// One row of the F-safe experiment.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct FsafeRow {
    /// Workload family.
    pub family: &'static str,
    /// Vertex count.
    pub n: usize,
    /// Whether the run (with full invariant checking: safety of every
    /// partition, co-facial boundaries of every merged part) succeeded.
    pub all_invariants_held: bool,
    /// Number of merges performed (each one re-verified Definition 3.1's
    /// consequence).
    pub merges_checked: usize,
}

/// F-safe — runs the embedder with full invariant checking (Definition 3.1
/// at every partition, pinned-embedding feasibility at every merge).
pub fn fsafe(sizes: &[usize]) -> Vec<FsafeRow> {
    let cfg = EmbedderConfig {
        sim: SimConfig::default(),
        check_invariants: true,
        ..EmbedderConfig::default()
    };
    par_map(family_size_trials(sizes), move |(family, n)| {
        let g = family.instantiate(n, 5);
        match embed_distributed(&g, &cfg) {
            Ok(o) => FsafeRow {
                family: family.name(),
                n: g.vertex_count(),
                all_invariants_held: true,
                merges_checked: o.stats.merges.len(),
            },
            Err(_) => FsafeRow {
                family: family.name(),
                n: g.vertex_count(),
                all_invariants_held: false,
                merges_checked: 0,
            },
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_small_sweep_has_expected_shape() {
        let rows = t1_scaling(&[64]);
        assert_eq!(rows.len(), Family::ALL.len());
        for r in &rows {
            assert!(r.ours_rounds > 0);
            assert!(r.normalized > 0.0);
        }
    }

    #[test]
    fn t4_rounds_are_constant() {
        for r in t4_symmetry(&[16, 64, 256]) {
            assert_eq!(r.rounds, 5);
            assert!(r.merged_fraction > 0.0);
        }
    }

    #[test]
    fn t5_lower_bound_respected() {
        for r in t5_lower_bound(&[4, 8]) {
            assert!(r.at_least_d);
            assert!(r.consistent);
        }
    }

    #[test]
    fn t6_budget_never_violated() {
        for r in t6_congestion(&[48]) {
            assert!(r.within_budget, "{:?}", r);
        }
    }

    #[test]
    fn fobs_matches_predictions() {
        for r in fobs_interface() {
            assert!(r.matches, "{:?}", r);
        }
    }

    #[test]
    fn fsafe_small() {
        for r in fsafe(&[32]) {
            assert!(r.all_invariants_held, "{:?}", r);
            assert!(r.merges_checked > 0 || r.n <= 2);
        }
    }

    #[test]
    fn family_instantiation_is_planar_connected() {
        for f in Family::ALL {
            let g = f.instantiate(60, 1);
            assert!(g.is_connected(), "{}", f.name());
            assert!(planar_lib::is_planar(&g), "{}", f.name());
        }
    }
}

/// One row of the budget-ablation experiment.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct AblateRow {
    /// Workload family.
    pub family: &'static str,
    /// Per-edge budget in words (message size = budget * ceil(log2 n) bits).
    pub budget_words: usize,
    /// Rounds of the distributed algorithm under that budget.
    pub ours_rounds: usize,
    /// Rounds of the trivial baseline under that budget.
    pub baseline_rounds: usize,
}

/// Ablation: how the per-edge word budget `B` (the constant inside the
/// model's `O(log n)` bits) trades against rounds. The baseline moves
/// `Theta(n)` words through the root and so improves ~linearly with `B`;
/// the distributed algorithm's merge traffic is summary-sized, so it
/// saturates quickly — evidence that the algorithm, not bandwidth, is
/// doing the work.
pub fn ablate_budget(n: usize) -> Vec<AblateRow> {
    let trials: Vec<(Family, usize)> = [Family::Grid, Family::Fan, Family::Outerplanar]
        .into_iter()
        .flat_map(|f| [4usize, 8, 16, 32].into_iter().map(move |b| (f, b)))
        .collect();
    par_map(trials, move |(family, budget)| {
        let g = family.instantiate(n, 21);
        let sim = SimConfig {
            budget_words: budget,
            ..Default::default()
        };
        let cfg = EmbedderConfig {
            sim: sim.clone(),
            check_invariants: false,
            ..EmbedderConfig::default()
        };
        let ours = embed_distributed(&g, &cfg).expect("planar instance");
        let base = embed_baseline(&g, &sim).expect("planar instance");
        AblateRow {
            family: family.name(),
            budget_words: budget,
            ours_rounds: ours.metrics.rounds,
            baseline_rounds: base.metrics.rounds,
        }
    })
}
