//! Certification sweep: cost of the proof-labeling layer — the record
//! behind `BENCH_cert.json`.
//!
//! For each substrate (`grid`, `tri-grid`, `outerplanar`, `random-planar`)
//! × size, the sweep embeds the graph with the distributed certification
//! epilogue enabled and records what the layer costs on top of the
//! embedding:
//!
//! * **certificate size** — max and mean per-node certificate in words
//!   (the `O(Δ log n)` bits claim: at most `10 + 2·Δ(v)` words per node),
//! * **verification cost** — verifier rounds (O(1): 2 fault-free) and
//!   total words moved by the one-exchange verification,
//! * **soundness spot-check** — one seeded mutation per
//!   [`MutationClass`](planar_cert::MutationClass) must draw at least one
//!   rejecting node (counted in `mutations_rejected`, compared against
//!   `mutations_applied`).
//!
//! Everything is seeded from the row coordinates: repeat sweeps return
//! identical rows (timings are deliberately not recorded).

use congest_sim::SimConfig;
use planar_cert::{apply_mutation, mutation_classes, verify_orders_with, Kernel};
use planar_embedding::{embed_distributed, EmbedderConfig};
use planar_graph::Graph;
use planar_lib::gen;

use crate::parallel::par_map;

/// Substrate families swept.
pub const FAMILIES: [&str; 4] = ["grid", "tri-grid", "outerplanar", "random-planar"];

/// One row of the certification sweep: a substrate × size cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CertRow {
    /// Substrate family.
    pub family: &'static str,
    /// Vertex count of the generated instance.
    pub n: usize,
    /// Maximum vertex degree (the Δ of the per-node size bound).
    pub max_degree: usize,
    /// Embedding rounds (without the certification phase).
    pub embed_rounds: usize,
    /// Verifier rounds (the O(1) claim; 2 on every non-trivial instance).
    pub cert_rounds: usize,
    /// Largest per-node certificate, in words.
    pub max_cert_words: usize,
    /// Mean per-node certificate size, in words.
    pub mean_cert_words: f64,
    /// Total words moved by the verification exchange.
    pub verify_words: usize,
    /// Whether every node accepted the honest certificates.
    pub accepted: bool,
    /// Whether `max_cert_words <= 10 + 2·Δ` held (the size bound).
    pub size_bound_ok: bool,
    /// Seeded mutations applied (one per class with a valid site).
    pub mutations_applied: usize,
    /// Mutations that drew at least one rejecting node (must equal
    /// `mutations_applied`).
    pub mutations_rejected: usize,
}

fn substrate(family: &'static str, n: usize) -> Graph {
    let side = (n as f64).sqrt().round() as usize;
    match family {
        "grid" => gen::grid(side, side),
        "tri-grid" => gen::triangulated_grid(side, side),
        "outerplanar" => gen::random_outerplanar(n, 0xC0FF_EE00 ^ n as u64),
        "random-planar" => gen::random_planar(n, 2 * n, 0xBEEF_0000 ^ n as u64),
        other => unreachable!("unknown cert substrate {other}"),
    }
}

/// Deterministic per-mutation seed from the row coordinates.
fn mutation_seed(fam_idx: usize, n: usize, class_idx: usize) -> u64 {
    0x9E37_79B9_7F4A_7C15u64
        .wrapping_mul(fam_idx as u64 + 1)
        .wrapping_add((n as u64) << 16)
        .wrapping_add(class_idx as u64)
}

/// Runs one certification cell: certified embedding plus the per-class
/// mutation spot-check.
///
/// # Panics
///
/// Panics if the substrate fails to embed or certify — honest inputs must
/// be accepted (completeness), and every applied mutation must be
/// rejected (soundness).
pub fn cert_cell(family: &'static str, fam_idx: usize, n: usize) -> CertRow {
    let g = substrate(family, n);
    let cfg = EmbedderConfig {
        check_invariants: false,
        certify: true,
        ..EmbedderConfig::default()
    };
    let out = embed_distributed(&g, &cfg).expect("substrate embeds");
    let cert = out
        .certification
        .as_ref()
        .expect("certification was requested");
    assert!(
        cert.accepted(),
        "honest certificates rejected on {family}/n={n}: {:?}",
        cert.report.rejections
    );

    let max_degree = g
        .vertices()
        .map(|v| g.neighbors(v).len())
        .max()
        .unwrap_or(0);
    let total: usize = cert.report.total_cert_words;
    let mean_cert_words = total as f64 / g.vertex_count() as f64;

    // Soundness spot-check: one seeded mutation per class (classes with no
    // site on this substrate are skipped, not counted).
    let rot = &out.rotation;
    let mut mutations_applied = 0;
    let mut mutations_rejected = 0;
    for (class_idx, class) in mutation_classes().into_iter().enumerate() {
        let seed = mutation_seed(fam_idx, n, class_idx);
        let Some((orders, mcerts, _)) = apply_mutation(&g, rot, &cert.certificates, class, seed)
        else {
            continue;
        };
        mutations_applied += 1;
        let report = verify_orders_with(
            &g,
            &orders,
            &mcerts,
            &SimConfig::default(),
            None,
            Kernel::Fast,
        )
        .expect("verifier runs");
        if !report.accepted && !report.rejections.is_empty() {
            mutations_rejected += 1;
        }
    }

    CertRow {
        family,
        n: g.vertex_count(),
        max_degree,
        embed_rounds: out.metrics.rounds - cert.report.metrics.rounds,
        cert_rounds: cert.report.metrics.rounds,
        max_cert_words: cert.report.max_cert_words,
        mean_cert_words,
        verify_words: cert.report.metrics.words,
        accepted: cert.accepted(),
        size_bound_ok: cert.report.max_cert_words <= 10 + 2 * max_degree,
        mutations_applied,
        mutations_rejected,
    }
}

/// Runs the full sweep (`FAMILIES` × `sizes`), fanning the cells out
/// through [`par_map`], printing one line per row. Deterministic: repeat
/// calls return identical rows.
pub fn cert_sweep(sizes: &[usize]) -> Vec<CertRow> {
    let cells: Vec<(&'static str, usize, usize)> = FAMILIES
        .into_iter()
        .enumerate()
        .flat_map(|(fam_idx, family)| sizes.iter().map(move |&n| (family, fam_idx, n)))
        .collect();
    let rows = par_map(cells, |(family, fam_idx, n)| cert_cell(family, fam_idx, n));
    for r in &rows {
        println!(
            "cert/{:<13} n={:<6} deg={:<3} certRounds={} maxWords={} meanWords={:.1} verifyWords={} mutations={}/{}",
            r.family,
            r.n,
            r.max_degree,
            r.cert_rounds,
            r.max_cert_words,
            r.mean_cert_words,
            r.verify_words,
            r.mutations_rejected,
            r.mutations_applied,
        );
    }
    rows
}

/// Renders rows as the `BENCH_cert.json` document (hand-rolled JSON, as
/// `BENCH_chaos.json`: every field numeric or a known-safe literal).
pub fn to_json(rows: &[CertRow]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"embedding-certification\",\n");
    s.push_str(
        "  \"metric\": \"per-node certificate size (words, <= 10 + 2*deg) and O(1)-round \
         distributed verification cost; per-class mutation soundness spot-check\",\n",
    );
    s.push_str("  \"cells\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\"family\": \"{}\", \"n\": {}, \"max_degree\": {}, ",
                "\"embed_rounds\": {}, \"cert_rounds\": {}, ",
                "\"max_cert_words\": {}, \"mean_cert_words\": {:.2}, ",
                "\"verify_words\": {}, \"accepted\": {}, \"size_bound_ok\": {}, ",
                "\"mutations_applied\": {}, \"mutations_rejected\": {}}}{}\n"
            ),
            r.family,
            r.n,
            r.max_degree,
            r.embed_rounds,
            r.cert_rounds,
            r.max_cert_words,
            r.mean_cert_words,
            r.verify_words,
            r.accepted,
            r.size_bound_ok,
            r.mutations_applied,
            r.mutations_rejected,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Writes [`to_json`] to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_json(path: &std::path::Path, rows: &[CertRow]) -> std::io::Result<()> {
    std::fs::write(path, to_json(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cert_cell_is_deterministic_and_sound() {
        let a = cert_cell("grid", 0, 64);
        let b = cert_cell("grid", 0, 64);
        assert_eq!(a, b, "cert cells must replay identically");
        assert!(a.accepted);
        assert!(a.size_bound_ok);
        assert_eq!(a.cert_rounds, 2, "verification must be O(1)");
        assert_eq!(
            a.mutations_rejected, a.mutations_applied,
            "every applied mutation must be rejected"
        );
        assert!(a.mutations_applied >= 6, "grid has sites for most classes");
    }

    #[test]
    fn all_families_certify() {
        for (fam_idx, family) in FAMILIES.into_iter().enumerate() {
            let r = cert_cell(family, fam_idx, 36);
            assert!(r.accepted, "{family}");
            assert!(r.size_bound_ok, "{family}");
            assert_eq!(r.mutations_rejected, r.mutations_applied, "{family}");
        }
    }

    #[test]
    fn json_record_is_well_formed_enough() {
        let rows = vec![cert_cell("tri-grid", 1, 36)];
        let j = to_json(&rows);
        assert!(j.contains("\"max_cert_words\""));
        assert!(j.contains("\"mutations_rejected\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
