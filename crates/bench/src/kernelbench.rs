//! Simulation-kernel throughput benchmark: the perf record behind
//! `BENCH_kernel.json`.
//!
//! Measures delivered messages per second of a single-source flood over
//! planar substrates (square grid and triangulated grid) for **both**
//! kernels:
//!
//! * `fast` — the allocation-free arc-indexed kernel ([`congest_sim::run`]);
//! * `reference` — the original seed kernel
//!   ([`congest_sim::reference::run_reference`]), kept as the baseline the
//!   speedup is measured against.
//!
//! The flood program is the canonical kernel microworkload: every node
//! forwards exactly once on first receipt, so total delivered messages are
//! exactly `2m + deg(source)`-ish (each node fires its whole out-star once)
//! and the round count equals the source's eccentricity. Both kernels must
//! report identical [`Metrics`] on every case — the measurement doubles as
//! a conformance check.
//!
//! Each row records the `threads` pinned for the fast kernel
//! (`SimConfig::threads`): `1` times the sequential round loop, and large
//! substrates (n >= 50k) get an additional `threads = 4` row timing the
//! parallel round execution path against the same sequential reference
//! baseline. The conformance assert holds regardless of the thread count
//! (parallel delivery is bit-deterministic by construction).
//!
//! Entry points: [`kernel_bench`] produces rows, [`write_json`] emits the
//! `BENCH_kernel.json` record (hand-rolled JSON; `serde_json` is not
//! available offline, see `shims/README.md`). Reachable via
//! `cargo run -p planar-bench --bin harness -- bench-kernel` and
//! `cargo bench -p planar-bench --bench kernel`.

use std::time::Instant;

use congest_sim::reference::run_reference;
use congest_sim::{Metrics, NodeCtx, NodeProgram, SimConfig, Simulator};
use planar_graph::{Graph, VertexId};
use planar_lib::gen;

/// Single-source flood: node 0 announces in round 0; every other node
/// forwards one word to its whole neighborhood on first receipt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Flood {
    seen: bool,
}

impl NodeProgram for Flood {
    type Msg = u32;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
        if ctx.id == VertexId(0) {
            self.seen = true;
            ctx.neighbors.iter().map(|&w| (w, 0)).collect()
        } else {
            Vec::new()
        }
    }

    fn on_round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
        if self.seen || inbox.is_empty() {
            return Vec::new();
        }
        self.seen = true;
        let hop = inbox.iter().map(|&(_, h)| h).min().unwrap_or(0) + 1;
        ctx.neighbors.iter().map(|&w| (w, hop)).collect()
    }
}

/// Fresh flood programs for `g` (all unseen; the kernel calls `init`).
pub fn flood_programs(g: &Graph) -> Vec<Flood> {
    vec![Flood { seen: false }; g.vertex_count()]
}

/// One benchmark case: a flood over one substrate, timed on both kernels.
#[derive(Clone, Debug)]
pub struct KernelBenchRow {
    /// Substrate family (`"grid"` or `"tri-grid"`).
    pub family: &'static str,
    /// Vertex count.
    pub n: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Rounds to quiescence (identical on both kernels).
    pub rounds: usize,
    /// Messages delivered per run (identical on both kernels).
    pub messages: usize,
    /// Measured iterations per kernel (best-of is reported).
    pub iters: usize,
    /// Worker threads pinned for the fast kernel (`SimConfig::threads`).
    /// The reference kernel is always sequential; rows with `threads > 1`
    /// measure the parallel round execution path against the same baseline.
    pub threads: usize,
    /// Fastest wall-clock run of the arc-indexed kernel, seconds.
    pub fast_secs: f64,
    /// Fastest wall-clock run of the seed reference kernel, seconds.
    pub reference_secs: f64,
}

impl KernelBenchRow {
    /// Delivered messages per second, fast kernel.
    pub fn fast_mps(&self) -> f64 {
        self.messages as f64 / self.fast_secs
    }

    /// Delivered messages per second, reference kernel.
    pub fn reference_mps(&self) -> f64 {
        self.messages as f64 / self.reference_secs
    }

    /// Throughput ratio fast / reference.
    pub fn speedup(&self) -> f64 {
        self.fast_mps() / self.reference_mps()
    }
}

fn timed(mut f: impl FnMut() -> Metrics) -> (f64, Metrics) {
    let t0 = Instant::now();
    let m = f();
    (t0.elapsed().as_secs_f64(), m)
}

/// Times one substrate on both kernels; panics if their [`Metrics`]
/// disagree (the determinism contract).
///
/// The two kernels are timed *interleaved* (fast, reference, fast,
/// reference, …) and best-of-`iters` is reported for each, so machine
/// drift and allocator/cache state affect both measurements symmetrically
/// instead of biasing whichever kernel runs last.
pub fn measure(family: &'static str, g: &Graph, iters: usize, threads: usize) -> KernelBenchRow {
    let cfg = SimConfig {
        threads: Some(threads),
        ..SimConfig::default()
    };
    // A repeat caller holds one Simulator; buffer capacity carries over.
    let mut sim: Simulator<u32> = Simulator::new();
    let mut run_fast = || {
        sim.run(g, flood_programs(g), &cfg)
            .expect("flood stays within budget")
            .metrics
    };
    let run_ref = || {
        run_reference(g, flood_programs(g), &cfg)
            .expect("flood stays within budget")
            .metrics
    };
    let fast_m = run_fast(); // warm-up, and the metrics all runs must reproduce
    let ref_m = run_ref();
    assert_eq!(
        fast_m, ref_m,
        "fast and reference kernels diverged on {family}"
    );
    let mut fast_secs = f64::INFINITY;
    let mut reference_secs = f64::INFINITY;
    for _ in 0..iters {
        let (dt, m) = timed(&mut run_fast);
        assert_eq!(
            m, fast_m,
            "fast kernel produced different metrics across runs"
        );
        fast_secs = fast_secs.min(dt);
        let (dt, m) = timed(run_ref);
        assert_eq!(
            m, ref_m,
            "reference kernel produced different metrics across runs"
        );
        reference_secs = reference_secs.min(dt);
    }
    KernelBenchRow {
        family,
        n: g.vertex_count(),
        edges: g.edge_count(),
        rounds: fast_m.rounds,
        messages: fast_m.messages,
        iters,
        threads,
        fast_secs,
        reference_secs,
    }
}

/// Measured iterations for a substrate of `n` vertices: more for small
/// (noisy) cases, fewer for the big ones.
fn iters_for(n: usize) -> usize {
    if n <= 2_000 {
        20
    } else if n <= 20_000 {
        7
    } else {
        3
    }
}

/// Vertex count at which the sweep adds a parallel fast-kernel row on top
/// of the sequential one (small floods cannot amortize the fan-out).
const PAR_ROW_MIN_N: usize = 50_000;

/// Runs the flood benchmark over grid and triangulated-grid substrates at
/// (approximately) each requested vertex count, printing one line per case.
///
/// Every substrate gets a sequential (`threads = 1`) row; substrates with
/// n >= 50k additionally get a `threads = 4` row timing the parallel round
/// execution path against the same sequential reference baseline (the
/// conformance assert inside [`measure`] doubles as the outputs-identical
/// check). `iters` is decided once per substrate, so the sequential and
/// parallel rows of a cell are directly comparable.
pub fn kernel_bench(sizes: &[usize]) -> Vec<KernelBenchRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        let side = (n as f64).sqrt().round() as usize;
        for (family, g) in [
            ("grid", gen::grid(side, side)),
            ("tri-grid", gen::triangulated_grid(side, side)),
        ] {
            let iters = iters_for(g.vertex_count());
            let threads: &[usize] = if g.vertex_count() >= PAR_ROW_MIN_N {
                &[1, 4]
            } else {
                &[1]
            };
            for &t in threads {
                let row = measure(family, &g, iters, t);
                println!(
                    "flood/{:<9} n={:<7} t={:<2} rounds={:<4} msgs={:<8} fast={:>10.6}s ref={:>10.6}s  {:>8.0} vs {:>8.0} msg/s  speedup {:.2}x",
                    row.family,
                    row.n,
                    row.threads,
                    row.rounds,
                    row.messages,
                    row.fast_secs,
                    row.reference_secs,
                    row.fast_mps(),
                    row.reference_mps(),
                    row.speedup(),
                );
                rows.push(row);
            }
        }
    }
    rows
}

/// Renders rows as the `BENCH_kernel.json` document. Hand-rolled: every
/// field is numeric or a known-safe literal, so no escaping is needed.
pub fn to_json(rows: &[KernelBenchRow]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"congest-kernel-flood\",\n");
    s.push_str("  \"metric\": \"delivered messages per second (best of N runs)\",\n");
    s.push_str(&format!(
        "  \"budget_words\": {},\n  \"workloads\": [\n",
        SimConfig::default().budget_words
    ));
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\"family\": \"{}\", \"n\": {}, \"edges\": {}, ",
                "\"rounds\": {}, \"messages\": {}, \"iters\": {}, \"threads\": {}, ",
                "\"fast_secs\": {:.9}, \"reference_secs\": {:.9}, ",
                "\"fast_msgs_per_sec\": {:.1}, \"reference_msgs_per_sec\": {:.1}, ",
                "\"speedup\": {:.3}}}{}\n"
            ),
            r.family,
            r.n,
            r.edges,
            r.rounds,
            r.messages,
            r.iters,
            r.threads,
            r.fast_secs,
            r.reference_secs,
            r.fast_mps(),
            r.reference_mps(),
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Writes [`to_json`] to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_json(path: &std::path::Path, rows: &[KernelBenchRow]) -> std::io::Result<()> {
    std::fs::write(path, to_json(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_covers_graph_and_kernels_agree() {
        let g = gen::grid(8, 8);
        let row = measure("grid", &g, 1, 1);
        assert_eq!(row.n, 64);
        // Every node fires its out-star exactly once.
        assert_eq!(row.messages, 2 * g.edge_count());
        // Source eccentricity on an 8x8 grid from the corner, +1 for the
        // final round of ignored deliveries.
        assert_eq!(row.rounds, 15);
    }

    /// A parallel row reproduces the sequential row's conformance-checked
    /// metrics exactly (the assert inside `measure` compares against the
    /// always-sequential reference kernel, so this is the outputs-identical
    /// guarantee for the `threads > 1` rows of `BENCH_kernel.json`).
    #[test]
    fn parallel_row_matches_sequential_metrics() {
        let g = gen::grid(8, 8);
        let seq = measure("grid", &g, 1, 1);
        let par = measure("grid", &g, 1, 4);
        assert_eq!(par.threads, 4);
        assert_eq!((par.rounds, par.messages), (seq.rounds, seq.messages));
    }

    #[test]
    fn json_record_is_well_formed_enough() {
        let g = gen::grid(4, 4);
        let rows = vec![measure("grid", &g, 1, 1)];
        let j = to_json(&rows);
        assert!(j.contains("\"fast_msgs_per_sec\""));
        assert!(j.contains("\"reference_msgs_per_sec\""));
        assert!(j.contains("\"threads\": 1"));
        assert!(j.contains("\"speedup\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
