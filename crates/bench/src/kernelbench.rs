//! Simulation-kernel throughput benchmark: the perf record behind
//! `BENCH_kernel.json`.
//!
//! Measures delivered messages per second of a single-source flood over
//! planar substrates (square grid, triangulated grid, and random maximal
//! planar) for **both** kernels:
//!
//! * `fast` — the allocation-free arc-indexed kernel ([`congest_sim::run`]);
//! * `reference` — the original seed kernel
//!   ([`congest_sim::reference::run_reference`]), kept as the baseline the
//!   speedup is measured against.
//!
//! The flood program is the canonical kernel microworkload: every node
//! forwards exactly once on first receipt, so total delivered messages are
//! exactly `2m + deg(source)`-ish (each node fires its whole out-star once)
//! and the round count equals the source's eccentricity. Both kernels must
//! report identical [`Metrics`] on every case — the measurement doubles as
//! a conformance check.
//!
//! Each row records the `threads` *requested* for the fast kernel: `1`
//! pins the sequential round loop, and large substrates (n >= 50k) get an
//! additional `threads = 4` row that requests workers the way a user
//! would — through the `PLANAR_THREADS` environment variable — so the
//! kernel's automatic engagement gating applies: the request is capped at
//! the host's real cores and ignored when a round has too little work to
//! amortize the fan-out (`effective_threads` records what actually ran).
//! The conformance assert holds regardless of the thread count (parallel
//! delivery is bit-deterministic by construction).
//!
//! Every row also records the memory the run costs: `kernel_bytes` is the
//! fast kernel's retained arena (chain tables, bit-packed payload pool,
//! scratch — exact, via [`Simulator::memory_bytes`]), reported per node in
//! the printed table, and `peak_rss_bytes` is the process high-water mark
//! after the row ([`crate::mem::peak_rss_bytes`]).
//!
//! [`embed_mem`] is the memory stage behind the million-node acceptance
//! gate: the full distributed embedding pipeline — setup plus the
//! scheduled partition/merge recursion, every byte of it through the
//! kernel arenas ([`embed_recursion_with_memory`]) — on a
//! random-maximal-planar graph, reporting wall time, the execution
//! context's retained kernel footprint, and peak RSS. The centralized
//! fidelity epilogue is deliberately *excluded*: it is a
//! kernel-independent stand-in whose textbook DMP solver is
//! quadratic-ish in the block size (a documented deviation, see the
//! `driver.rs` fidelity note) and would dominate — and at n = 10^6,
//! preclude — the run without exercising one byte of the state this
//! stage measures.
//!
//! Entry points: [`kernel_bench`] produces rows, [`write_json`] emits the
//! `BENCH_kernel.json` record (hand-rolled JSON; `serde_json` is not
//! available offline, see `shims/README.md`). Reachable via
//! `cargo run -p planar-bench --bin harness -- bench-kernel` and
//! `cargo bench -p planar-bench --bench kernel`.

use std::time::Instant;

use congest_sim::reference::run_reference;
use congest_sim::{parallel_plan, pool, Metrics, NodeCtx, NodeProgram, SimConfig, Simulator};
use planar_embedding::{embed_recursion_with_memory, EmbedderConfig};
use planar_graph::{Graph, VertexId};
use planar_lib::gen;

use crate::mem;

/// Single-source flood: node 0 announces in round 0; every other node
/// forwards one word to its whole neighborhood on first receipt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Flood {
    seen: bool,
}

impl NodeProgram for Flood {
    type Msg = u32;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, u32)> {
        if ctx.id == VertexId(0) {
            self.seen = true;
            ctx.neighbors.iter().map(|&w| (w, 0)).collect()
        } else {
            Vec::new()
        }
    }

    fn on_round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(VertexId, u32)]) -> Vec<(VertexId, u32)> {
        if self.seen || inbox.is_empty() {
            return Vec::new();
        }
        self.seen = true;
        let hop = inbox.iter().map(|&(_, h)| h).min().unwrap_or(0) + 1;
        ctx.neighbors.iter().map(|&w| (w, hop)).collect()
    }
}

/// Fresh flood programs for `g` (all unseen; the kernel calls `init`).
pub fn flood_programs(g: &Graph) -> Vec<Flood> {
    vec![Flood { seen: false }; g.vertex_count()]
}

/// One benchmark case: a flood over one substrate, timed on both kernels.
#[derive(Clone, Debug)]
pub struct KernelBenchRow {
    /// Substrate family (`"grid"` or `"tri-grid"`).
    pub family: &'static str,
    /// Vertex count.
    pub n: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Rounds to quiescence (identical on both kernels).
    pub rounds: usize,
    /// Messages delivered per run (identical on both kernels).
    pub messages: usize,
    /// Measured iterations per kernel (best-of is reported).
    pub iters: usize,
    /// Worker threads *requested* for the fast kernel: `1` pins the
    /// sequential loop; `> 1` requests workers via `PLANAR_THREADS`, i.e.
    /// through the kernel's automatic core/work gating. The reference
    /// kernel is always sequential.
    pub threads: usize,
    /// Worker threads the kernel's engagement plan actually granted
    /// (request capped at the host's real cores; 1 = sequential).
    pub effective_threads: usize,
    /// Fastest wall-clock run of the arc-indexed kernel, seconds.
    pub fast_secs: f64,
    /// Fastest wall-clock run of the seed reference kernel, seconds.
    pub reference_secs: f64,
    /// Retained arena of the fast kernel after the runs: mailbox chain
    /// tables, bit-packed payload pool, per-vertex tables, scratch
    /// (exact, from [`Simulator::memory_bytes`]).
    pub kernel_bytes: usize,
    /// Process peak RSS after this row, bytes (0 = probe unavailable).
    pub peak_rss_bytes: usize,
}

impl KernelBenchRow {
    /// Delivered messages per second, fast kernel.
    pub fn fast_mps(&self) -> f64 {
        self.messages as f64 / self.fast_secs
    }

    /// Delivered messages per second, reference kernel.
    pub fn reference_mps(&self) -> f64 {
        self.messages as f64 / self.reference_secs
    }

    /// Throughput ratio fast / reference.
    pub fn speedup(&self) -> f64 {
        self.fast_mps() / self.reference_mps()
    }

    /// Retained kernel bytes per vertex.
    pub fn bytes_per_node(&self) -> f64 {
        self.kernel_bytes as f64 / self.n as f64
    }
}

/// Scoped `PLANAR_THREADS` override: sets the variable for the lifetime of
/// the guard and restores the previous state on drop, so a multi-thread
/// row's request cannot leak into the next row (or the caller's
/// environment).
struct ThreadsEnvGuard {
    prev: Option<String>,
}

impl ThreadsEnvGuard {
    fn request(threads: usize) -> Self {
        let prev = std::env::var(pool::THREADS_ENV).ok();
        std::env::set_var(pool::THREADS_ENV, threads.to_string());
        ThreadsEnvGuard { prev }
    }
}

impl Drop for ThreadsEnvGuard {
    fn drop(&mut self) {
        match &self.prev {
            Some(v) => std::env::set_var(pool::THREADS_ENV, v),
            None => std::env::remove_var(pool::THREADS_ENV),
        }
    }
}

fn timed(mut f: impl FnMut() -> Metrics) -> (f64, Metrics) {
    let t0 = Instant::now();
    let m = f();
    (t0.elapsed().as_secs_f64(), m)
}

/// Times one substrate on both kernels; panics if their [`Metrics`]
/// disagree (the determinism contract).
///
/// The two kernels are timed *interleaved* (fast, reference, fast,
/// reference, …) and best-of-`iters` is reported for each, so machine
/// drift and allocator/cache state affect both measurements symmetrically
/// instead of biasing whichever kernel runs last.
pub fn measure(family: &'static str, g: &Graph, iters: usize, threads: usize) -> KernelBenchRow {
    // `threads = 1` pins the sequential loop. A multi-thread request goes
    // through `PLANAR_THREADS` (scoped to this row) with `threads: None`,
    // so the kernel's automatic gating — core cap, per-round work floor —
    // decides what actually engages, exactly as it would for a user.
    let _env = (threads > 1).then(|| ThreadsEnvGuard::request(threads));
    let cfg = SimConfig {
        threads: if threads > 1 { None } else { Some(1) },
        ..SimConfig::default()
    };
    let effective_threads = parallel_plan(
        cfg.threads,
        pool::kernel_threads(cfg.threads),
        pool::available_cores(),
    )
    .threads;
    // A repeat caller holds one Simulator; buffer capacity carries over.
    let mut sim: Simulator<u32> = Simulator::new();
    let mut run_fast = || {
        sim.run(g, flood_programs(g), &cfg)
            .expect("flood stays within budget")
            .metrics
    };
    let run_ref = || {
        run_reference(g, flood_programs(g), &cfg)
            .expect("flood stays within budget")
            .metrics
    };
    let fast_m = run_fast(); // warm-up, and the metrics all runs must reproduce
    let ref_m = run_ref();
    assert_eq!(
        fast_m, ref_m,
        "fast and reference kernels diverged on {family}"
    );
    let mut fast_secs = f64::INFINITY;
    let mut reference_secs = f64::INFINITY;
    for _ in 0..iters {
        let (dt, m) = timed(&mut run_fast);
        assert_eq!(
            m, fast_m,
            "fast kernel produced different metrics across runs"
        );
        fast_secs = fast_secs.min(dt);
        let (dt, m) = timed(run_ref);
        assert_eq!(
            m, ref_m,
            "reference kernel produced different metrics across runs"
        );
        reference_secs = reference_secs.min(dt);
    }
    KernelBenchRow {
        family,
        n: g.vertex_count(),
        edges: g.edge_count(),
        rounds: fast_m.rounds,
        messages: fast_m.messages,
        iters,
        threads,
        effective_threads,
        fast_secs,
        reference_secs,
        kernel_bytes: sim.memory_bytes(),
        peak_rss_bytes: mem::peak_rss_bytes(),
    }
}

/// Measured iterations for a substrate of `n` vertices: more for small
/// (noisy) cases, fewer for the big ones.
fn iters_for(n: usize) -> usize {
    if n <= 2_000 {
        20
    } else if n <= 20_000 {
        7
    } else {
        3
    }
}

/// Vertex count at which the sweep adds a parallel fast-kernel row on top
/// of the sequential one (small floods cannot amortize the fan-out).
const PAR_ROW_MIN_N: usize = 50_000;

/// Seed of the random-maximal-planar substrate (fixed: rows must be
/// reproducible run to run).
const RMP_SEED: u64 = 7;

/// Runs the flood benchmark over grid, triangulated-grid, and
/// random-maximal-planar substrates at (approximately) each requested
/// vertex count, printing one line per case.
///
/// Every substrate gets a sequential (`threads = 1`) row; substrates with
/// n >= 50k additionally get a `threads = 4` row timing the parallel round
/// execution path against the same sequential reference baseline (the
/// conformance assert inside [`measure`] doubles as the outputs-identical
/// check). `iters` is decided once per substrate, so the sequential and
/// parallel rows of a cell are directly comparable.
pub fn kernel_bench(sizes: &[usize]) -> Vec<KernelBenchRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        let side = (n as f64).sqrt().round() as usize;
        for (family, g) in [
            ("grid", gen::grid(side, side)),
            ("tri-grid", gen::triangulated_grid(side, side)),
            ("rmp", gen::random_maximal_planar(n, RMP_SEED)),
        ] {
            let iters = iters_for(g.vertex_count());
            let threads: &[usize] = if g.vertex_count() >= PAR_ROW_MIN_N {
                &[1, 4]
            } else {
                &[1]
            };
            for &t in threads {
                let row = measure(family, &g, iters, t);
                println!(
                    "flood/{:<9} n={:<7} t={}/{}  rounds={:<4} msgs={:<8} fast={:>10.6}s ref={:>10.6}s  {:>8.0} vs {:>8.0} msg/s  speedup {:.2}x  {:>5.1} B/node  rss={}",
                    row.family,
                    row.n,
                    row.threads,
                    row.effective_threads,
                    row.rounds,
                    row.messages,
                    row.fast_secs,
                    row.reference_secs,
                    row.fast_mps(),
                    row.reference_mps(),
                    row.speedup(),
                    row.bytes_per_node(),
                    mem::fmt_bytes(row.peak_rss_bytes),
                );
                rows.push(row);
            }
        }
    }
    rows
}

/// One embedding memory measurement over the distributed pipeline: wall
/// time, the execution context's retained kernel footprint, and process
/// peak RSS (see [`embed_mem`]).
#[derive(Clone, Debug)]
pub struct EmbedMemRow {
    /// Substrate family (`"rmp"`).
    pub family: &'static str,
    /// Vertex count.
    pub n: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Wall-clock seconds for the full embedding (graph generation
    /// excluded).
    pub secs: f64,
    /// Simulated CONGEST rounds the embedding consumed.
    pub rounds: usize,
    /// Bytes the execution context's kernel arenas retain when the
    /// recursion finishes ([`embed_recursion_with_memory`]).
    pub kernel_bytes: usize,
    /// Process peak RSS after the run, bytes (0 = probe unavailable).
    pub peak_rss_bytes: usize,
}

impl EmbedMemRow {
    /// Retained kernel-cache bytes per vertex.
    pub fn bytes_per_node(&self) -> f64 {
        self.kernel_bytes as f64 / self.n as f64
    }
}

/// Embeds a random-maximal-planar graph of `n` vertices through the full
/// distributed pipeline (setup + scheduled partition/merge recursion,
/// [`embed_recursion_with_memory`]) and reports the memory cost. This is
/// the million-node acceptance stage: it must *complete* — invariant
/// checking and certification are off, as for every large benchmark run,
/// so the measurement is the distributed pipeline itself. The
/// centralized DMP epilogue is excluded (see the module doc): its
/// quadratic-ish cost is a property of the centralized stand-in, not of
/// the kernel state under test, and including it would cap the stage far
/// below a million nodes.
pub fn embed_mem(n: usize) -> EmbedMemRow {
    let g = gen::random_maximal_planar(n, RMP_SEED);
    let edges = g.edge_count();
    let cfg = EmbedderConfig {
        check_invariants: false,
        certify: false,
        ..EmbedderConfig::default()
    };
    let t0 = Instant::now();
    let (metrics, _stats, kernel_bytes) =
        embed_recursion_with_memory(&g, &cfg).expect("substrate is planar");
    let secs = t0.elapsed().as_secs_f64();
    EmbedMemRow {
        family: "rmp",
        n,
        edges,
        secs,
        rounds: metrics.rounds,
        kernel_bytes,
        peak_rss_bytes: mem::peak_rss_bytes(),
    }
}

/// Runs [`embed_mem`] for each requested size, printing one line per run.
pub fn embed_mem_stage(sizes: &[usize]) -> Vec<EmbedMemRow> {
    sizes
        .iter()
        .map(|&n| {
            let row = embed_mem(n);
            println!(
                "embed/{:<9} n={:<8} rounds={:<8} secs={:>9.3}  kernel={} ({:.1} B/node)  rss={}",
                row.family,
                row.n,
                row.rounds,
                row.secs,
                mem::fmt_bytes(row.kernel_bytes),
                row.bytes_per_node(),
                mem::fmt_bytes(row.peak_rss_bytes),
            );
            row
        })
        .collect()
}

/// Renders rows as the `BENCH_kernel.json` document. Hand-rolled: every
/// field is numeric or a known-safe literal, so no escaping is needed.
pub fn to_json(rows: &[KernelBenchRow], embeds: &[EmbedMemRow]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"congest-kernel-flood\",\n");
    s.push_str("  \"metric\": \"delivered messages per second (best of N runs)\",\n");
    s.push_str(&format!(
        "  \"budget_words\": {},\n  \"workloads\": [\n",
        SimConfig::default().budget_words
    ));
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\"family\": \"{}\", \"n\": {}, \"edges\": {}, ",
                "\"rounds\": {}, \"messages\": {}, \"iters\": {}, \"threads\": {}, ",
                "\"effective_threads\": {}, ",
                "\"fast_secs\": {:.9}, \"reference_secs\": {:.9}, ",
                "\"fast_msgs_per_sec\": {:.1}, \"reference_msgs_per_sec\": {:.1}, ",
                "\"speedup\": {:.3}, ",
                "\"kernel_bytes\": {}, \"bytes_per_node\": {:.1}, ",
                "\"peak_rss_bytes\": {}}}{}\n"
            ),
            r.family,
            r.n,
            r.edges,
            r.rounds,
            r.messages,
            r.iters,
            r.threads,
            r.effective_threads,
            r.fast_secs,
            r.reference_secs,
            r.fast_mps(),
            r.reference_mps(),
            r.speedup(),
            r.kernel_bytes,
            r.bytes_per_node(),
            r.peak_rss_bytes,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n  \"embeddings\": [\n");
    for (i, r) in embeds.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\"family\": \"{}\", \"n\": {}, \"edges\": {}, ",
                "\"rounds\": {}, \"secs\": {:.3}, ",
                "\"kernel_bytes\": {}, \"bytes_per_node\": {:.1}, ",
                "\"peak_rss_bytes\": {}}}{}\n"
            ),
            r.family,
            r.n,
            r.edges,
            r.rounds,
            r.secs,
            r.kernel_bytes,
            r.bytes_per_node(),
            r.peak_rss_bytes,
            if i + 1 < embeds.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Writes [`to_json`] to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_json(
    path: &std::path::Path,
    rows: &[KernelBenchRow],
    embeds: &[EmbedMemRow],
) -> std::io::Result<()> {
    std::fs::write(path, to_json(rows, embeds))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_covers_graph_and_kernels_agree() {
        let g = gen::grid(8, 8);
        let row = measure("grid", &g, 1, 1);
        assert_eq!(row.n, 64);
        // Every node fires its out-star exactly once.
        assert_eq!(row.messages, 2 * g.edge_count());
        // Source eccentricity on an 8x8 grid from the corner, +1 for the
        // final round of ignored deliveries.
        assert_eq!(row.rounds, 15);
    }

    /// A parallel row reproduces the sequential row's conformance-checked
    /// metrics exactly (the assert inside `measure` compares against the
    /// always-sequential reference kernel, so this is the outputs-identical
    /// guarantee for the `threads > 1` rows of `BENCH_kernel.json`) — and
    /// its `PLANAR_THREADS` request is gated by the kernel's engagement
    /// plan, never exceeding the host's real cores.
    #[test]
    fn parallel_row_matches_sequential_metrics() {
        let g = gen::grid(8, 8);
        let seq = measure("grid", &g, 1, 1);
        let par = measure("grid", &g, 1, 4);
        assert_eq!(par.threads, 4);
        assert!(
            par.effective_threads <= pool::available_cores().max(1),
            "auto request must be core-capped, got {} on {} cores",
            par.effective_threads,
            pool::available_cores()
        );
        assert_eq!((par.rounds, par.messages), (seq.rounds, seq.messages));
    }

    /// Rows carry live memory accounting: a non-trivial kernel arena and
    /// (on Linux) a peak-RSS probe.
    #[test]
    fn rows_report_memory() {
        let g = gen::grid(8, 8);
        let row = measure("grid", &g, 1, 1);
        assert!(row.kernel_bytes > 0);
        assert!(row.bytes_per_node() > 0.0);
        if cfg!(target_os = "linux") {
            assert!(row.peak_rss_bytes > 0);
        }
    }

    /// The end-to-end memory stage completes a small random-maximal-planar
    /// embedding and reports the driver's warm cache footprint.
    #[test]
    fn embed_mem_stage_smoke() {
        let row = embed_mem(96);
        assert_eq!(row.family, "rmp");
        assert_eq!(row.n, 96);
        assert_eq!(row.edges, 3 * 96 - 6);
        assert!(row.rounds > 0);
        assert!(row.kernel_bytes > 0);
    }

    #[test]
    fn json_record_is_well_formed_enough() {
        let g = gen::grid(4, 4);
        let rows = vec![measure("grid", &g, 1, 1)];
        let embeds = vec![embed_mem(64)];
        let j = to_json(&rows, &embeds);
        assert!(j.contains("\"fast_msgs_per_sec\""));
        assert!(j.contains("\"reference_msgs_per_sec\""));
        assert!(j.contains("\"threads\": 1"));
        assert!(j.contains("\"effective_threads\""));
        assert!(j.contains("\"speedup\""));
        assert!(j.contains("\"bytes_per_node\""));
        assert!(j.contains("\"peak_rss_bytes\""));
        assert!(j.contains("\"embeddings\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
