//! Multi-tenant service soak: the record behind `BENCH_service.json`.
//!
//! The soak admits a fleet of tenant graphs (round-robin over a fixed set
//! of generator families) into one [`ServiceState`] and drives every
//! tenant with a seeded churn stream, the full re-embed oracle armed on
//! every delta ([`OracleMode::Always`]). Each applied delta therefore
//! yields a latency *pair* — the service-side handling (validation, gate,
//! incremental re-embedding) and the full re-embed of the same mutated
//! graph — measured on the same host, same graph, same delta. Per family
//! the sweep reports p50/p99 of both, the p50 speedup, and the path
//! split (incremental by [`DeltaClass`] vs recorded full fallback vs
//! rejection); fleet-wide it reports sustained embeddings/sec (admissions
//! plus applied deltas over service-side wall time, oracle time excluded
//! — the oracle is the checker, not the product), the incremental
//! *coverage* (the fraction of applied deltas the delta planner kept off
//! the full path — the CI gate holds it above a committed baseline), and
//! the per-class incremental dividend.
//!
//! Any incremental-vs-oracle divergence is a bit-identity contract
//! violation: it is counted in the report and the harness exits non-zero
//! (the CI gate).
//!
//! [`ServiceState`]: planar_service::ServiceState
//! [`OracleMode::Always`]: planar_service::OracleMode::Always

use congest_sim::mix_seed;
use planar_lib::gen;
use planar_service::{
    ChurnGen, DeltaClass, DeltaOutcome, OracleMode, ServiceConfig, ServiceState, TenantId,
};

/// Families the fleet cycles through: the deterministic substrates the
/// other sweeps use plus the seeded planar/outerplanar samplers, so both
/// rigid and irregular tenants are resident at once.
pub const FLEET_FAMILIES: &[&str] = &[
    "grid",
    "tri-grid",
    "wheel",
    "fan",
    "random-tree",
    "random-planar",
    "random-outerplanar",
    "random-maximal-planar",
];

/// Soak shape: fleet size, churn depth, per-tenant size, base seed.
#[derive(Clone, Copy, Debug)]
pub struct ServiceBenchOptions {
    /// Concurrent tenant graphs (the `--fleet` flag).
    pub fleet: usize,
    /// Churn deltas applied to every tenant (the `--deltas` flag).
    pub deltas: usize,
    /// Requested vertex count per tenant graph.
    pub tenant_n: usize,
    /// Base seed; tenant graph seeds and churn seeds derive from it.
    pub seed: u64,
}

impl Default for ServiceBenchOptions {
    fn default() -> Self {
        ServiceBenchOptions {
            fleet: 1024,
            deltas: 4,
            tenant_n: 24,
            seed: 7,
        }
    }
}

/// Aggregated soak results for one generator family.
#[derive(Clone, Debug)]
pub struct ServiceFamilyRow {
    /// Family name (from [`FLEET_FAMILIES`]).
    pub family: &'static str,
    /// Tenants of this family in the fleet.
    pub tenants: usize,
    /// Deltas submitted across those tenants.
    pub deltas: usize,
    /// Deltas applied (incremental + full fallbacks).
    pub applied: usize,
    /// Applied via the incremental path.
    pub incremental: usize,
    /// Applied incrementally as `DeltaClass::TreePreserving`.
    pub tree_preserving: usize,
    /// Applied incrementally as `DeltaClass::TreeRepairable`.
    pub tree_repairable: usize,
    /// Applied incrementally as `DeltaClass::VertexSetChange`.
    pub vertex_set: usize,
    /// Applied via a recorded full fallback.
    pub full_fallbacks: usize,
    /// Deltas rejected as planarity-breaking (gate or embedder).
    pub rejected_nonplanar: usize,
    /// p50 service-side latency over ALL applied deltas (the operator's
    /// view: validation + gate + whichever re-embed path ran), µs.
    pub p50_service_us: f64,
    /// p99 service-side latency over all applied deltas, µs.
    pub p99_service_us: f64,
    /// p50 service-side latency over *incremental-path* deltas only, µs.
    pub p50_incremental_us: f64,
    /// p50 full re-embed (oracle) latency over those same
    /// incremental-path deltas, µs — the apples-to-apples cost a
    /// from-scratch re-embed would have paid for them.
    pub p50_full_us: f64,
    /// p99 full re-embed latency over the incremental-path deltas, µs.
    pub p99_full_us: f64,
    /// `p50_full_us / p50_incremental_us` — the incremental dividend
    /// (0 when the family produced no incremental-path deltas).
    pub speedup_p50: f64,
    /// Incremental-vs-oracle divergences (must be 0).
    pub divergences: usize,
}

/// Fleet-wide aggregates for one [`DeltaClass`] claiming the incremental
/// path: how often the planner took it and what dividend it paid versus
/// the full re-embed the oracle ran on the very same deltas.
#[derive(Clone, Copy, Debug)]
pub struct ServiceClassRow {
    /// The class.
    pub class: DeltaClass,
    /// Applied deltas executed as this class, fleet-wide.
    pub count: usize,
    /// p50 service-side latency of this class's deltas, µs.
    pub p50_incremental_us: f64,
    /// p50 full re-embed (oracle) latency of those same deltas, µs.
    pub p50_full_us: f64,
    /// `p50_full_us / p50_incremental_us` — the class's incremental
    /// dividend (0 when the class never fired).
    pub speedup_p50: f64,
}

/// The full soak record.
#[derive(Clone, Debug)]
pub struct ServiceBenchReport {
    /// Fleet size actually admitted.
    pub fleet: usize,
    /// Deltas per tenant.
    pub deltas_per_tenant: usize,
    /// Requested per-tenant vertex count.
    pub tenant_n: usize,
    /// Embeddings produced by the service (admissions + applied deltas).
    pub total_embeddings: usize,
    /// Service-side wall time (admissions + delta handling; oracle
    /// re-embeds excluded), seconds.
    pub service_secs: f64,
    /// `total_embeddings / service_secs`.
    pub embeddings_per_sec: f64,
    /// Total incremental-vs-oracle divergences (the CI gate; must be 0).
    pub divergences: usize,
    /// Fraction of *applied* deltas that took the incremental path,
    /// fleet-wide — the coverage the CI gate holds above its committed
    /// baseline.
    pub incremental_coverage: f64,
    /// Per-incremental-class aggregates, in `DeltaClass::ALL` order
    /// (fallback excluded — it is the complement of the coverage).
    pub classes: Vec<ServiceClassRow>,
    /// Per-family aggregates.
    pub rows: Vec<ServiceFamilyRow>,
}

impl ServiceBenchReport {
    /// The headline cell: the family row with the most incremental-path
    /// deltas (the most evidence for the incremental-vs-full
    /// comparison). The harness gates on its speedup.
    pub fn headline(&self) -> Option<&ServiceFamilyRow> {
        self.rows.iter().max_by_key(|r| r.incremental)
    }
}

fn percentile(sorted_nanos: &[u128], q: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_nanos.len() - 1) as f64 * q).round() as usize;
    sorted_nanos[idx] as f64 / 1_000.0
}

/// Runs the soak: admits `fleet` tenants round-robin over
/// [`FLEET_FAMILIES`], applies `deltas` seeded churn deltas to each with
/// the full re-embed oracle armed, and aggregates latency pairs per
/// family.
///
/// # Panics
///
/// Panics if a tenant admission fails (every fleet graph is planar and
/// connected by construction) or the service reports an internal error.
pub fn service_soak(opts: &ServiceBenchOptions) -> ServiceBenchReport {
    let cfg = ServiceConfig {
        oracle: OracleMode::Always,
        ..ServiceConfig::default()
    };
    let mut svc = ServiceState::new(cfg);

    // Admission: the whole fleet becomes resident before any churn, so
    // the churn phase runs against a fully loaded tenant table.
    let mut tenants: Vec<(TenantId, &'static str, u64)> = Vec::with_capacity(opts.fleet);
    let admission = std::time::Instant::now();
    for i in 0..opts.fleet {
        let name = FLEET_FAMILIES[i % FLEET_FAMILIES.len()];
        let family = gen::family(name).expect("fleet family is registered");
        let graph_seed = mix_seed(opts.seed, &[1, i as u64]);
        let g = (family.build)(opts.tenant_n.max(family.min_n), graph_seed);
        let id = svc
            .create_tenant_labeled(g, Some(name))
            .unwrap_or_else(|e| panic!("admission of {name} tenant {i} failed: {e}"));
        tenants.push((id, name, mix_seed(opts.seed, &[2, i as u64])));
    }
    let admission_secs = admission.elapsed().as_secs_f64();

    for &(id, name, churn_seed) in &tenants {
        let mut churn = ChurnGen::new(churn_seed);
        for step in 0..opts.deltas {
            let delta = churn.next_delta(svc.tenant(id).unwrap().graph());
            svc.apply(id, delta)
                .unwrap_or_else(|e| panic!("{name} tenant, delta {step}: {e}"));
        }
    }

    // Aggregate per family from the tenant delta logs; the per-class
    // latency pairs aggregate fleet-wide (a class's dividend is a
    // property of the planner, not of one substrate).
    let mut rows = Vec::new();
    let mut service_nanos_total: u128 = 0;
    let mut total_applied = 0usize;
    let mut total_incremental = 0usize;
    let incremental_classes = [
        DeltaClass::TreePreserving,
        DeltaClass::TreeRepairable,
        DeltaClass::VertexSetChange,
    ];
    let mut class_incr_ns: Vec<Vec<u128>> = vec![Vec::new(); incremental_classes.len()];
    let mut class_full_ns: Vec<Vec<u128>> = vec![Vec::new(); incremental_classes.len()];
    for &family in FLEET_FAMILIES {
        let mut row = ServiceFamilyRow {
            family,
            tenants: 0,
            deltas: 0,
            applied: 0,
            incremental: 0,
            tree_preserving: 0,
            tree_repairable: 0,
            vertex_set: 0,
            full_fallbacks: 0,
            rejected_nonplanar: 0,
            p50_service_us: 0.0,
            p99_service_us: 0.0,
            p50_incremental_us: 0.0,
            p50_full_us: 0.0,
            p99_full_us: 0.0,
            speedup_p50: 0.0,
            divergences: 0,
        };
        let mut service_ns: Vec<u128> = Vec::new();
        let mut incr_ns: Vec<u128> = Vec::new();
        let mut full_ns: Vec<u128> = Vec::new();
        for (_, tenant) in svc.tenants().filter(|(_, t)| t.label() == Some(family)) {
            row.tenants += 1;
            let stats = tenant.stats();
            row.applied += stats.applied;
            row.incremental += stats.incremental;
            row.tree_preserving += stats.tree_preserving;
            row.tree_repairable += stats.tree_repairable;
            row.vertex_set += stats.vertex_set;
            row.full_fallbacks += stats.full_fallbacks;
            row.rejected_nonplanar += stats.rejected_nonplanar;
            row.divergences += stats.divergences;
            for record in tenant.records() {
                row.deltas += 1;
                service_nanos_total += record.service_nanos;
                if let DeltaOutcome::Applied { report, .. } = &record.outcome {
                    service_ns.push(record.service_nanos);
                    // The incremental dividend compares the incremental
                    // path's latency with the full re-embed the oracle
                    // paid for the very same delta.
                    if report.is_incremental() {
                        incr_ns.push(record.service_nanos);
                        if let Some(full) = record.oracle_nanos {
                            full_ns.push(full);
                        }
                        if let Some(ci) = record
                            .class
                            .and_then(|c| incremental_classes.iter().position(|&k| k == c))
                        {
                            class_incr_ns[ci].push(record.service_nanos);
                            if let Some(full) = record.oracle_nanos {
                                class_full_ns[ci].push(full);
                            }
                        }
                    }
                }
            }
        }
        if row.tenants == 0 {
            continue;
        }
        service_ns.sort_unstable();
        incr_ns.sort_unstable();
        full_ns.sort_unstable();
        row.p50_service_us = percentile(&service_ns, 0.50);
        row.p99_service_us = percentile(&service_ns, 0.99);
        row.p50_incremental_us = percentile(&incr_ns, 0.50);
        row.p50_full_us = percentile(&full_ns, 0.50);
        row.p99_full_us = percentile(&full_ns, 0.99);
        row.speedup_p50 = if row.p50_incremental_us > 0.0 {
            row.p50_full_us / row.p50_incremental_us
        } else {
            0.0
        };
        total_applied += row.applied;
        total_incremental += row.incremental;
        rows.push(row);
    }

    let classes = incremental_classes
        .iter()
        .enumerate()
        .map(|(ci, &class)| {
            class_incr_ns[ci].sort_unstable();
            class_full_ns[ci].sort_unstable();
            let p50_incremental_us = percentile(&class_incr_ns[ci], 0.50);
            let p50_full_us = percentile(&class_full_ns[ci], 0.50);
            ServiceClassRow {
                class,
                count: class_incr_ns[ci].len(),
                p50_incremental_us,
                p50_full_us,
                speedup_p50: if p50_incremental_us > 0.0 {
                    p50_full_us / p50_incremental_us
                } else {
                    0.0
                },
            }
        })
        .collect();

    let service_secs = admission_secs + service_nanos_total as f64 / 1e9;
    let total_embeddings = opts.fleet + total_applied;
    ServiceBenchReport {
        fleet: opts.fleet,
        deltas_per_tenant: opts.deltas,
        tenant_n: opts.tenant_n,
        total_embeddings,
        service_secs,
        embeddings_per_sec: if service_secs > 0.0 {
            total_embeddings as f64 / service_secs
        } else {
            0.0
        },
        divergences: svc.divergences(),
        incremental_coverage: if total_applied > 0 {
            total_incremental as f64 / total_applied as f64
        } else {
            0.0
        },
        classes,
        rows,
    }
}

/// Renders the report as the `BENCH_service.json` document (hand-rolled
/// JSON like the other BENCH files: numeric fields and known-safe
/// literals only).
pub fn to_json(report: &ServiceBenchReport) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"service\",\n");
    s.push_str(
        "  \"metric\": \"multi-tenant churn soak: service-side delta latency (validation + \
         pre-flight gate + incremental re-embedding) vs full re-embed of the same mutated \
         graph, oracle-checked bit-identical per delta; embeddings/sec over admissions + \
         applied deltas\",\n",
    );
    s.push_str(&format!("  \"fleet\": {},\n", report.fleet));
    s.push_str(&format!(
        "  \"deltas_per_tenant\": {},\n",
        report.deltas_per_tenant
    ));
    s.push_str(&format!("  \"tenant_n\": {},\n", report.tenant_n));
    s.push_str(&format!(
        "  \"total_embeddings\": {},\n",
        report.total_embeddings
    ));
    s.push_str(&format!(
        "  \"service_secs\": {:.6},\n",
        report.service_secs
    ));
    s.push_str(&format!(
        "  \"embeddings_per_sec\": {:.1},\n",
        report.embeddings_per_sec
    ));
    s.push_str(&format!("  \"divergences\": {},\n", report.divergences));
    s.push_str(&format!(
        "  \"incremental_coverage\": {:.4},\n",
        report.incremental_coverage
    ));
    s.push_str("  \"classes\": [\n");
    for (i, c) in report.classes.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\"class\": \"{}\", \"count\": {}, ",
                "\"p50_incremental_us\": {:.1}, \"p50_full_us\": {:.1}, ",
                "\"speedup_p50\": {:.2}}}{}\n"
            ),
            c.class.code(),
            c.count,
            c.p50_incremental_us,
            c.p50_full_us,
            c.speedup_p50,
            if i + 1 < report.classes.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"families\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\"family\": \"{}\", \"tenants\": {}, \"deltas\": {}, ",
                "\"applied\": {}, \"incremental\": {}, ",
                "\"tree_preserving\": {}, \"tree_repairable\": {}, \"vertex_set\": {}, ",
                "\"full_fallbacks\": {}, ",
                "\"rejected_nonplanar\": {}, ",
                "\"p50_service_us\": {:.1}, \"p99_service_us\": {:.1}, ",
                "\"p50_incremental_us\": {:.1}, ",
                "\"p50_full_us\": {:.1}, \"p99_full_us\": {:.1}, ",
                "\"speedup_p50\": {:.2}, \"divergences\": {}}}{}\n"
            ),
            r.family,
            r.tenants,
            r.deltas,
            r.applied,
            r.incremental,
            r.tree_preserving,
            r.tree_repairable,
            r.vertex_set,
            r.full_fallbacks,
            r.rejected_nonplanar,
            r.p50_service_us,
            r.p99_service_us,
            r.p50_incremental_us,
            r.p50_full_us,
            r.p99_full_us,
            r.speedup_p50,
            r.divergences,
            if i + 1 < report.rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Writes [`to_json`] to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_json(path: &std::path::Path, report: &ServiceBenchReport) -> std::io::Result<()> {
    std::fs::write(path, to_json(report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_soak_accounts_for_every_delta_and_stays_identical() {
        let opts = ServiceBenchOptions {
            fleet: 8,
            deltas: 2,
            tenant_n: 12,
            seed: 5,
        };
        let report = service_soak(&opts);
        assert_eq!(report.fleet, 8);
        assert_eq!(report.divergences, 0, "incremental diverged from oracle");
        let deltas: usize = report.rows.iter().map(|r| r.deltas).sum();
        assert_eq!(deltas, 8 * 2, "every submitted delta must be recorded");
        let applied: usize = report.rows.iter().map(|r| r.applied).sum();
        let rejected: usize = report.rows.iter().map(|r| r.rejected_nonplanar).sum();
        assert_eq!(applied + rejected, deltas, "churn draws are always valid");
        assert_eq!(report.total_embeddings, 8 + applied);
        assert!(report.embeddings_per_sec > 0.0);
        assert!(report.headline().is_some());
        // Per-class accounting partitions the incremental count, at
        // every level of aggregation.
        let incremental: usize = report.rows.iter().map(|r| r.incremental).sum();
        for r in &report.rows {
            assert_eq!(
                r.tree_preserving + r.tree_repairable + r.vertex_set,
                r.incremental,
                "{}: class counts must partition the incremental count",
                r.family
            );
        }
        let class_total: usize = report.classes.iter().map(|c| c.count).sum();
        assert_eq!(class_total, incremental);
        assert_eq!(report.classes.len(), 3, "one row per incremental class");
        if applied > 0 {
            let expect = incremental as f64 / applied as f64;
            assert!((report.incremental_coverage - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let report = service_soak(&ServiceBenchOptions {
            fleet: 4,
            deltas: 1,
            tenant_n: 12,
            seed: 1,
        });
        let s = to_json(&report);
        assert!(s.contains("\"benchmark\": \"service\""));
        assert!(s.contains("\"families\": ["));
        assert!(s.contains("\"divergences\": 0"));
        assert!(s.contains("\"incremental_coverage\": "));
        assert!(s.contains("\"classes\": ["));
        assert!(s.contains("\"class\": \"tree-preserving\""));
        assert!(s.contains("\"class\": \"tree-repairable\""));
        assert!(s.contains("\"class\": \"vertex-set\""));
        assert!(s.contains("\"tree_preserving\": "));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn fleet_families_are_registered() {
        for name in FLEET_FAMILIES {
            assert!(gen::family(name).is_some(), "unknown fleet family {name}");
        }
    }
}
