//! Scheduler sweep: host-side cost of the level-synchronous scheduler vs
//! the sequential oracle — the record behind `BENCH_sched.json`.
//!
//! For each substrate (`grid`, `tri-grid`) × size, one cell times
//! [`embed_recursion`] — the distributed pipeline (setup + the
//! partition/merge recursion), the unit the scheduler actually controls —
//! under [`Scheduler::Sequential`] (one full-graph kernel invocation per
//! subproblem phase) and under [`Scheduler::LevelSync`] (all same-level
//! subproblems partitioned in a single batched invocation over a shared
//! [`SimSession`] arena), asserts the two runs' metrics and statistics
//! are bit-identical, and reports the wall-time speedup. Timing
//! `embed_distributed` instead would let the scheduler-independent
//! centralized fidelity epilogue (see DESIGN.md) dominate large cells
//! and wash the comparison out; rotation-level conformance between the
//! schedulers is pinned separately by `core/tests/scheduler.rs`.
//!
//! The simulated CONGEST cost (`metrics.rounds`, the parallel-composed
//! count, and `stats.sequential_rounds`, the charged tally) is identical
//! by construction — the sweep records it once per cell as a cross-check.
//!
//! [`embed_recursion`]: planar_embedding::embed_recursion
//! [`Scheduler::Sequential`]: planar_embedding::Scheduler::Sequential
//! [`Scheduler::LevelSync`]: planar_embedding::Scheduler::LevelSync
//! [`SimSession`]: congest_sim::SimSession

use congest_sim::Metrics;
use planar_embedding::{embed_recursion, EmbedderConfig, RecursionStats, Scheduler};
use planar_lib::gen;

use crate::timing::bench;

/// One cell of the scheduler sweep.
#[derive(Clone, Debug)]
pub struct SchedRow {
    /// Substrate family (`"grid"` or `"tri-grid"`).
    pub family: &'static str,
    /// Vertex count.
    pub n: usize,
    /// Median wall time of the sequential (oracle) scheduler, seconds.
    pub sequential_secs: f64,
    /// Median wall time of the level-synchronous scheduler, seconds.
    pub level_sync_secs: f64,
    /// `sequential_secs / level_sync_secs`.
    pub speedup: f64,
    /// Parallel-composed simulated rounds (identical across schedulers).
    pub rounds: usize,
    /// Charged sequential round tally (identical across schedulers).
    pub sequential_rounds: usize,
    /// Whether metrics and recursion statistics were bit-identical
    /// (asserted — recorded for the JSON reader's benefit).
    pub outputs_identical: bool,
}

fn substrate(family: &'static str, n: usize) -> planar_graph::Graph {
    let side = (n as f64).sqrt().round() as usize;
    match family {
        "grid" => gen::grid(side, side),
        "tri-grid" => gen::triangulated_grid(side, side),
        other => unreachable!("unknown sched substrate {other}"),
    }
}

fn config(scheduler: Scheduler) -> EmbedderConfig {
    EmbedderConfig {
        // Invariant checking is host-side quadratic-ish work outside the
        // scheduler's control. Off: the cell times the recursion itself.
        check_invariants: false,
        certify: false,
        scheduler,
        ..EmbedderConfig::default()
    }
}

/// Runs one timed cell.
///
/// # Panics
///
/// Panics if either scheduler fails, or if their metrics/statistics are
/// not bit-identical (the conformance contract — a benchmark that
/// compares divergent computations would be meaningless).
pub fn sched_cell(family: &'static str, n: usize) -> SchedRow {
    let g = substrate(family, n);
    let run = |scheduler: Scheduler| -> (Metrics, RecursionStats) {
        embed_recursion(&g, &config(scheduler)).expect("sched cell must embed")
    };
    let (seq_metrics, seq_stats) = run(Scheduler::Sequential);
    let (lvl_metrics, lvl_stats) = run(Scheduler::LevelSync);
    let identical = seq_metrics == lvl_metrics && seq_stats == lvl_stats;
    assert!(identical, "sched cell {family}/n={n}: schedulers diverged");

    let iters = if n >= 4096 { 3 } else { 5 };
    let seq = bench(&format!("sched/{family}{n}/sequential"), iters, || {
        run(Scheduler::Sequential)
    });
    let lvl = bench(&format!("sched/{family}{n}/level-sync"), iters, || {
        run(Scheduler::LevelSync)
    });
    SchedRow {
        family,
        n,
        sequential_secs: seq.median_secs(),
        level_sync_secs: lvl.median_secs(),
        speedup: seq.median_secs() / lvl.median_secs(),
        rounds: lvl_metrics.rounds,
        sequential_rounds: lvl_stats.sequential_rounds,
        outputs_identical: identical,
    }
}

/// Runs the sweep (substrates × `sizes`), serially — timing cells must not
/// contend for cores the way the audited/correctness sweeps may.
pub fn sched_sweep(sizes: &[usize]) -> Vec<SchedRow> {
    let mut rows = Vec::new();
    for family in ["grid", "tri-grid"] {
        for &n in sizes {
            rows.push(sched_cell(family, n));
        }
    }
    rows
}

/// Renders rows as the `BENCH_sched.json` document (hand-rolled JSON, as
/// the other BENCH files: every field numeric or a known-safe literal).
pub fn to_json(rows: &[SchedRow]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"scheduler\",\n");
    s.push_str(
        "  \"metric\": \"host wall time of the distributed pipeline (embed_recursion: \
         setup + partition/merge recursion) under the level-synchronous scheduler vs \
         the sequential oracle; metrics and statistics asserted bit-identical per \
         cell; simulated rounds are scheduler-independent\",\n",
    );
    s.push_str("  \"cells\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\"family\": \"{}\", \"n\": {}, ",
                "\"sequential_secs\": {:.6}, \"level_sync_secs\": {:.6}, ",
                "\"speedup\": {:.3}, \"rounds\": {}, \"sequential_rounds\": {}, ",
                "\"outputs_identical\": {}}}{}\n"
            ),
            r.family,
            r.n,
            r.sequential_secs,
            r.level_sync_secs,
            r.speedup,
            r.rounds,
            r.sequential_rounds,
            r.outputs_identical,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Writes [`to_json`] to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_json(path: &std::path::Path, rows: &[SchedRow]) -> std::io::Result<()> {
    std::fs::write(path, to_json(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_asserts_identity_and_times_both_schedulers() {
        let r = sched_cell("grid", 64);
        assert!(r.outputs_identical);
        assert!(r.sequential_secs > 0.0 && r.level_sync_secs > 0.0);
        assert!(r.rounds > 0 && r.sequential_rounds >= r.rounds);
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let rows = vec![sched_cell("tri-grid", 64)];
        let s = to_json(&rows);
        assert!(s.contains("\"benchmark\": \"scheduler\""));
        assert!(s.contains("\"outputs_identical\": true"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }
}
