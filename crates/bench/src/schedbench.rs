//! Scheduler sweep: host-side cost of the level-synchronous scheduler vs
//! the sequential oracle — the record behind `BENCH_sched.json`.
//!
//! For each substrate (`grid`, `tri-grid`) × size, one cell times
//! [`embed_recursion`] — the distributed pipeline (setup + the
//! partition/merge recursion), the unit the scheduler actually controls —
//! under [`Scheduler::Sequential`] (one full-graph kernel invocation per
//! subproblem phase) and under [`Scheduler::LevelSync`] (all same-level
//! subproblems partitioned in a single batched invocation over a shared
//! [`SimSession`] arena), asserts the two runs' metrics and statistics
//! are bit-identical, and reports the wall-time speedup. Timing
//! `embed_distributed` instead would let the scheduler-independent
//! centralized fidelity epilogue (see DESIGN.md) dominate large cells
//! and wash the comparison out; rotation-level conformance between the
//! schedulers is pinned separately by `core/tests/scheduler.rs`.
//!
//! The simulated CONGEST cost (`metrics.rounds`, the parallel-composed
//! count, and `stats.sequential_rounds`, the charged tally) is identical
//! by construction — the sweep records it once per cell as a cross-check.
//!
//! Each row additionally carries a `threads` column: the kernel worker
//! threads pinned (`SimConfig::threads`) for the level-synchronous run.
//! The oracle always runs at 1 thread, so the thread sweep at large cells
//! isolates the host-side effect of parallel round execution inside the
//! batched kernel — with metrics/statistics still asserted bit-identical
//! at every thread count (the kernel's determinism contract).
//!
//! [`embed_recursion`]: planar_embedding::embed_recursion
//! [`Scheduler::Sequential`]: planar_embedding::Scheduler::Sequential
//! [`Scheduler::LevelSync`]: planar_embedding::Scheduler::LevelSync
//! [`SimSession`]: congest_sim::SimSession

use congest_sim::Metrics;
use planar_embedding::{embed_recursion, EmbedderConfig, RecursionStats, Scheduler};
use planar_lib::gen;

use crate::timing::bench;

/// One cell of the scheduler sweep.
#[derive(Clone, Debug)]
pub struct SchedRow {
    /// Substrate family (`"grid"` or `"tri-grid"`).
    pub family: &'static str,
    /// Vertex count.
    pub n: usize,
    /// Kernel worker threads pinned for the level-synchronous run
    /// (`SimConfig::threads`). The sequential oracle always runs at 1
    /// thread, so rows with `threads > 1` measure the parallel round
    /// execution inside the batched kernel against the same baseline.
    pub threads: usize,
    /// Timed iterations per scheduler (median is reported).
    pub iters: usize,
    /// Median wall time of the sequential (oracle) scheduler, seconds.
    pub sequential_secs: f64,
    /// Median wall time of the level-synchronous scheduler, seconds.
    pub level_sync_secs: f64,
    /// `sequential_secs / level_sync_secs`.
    pub speedup: f64,
    /// Parallel-composed simulated rounds (identical across schedulers).
    pub rounds: usize,
    /// Charged sequential round tally (identical across schedulers).
    pub sequential_rounds: usize,
    /// Whether metrics and recursion statistics were bit-identical
    /// (asserted — recorded for the JSON reader's benefit).
    pub outputs_identical: bool,
    /// Process peak RSS after this cell, bytes (0 = probe unavailable).
    /// Monotone across rows — the last cell of a sweep bounds the whole
    /// sweep; per-n deltas bound the marginal cost of a cell.
    pub peak_rss_bytes: usize,
}

fn substrate(family: &'static str, n: usize) -> planar_graph::Graph {
    let side = (n as f64).sqrt().round() as usize;
    match family {
        "grid" => gen::grid(side, side),
        "tri-grid" => gen::triangulated_grid(side, side),
        other => unreachable!("unknown sched substrate {other}"),
    }
}

fn config(scheduler: Scheduler) -> EmbedderConfig {
    EmbedderConfig {
        // Invariant checking is host-side quadratic-ish work outside the
        // scheduler's control. Off: the cell times the recursion itself.
        check_invariants: false,
        certify: false,
        scheduler,
        ..EmbedderConfig::default()
    }
}

/// Timed iterations for a cell of `n` vertices (the huge cells run the
/// sequential oracle for minutes; one timed pass is enough there).
fn iters_for(n: usize) -> usize {
    if n >= 40_000 {
        1
    } else if n >= 4096 {
        3
    } else {
        5
    }
}

/// Runs one timed cell at `threads = 1` (the historical shape).
///
/// # Panics
///
/// As [`sched_cell_threads`].
pub fn sched_cell(family: &'static str, n: usize) -> SchedRow {
    sched_cell_threads(family, n, &[1])
        .pop()
        .expect("one thread count yields one row")
}

/// Runs one substrate cell: the sequential oracle is validated and timed
/// once (always at 1 kernel thread), then the level-synchronous scheduler
/// is validated and timed at each requested kernel thread count, yielding
/// one row per thread count. All rows of a cell share the oracle timing
/// and iteration count, so `speedup` across rows isolates the effect of
/// the parallel round execution inside the batched kernel.
///
/// # Panics
///
/// Panics if either scheduler fails, or if any level-synchronous run's
/// metrics/statistics differ from the oracle's (the conformance contract
/// — and, for `threads > 1`, the thread-count determinism contract: a
/// benchmark that compares divergent computations would be meaningless).
pub fn sched_cell_threads(family: &'static str, n: usize, threads: &[usize]) -> Vec<SchedRow> {
    let g = substrate(family, n);
    let run = |scheduler: Scheduler, t: usize| -> (Metrics, RecursionStats) {
        let mut cfg = config(scheduler);
        cfg.sim.threads = Some(t);
        embed_recursion(&g, &cfg).expect("sched cell must embed")
    };
    let (seq_metrics, seq_stats) = run(Scheduler::Sequential, 1);
    let iters = iters_for(n);
    let seq = bench(&format!("sched/{family}{n}/sequential"), iters, || {
        run(Scheduler::Sequential, 1)
    });

    let mut rows = Vec::new();
    for &t in threads {
        let (lvl_metrics, lvl_stats) = run(Scheduler::LevelSync, t);
        let identical = seq_metrics == lvl_metrics && seq_stats == lvl_stats;
        assert!(
            identical,
            "sched cell {family}/n={n}/threads={t}: schedulers diverged"
        );
        let lvl = bench(&format!("sched/{family}{n}/level-sync/t{t}"), iters, || {
            run(Scheduler::LevelSync, t)
        });
        rows.push(SchedRow {
            family,
            n,
            threads: t,
            iters,
            sequential_secs: seq.median_secs(),
            level_sync_secs: lvl.median_secs(),
            speedup: seq.median_secs() / lvl.median_secs(),
            rounds: lvl_metrics.rounds,
            sequential_rounds: lvl_stats.sequential_rounds,
            outputs_identical: identical,
            peak_rss_bytes: crate::mem::peak_rss_bytes(),
        });
    }
    rows
}

/// Runs the sweep (substrates × `sizes`), serially — timing cells must not
/// contend for cores the way the audited/correctness sweeps may. Cells
/// with `n >= 4096` run the level-synchronous scheduler at every thread
/// count in `threads`; smaller cells stay at 1 (their kernel invocations
/// are too small to amortize a fan-out, and the extra rows would only pad
/// the record).
pub fn sched_sweep(sizes: &[usize], threads: &[usize]) -> Vec<SchedRow> {
    let mut rows = Vec::new();
    for family in ["grid", "tri-grid"] {
        for &n in sizes {
            let cell_threads: &[usize] = if n >= 4096 { threads } else { &[1] };
            rows.extend(sched_cell_threads(family, n, cell_threads));
        }
    }
    rows
}

/// Renders rows as the `BENCH_sched.json` document (hand-rolled JSON, as
/// the other BENCH files: every field numeric or a known-safe literal).
pub fn to_json(rows: &[SchedRow]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"scheduler\",\n");
    s.push_str(
        "  \"metric\": \"host wall time of the distributed pipeline (embed_recursion: \
         setup + partition/merge recursion) under the level-synchronous scheduler vs \
         the sequential oracle; metrics and statistics asserted bit-identical per \
         cell; simulated rounds are scheduler-independent\",\n",
    );
    s.push_str("  \"cells\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\"family\": \"{}\", \"n\": {}, \"threads\": {}, \"iters\": {}, ",
                "\"sequential_secs\": {:.6}, \"level_sync_secs\": {:.6}, ",
                "\"speedup\": {:.3}, \"rounds\": {}, \"sequential_rounds\": {}, ",
                "\"outputs_identical\": {}, \"peak_rss_bytes\": {}}}{}\n"
            ),
            r.family,
            r.n,
            r.threads,
            r.iters,
            r.sequential_secs,
            r.level_sync_secs,
            r.speedup,
            r.rounds,
            r.sequential_rounds,
            r.outputs_identical,
            r.peak_rss_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Writes [`to_json`] to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_json(path: &std::path::Path, rows: &[SchedRow]) -> std::io::Result<()> {
    std::fs::write(path, to_json(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_asserts_identity_and_times_both_schedulers() {
        let r = sched_cell("grid", 64);
        assert_eq!((r.threads, r.iters), (1, 5));
        assert!(r.outputs_identical);
        assert!(r.sequential_secs > 0.0 && r.level_sync_secs > 0.0);
        assert!(r.rounds > 0 && r.sequential_rounds >= r.rounds);
    }

    /// A thread sweep shares the oracle timing across its rows, keeps the
    /// per-row thread count, and asserts identity at every thread count.
    #[test]
    fn thread_sweep_shares_oracle_and_stays_identical() {
        let rows = sched_cell_threads("grid", 64, &[1, 2]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].threads, 1);
        assert_eq!(rows[1].threads, 2);
        assert_eq!(rows[0].sequential_secs, rows[1].sequential_secs);
        assert_eq!(rows[0].rounds, rows[1].rounds);
        assert!(rows.iter().all(|r| r.outputs_identical));
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let rows = vec![sched_cell("tri-grid", 64)];
        let s = to_json(&rows);
        assert!(s.contains("\"benchmark\": \"scheduler\""));
        assert!(s.contains("\"threads\": 1"));
        assert!(s.contains("\"outputs_identical\": true"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }
}
