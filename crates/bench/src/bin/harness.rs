//! The experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! Usage (the authoritative list lives in [`planar_bench::cli`]; run with
//! an unknown subcommand for the full listing):
//!
//! ```text
//! harness [all|t1|t2|t3|t4|t5|t6|fobs|fsafe|ablate|bench-kernel|mem|chaos|cert|trace|sched|dst|service] [--large]
//! ```
//!
//! `--large` extends the sweeps to larger instances (minutes instead of
//! seconds).
//!
//! `bench-kernel` times the simulation kernel against the preserved seed
//! kernel (flood throughput on grid / tri-grid / random-maximal-planar
//! substrates, with per-row kernel-arena bytes and peak RSS), runs the
//! distributed-pipeline embedding memory stage (`--large` includes the
//! n = 1,000,000 random-maximal-planar acceptance point), and writes the
//! record to `BENCH_kernel.json` in the current directory. It is not part
//! of `all`; run it explicitly (ideally under `--release`).
//!
//! `mem` is the CI memory gate: one n = 250,000 random-maximal-planar
//! graph through the distributed pipeline, failing if process peak RSS
//! exceeds its ceiling. Also not part of `all`.
//!
//! `chaos` sweeps the embedder under seeded link faults (drop / duplicate /
//! delay at several rates, reliable delivery on) over grid and tri-grid
//! substrates and writes `BENCH_chaos.json` (success rate and round
//! overhead vs the fault-free baseline per cell). Also not part of `all`.
//!
//! `cert` sweeps the distributed certification layer (per-node certificate
//! size, O(1)-round verification cost, per-class mutation soundness
//! spot-check) over grid / tri-grid / outerplanar / random-planar
//! substrates and writes `BENCH_cert.json`. Also not part of `all`.
//!
//! `trace` runs the full embedding pipeline (certification on) under the
//! trace auditor, fault-free and under seeded faults with reliable
//! delivery: every kernel segment's reported metrics are checked against
//! an independent recomputation from its event stream (any drift panics),
//! and the per-round profile is written to `BENCH_trace.json`. Also not
//! part of `all`.
//!
//! `sched` times the distributed pipeline (`embed_recursion`: setup +
//! partition/merge recursion — the unit the scheduler controls) under the
//! level-synchronous scheduler against the sequential oracle (bit-identical
//! metrics and statistics asserted per cell) over grid and tri-grid
//! substrates and writes host wall time, speedup, and the simulated round
//! counts to `BENCH_sched.json`. Large cells (n >= 4096) additionally
//! sweep the kernel worker-thread count (`SimConfig::threads`) for the
//! level-synchronous runs, pinning thread-count determinism and recording
//! parallel-round-execution scaling. Also not part of `all`; run it under
//! `--release` (`--large` extends to n = 100,000 and threads 1/2/4/8).
//!
//! `dst` runs the deterministic-simulation-testing swarm (`crates/dst`):
//! `--swarm <count> --seed <base>` checks `count` seeded scenarios against
//! the full shadow-oracle stack, minimizes any violation, writes one
//! canonical artifact per run under `--artifacts <dir>` (default
//! `dst-artifacts`) plus the `BENCH_dst.json` summary, and exits non-zero
//! if any scenario violated an oracle. A bare `--seed <n>` replays that
//! single scenario bit-identically and prints its full artifact.
//! `--canary` arms the test-only broken-fate canary (divergences are then
//! the *expected* outcome — a self-test of the oracles and the
//! minimizer). Not part of `all`.
//!
//! `service` soaks the multi-tenant embedding service (`crates/service`):
//! `--fleet <count>` tenant graphs (default 1024) are admitted round-robin
//! over the fleet families, each then receives `--deltas <count>` seeded
//! churn deltas (default 4) with the full re-embed oracle armed on every
//! delta. Writes `BENCH_service.json` (embeddings/sec, p50/p99 incremental
//! vs full latency, speedup per family, and per-`DeltaClass` incremental
//! coverage + dividend) and exits non-zero if any incremental result
//! diverged from the oracle, if incremental coverage falls below the
//! committed baseline (default 50%, `--min-coverage` to override), or if
//! any class with enough evidence — headline family included — is not
//! faster than the full re-embed. `--large` doubles the per-tenant graph
//! size. Not part of `all`.

use planar_bench::table::render;
use planar_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let large = args.iter().any(|a| a == "--large");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    let sizes: &[usize] = if large {
        &[64, 256, 1024, 4096, 16384]
    } else {
        &[64, 256, 1024]
    };
    let run_all = which == "all";

    if planar_bench::cli::subcommand(which).is_none() {
        eprintln!("unknown experiment `{which}`");
        eprint!("{}", planar_bench::cli::usage());
        std::process::exit(2);
    }

    if which == "dst" {
        run_dst(&args);
        return;
    }

    if which == "service" {
        run_service(&args, large);
        return;
    }

    if which == "bench-kernel" {
        // n ~ {1k, 10k}; --large adds the 100k point of the cargo-bench
        // target. Substrate sides are round(sqrt(n)).
        let ns: &[usize] = if large {
            &[1024, 10_000, 100_000]
        } else {
            &[1024, 10_000]
        };
        // The memory stage: distributed-pipeline embeddings on random
        // maximal planar substrates. --large runs the million-node
        // acceptance point (minutes).
        let embed_ns: &[usize] = if large {
            &[100_000, 1_000_000]
        } else {
            &[10_000]
        };
        println!("== kernel throughput: flood, fast vs seed reference kernel ==");
        let rows = planar_bench::kernelbench::kernel_bench(ns);
        println!("== embedding memory: distributed pipeline on random maximal planar ==");
        let embeds = planar_bench::kernelbench::embed_mem_stage(embed_ns);
        let path = std::path::Path::new("BENCH_kernel.json");
        planar_bench::kernelbench::write_json(path, &rows, &embeds)
            .expect("write BENCH_kernel.json");
        println!("wrote {}", path.display());
        return;
    }

    if which == "mem" {
        run_mem();
        return;
    }

    if which == "chaos" {
        // n <= 1k keeps the seeded smoke sweep CI-sized; --large adds it.
        let ns: &[usize] = if large { &[64, 256, 1024] } else { &[64, 256] };
        println!("== chaos: embedding under seeded link faults (reliable delivery on) ==");
        let rows = planar_bench::chaos::chaos_sweep(ns);
        let data: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.family.to_string(),
                    r.n.to_string(),
                    format!("{}", r.rate),
                    format!("{:.2}", r.success_rate()),
                    r.degraded.to_string(),
                    format!("{:.2}", r.mean_round_overhead),
                    r.dropped.to_string(),
                    r.retransmissions.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                &[
                    "family",
                    "n",
                    "dropRate",
                    "successRate",
                    "degraded",
                    "overhead",
                    "dropped",
                    "retx"
                ],
                &data
            )
        );
        let path = std::path::Path::new("BENCH_chaos.json");
        planar_bench::chaos::write_json(path, &rows).expect("write BENCH_chaos.json");
        println!("wrote {}", path.display());
        return;
    }

    if which == "cert" {
        // CI-sized by default; --large extends to the 1k substrates.
        let ns: &[usize] = if large { &[64, 256, 1024] } else { &[64, 256] };
        println!("== cert: proof labels + O(1)-round distributed verification ==");
        let rows = planar_bench::certbench::cert_sweep(ns);
        let data: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.family.to_string(),
                    r.n.to_string(),
                    r.max_degree.to_string(),
                    r.cert_rounds.to_string(),
                    r.max_cert_words.to_string(),
                    format!("{:.1}", r.mean_cert_words),
                    r.verify_words.to_string(),
                    r.size_bound_ok.to_string(),
                    format!("{}/{}", r.mutations_rejected, r.mutations_applied),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                &[
                    "family",
                    "n",
                    "maxDeg",
                    "certRounds",
                    "maxWords",
                    "meanWords",
                    "verifyWords",
                    "sizeBoundOk",
                    "mutRejected"
                ],
                &data
            )
        );
        let path = std::path::Path::new("BENCH_cert.json");
        planar_bench::certbench::write_json(path, &rows).expect("write BENCH_cert.json");
        println!("wrote {}", path.display());
        return;
    }

    if which == "trace" {
        // CI-sized by default; --large extends to the 1k substrates.
        let ns: &[usize] = if large { &[64, 256, 1024] } else { &[64, 256] };
        println!("== trace: audited per-round profile of the embedding pipeline ==");
        let rows = planar_bench::tracebench::trace_sweep(ns);
        let data: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.family.to_string(),
                    r.n.to_string(),
                    r.faulty.to_string(),
                    r.outcome.to_string(),
                    r.segments.to_string(),
                    r.rounds.to_string(),
                    r.words.to_string(),
                    r.dropped.to_string(),
                    r.retransmissions.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                &[
                    "family", "n", "faulty", "outcome", "segments", "rounds", "words", "dropped",
                    "retx"
                ],
                &data
            )
        );
        let path = std::path::Path::new("BENCH_trace.json");
        planar_bench::tracebench::write_json(path, &rows).expect("write BENCH_trace.json");
        println!("wrote {}", path.display());
        return;
    }

    if which == "sched" {
        // CI-sized by default; --large extends to the n = 100k headline
        // cell and sweeps kernel threads 1/2/4/8 at the large cells.
        let ns: &[usize] = if large {
            &[64, 256, 1024, 4096, 10_000, 100_000]
        } else {
            &[64, 256, 4096]
        };
        let threads: &[usize] = if large { &[1, 2, 4, 8] } else { &[1, 4] };
        println!("== sched: level-synchronous scheduler vs sequential oracle ==");
        let rows = planar_bench::schedbench::sched_sweep(ns, threads);
        let data: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.family.to_string(),
                    r.n.to_string(),
                    r.threads.to_string(),
                    format!("{:.4}", r.sequential_secs),
                    format!("{:.4}", r.level_sync_secs),
                    format!("{:.2}x", r.speedup),
                    r.rounds.to_string(),
                    r.sequential_rounds.to_string(),
                    r.outputs_identical.to_string(),
                    planar_bench::mem::fmt_bytes(r.peak_rss_bytes),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                &[
                    "family",
                    "n",
                    "threads",
                    "seq(s)",
                    "lvl(s)",
                    "speedup",
                    "rounds",
                    "seqRounds",
                    "identical",
                    "peakRSS"
                ],
                &data
            )
        );
        let path = std::path::Path::new("BENCH_sched.json");
        planar_bench::schedbench::write_json(path, &rows).expect("write BENCH_sched.json");
        println!("wrote {}", path.display());
        // Regression gates (CI). Outputs are asserted bit-identical inside
        // every cell; here we gate the timings.
        let largest = rows.iter().map(|r| r.n).max().unwrap_or(0);
        // 1. At the largest cell of each family, the level-synchronous
        //    scheduler (single-thread kernel) must not be slower than the
        //    oracle.
        for r in rows.iter().filter(|r| r.n == largest && r.threads == 1) {
            assert!(
                r.speedup >= 1.0,
                "level-sync regressed past sequential at {}/n={}: {:.2}x",
                r.family,
                r.n,
                r.speedup
            );
        }
        // 2. Parallel round execution must pay for itself where there is
        //    hardware to pay with: on hosts with >= 4 cores, the best
        //    multi-threaded row at the headline (--large, n ~ 100k) cell
        //    must beat the single-thread batched row by >= 2x. Small
        //    cells cannot amortize the fan-out, and on smaller hosts the
        //    multi-threaded rows are still recorded (and their outputs
        //    still asserted identical) but timesharing makes a wall-clock
        //    gate meaningless — both cases skip the gate.
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        if cores >= 4 && largest >= 50_000 && threads.iter().any(|&t| t >= 4) {
            for family in ["grid", "tri-grid"] {
                let at = |t: usize| {
                    rows.iter()
                        .find(|r| r.family == family && r.n == largest && r.threads == t)
                        .map(|r| r.level_sync_secs)
                };
                let Some(base) = at(1) else { continue };
                let best = rows
                    .iter()
                    .filter(|r| r.family == family && r.n == largest && r.threads >= 4)
                    .map(|r| r.level_sync_secs)
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    best.is_finite() && base / best >= 2.0,
                    "parallel rounds under 2x at {family}/n={largest}: \
                     {base:.4}s (1 thread) vs {best:.4}s (best multi-threaded)"
                );
            }
        }
        return;
    }

    if run_all || which == "t1" {
        println!("== T1: Theorem 1.1 scaling (rounds vs n, ours vs trivial baseline) ==");
        let rows = t1_scaling(sizes);
        let data: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.family.to_string(),
                    r.n.to_string(),
                    r.d.to_string(),
                    r.ours_rounds.to_string(),
                    r.baseline_rounds.to_string(),
                    format!("{:.2}", r.normalized),
                    r.depth.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                &[
                    "family",
                    "n",
                    "D",
                    "ours",
                    "baseline",
                    "ours/(D*min(lg n,D))",
                    "depth"
                ],
                &data
            )
        );
    }

    if run_all || which == "t2" {
        let area = if large { 16384 } else { 4096 };
        println!("== T2: rounds vs D at fixed n = {area} (grid aspect sweep) ==");
        let rows = t2_diameter(area);
        let data: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.instance.clone(),
                    r.n.to_string(),
                    r.d.to_string(),
                    r.ours_rounds.to_string(),
                    r.baseline_rounds.to_string(),
                    format!("{:.1}", r.rounds_per_d),
                ]
            })
            .collect();
        println!(
            "{}",
            render(&["instance", "n", "D", "ours", "baseline", "ours/D"], &data)
        );
    }

    if run_all || which == "t3" {
        println!("== T3: Lemmas 4.2/4.3 (recursion depth, part ratios, final parts) ==");
        let rows = t3_partition(sizes);
        let data: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.family.to_string(),
                    r.n.to_string(),
                    r.depth.to_string(),
                    format!("{:.1}", r.depth_bound),
                    format!("{:.3}", r.max_child_ratio),
                    r.max_final_parts.to_string(),
                    r.d.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                &[
                    "family",
                    "n",
                    "depth",
                    "log3/2(n)",
                    "max|Pi|/|Ts|",
                    "maxFinalParts",
                    "D"
                ],
                &data
            )
        );
    }

    if run_all || which == "t4" {
        println!("== T4: Lemma 5.3 symmetry breaking (outerplanar, proper coloring) ==");
        let sweep: &[usize] = if large {
            &[16, 64, 256, 1024, 4096, 16384]
        } else {
            &[16, 64, 256, 1024]
        };
        let rows = t4_symmetry(sweep);
        let data: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    r.rounds.to_string(),
                    r.stars.to_string(),
                    format!("{:.2}", r.merged_fraction),
                    r.long_paths.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(&["n", "rounds", "stars", "mergedFrac", "longPaths"], &data)
        );
    }

    if run_all || which == "t5" {
        println!("== T5: Omega(D) lower-bound instance (subdivided K4) ==");
        let lens: &[usize] = if large {
            &[4, 8, 16, 32, 64, 128]
        } else {
            &[4, 8, 16, 32]
        };
        let rows = t5_lower_bound(lens);
        let data: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.len.to_string(),
                    r.n.to_string(),
                    r.d.to_string(),
                    r.ours_rounds.to_string(),
                    r.at_least_d.to_string(),
                    r.consistent.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(&["L", "n", "D", "ours", "rounds>=D", "consistent"], &data)
        );
    }

    if run_all || which == "t6" {
        println!("== T6: CONGEST discipline audit ==");
        let rows = t6_congestion(sizes);
        let data: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.family.to_string(),
                    r.n.to_string(),
                    r.budget_words.to_string(),
                    r.max_words_edge_round.to_string(),
                    r.messages.to_string(),
                    r.bits.to_string(),
                    r.within_budget.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                &[
                    "family",
                    "n",
                    "budget",
                    "maxW/edge/rd",
                    "messages",
                    "bits",
                    "ok"
                ],
                &data
            )
        );
    }

    if run_all || which == "fobs" {
        println!("== F-obs32: Observation 3.2 interface characterization ==");
        let rows = fobs_interface();
        let data: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.instance.to_string(),
                    r.achievable_orders.to_string(),
                    r.predicted_orders.to_string(),
                    r.summary_blocks.to_string(),
                    r.summary_words.to_string(),
                    r.matches.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                &[
                    "instance",
                    "achievable",
                    "predicted",
                    "blocks",
                    "words",
                    "match"
                ],
                &data
            )
        );
    }

    if run_all || which == "ablate" {
        let n = if large { 1024 } else { 256 };
        println!("== Ablation: per-edge word budget B vs rounds (n = {n}) ==");
        let rows = ablate_budget(n);
        let data: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.family.to_string(),
                    r.budget_words.to_string(),
                    r.ours_rounds.to_string(),
                    r.baseline_rounds.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(&["family", "B(words)", "ours", "baseline"], &data)
        );
    }

    if run_all || which == "fsafe" {
        println!("== F-safe: Definition 3.1 safety, full invariant checking ==");
        let sweep: &[usize] = if large { &[64, 256] } else { &[48, 96] };
        let rows = fsafe(sweep);
        let data: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.family.to_string(),
                    r.n.to_string(),
                    r.all_invariants_held.to_string(),
                    r.merges_checked.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(&["family", "n", "invariantsHeld", "mergesChecked"], &data)
        );
    }
}

/// `harness mem`: the CI memory gate. Runs an n = 250,000
/// random-maximal-planar graph through the full distributed pipeline
/// ([`planar_bench::kernelbench::embed_mem`]) and fails (exit 1) if the
/// process peak RSS exceeds the ceiling — the regression guard for the
/// struct-of-arrays kernel layout (a layout regression multiplies
/// per-node bytes, which at this n clears the headroom long before it
/// hurts anyone's laptop). Skips the gate (with a notice) where the
/// peak-RSS probe is unavailable.
fn run_mem() {
    /// Peak-RSS ceiling for the n = 250k smoke embedding. The measured
    /// peak on the reference host is ~480 MiB (the retained kernel
    /// arena is ~234 MiB ≈ 983 B/node; the rest is the graph and
    /// driver artifacts), so 2 GiB is >4x headroom without tolerating
    /// a per-node blowup.
    const CEILING_BYTES: usize = 2 << 30;
    const N: usize = 250_000;

    println!("== mem: n = {N} random-maximal-planar embedding, peak-RSS gate ==");
    let row = planar_bench::kernelbench::embed_mem(N);
    println!(
        "embed/{} n={} rounds={} secs={:.3} kernel={} ({:.1} B/node) rss={}",
        row.family,
        row.n,
        row.rounds,
        row.secs,
        planar_bench::mem::fmt_bytes(row.kernel_bytes),
        row.bytes_per_node(),
        planar_bench::mem::fmt_bytes(row.peak_rss_bytes),
    );
    if row.peak_rss_bytes == 0 {
        println!("peak-RSS probe unavailable on this platform; ceiling not gated");
        return;
    }
    if row.peak_rss_bytes > CEILING_BYTES {
        eprintln!(
            "peak RSS {} exceeds the {} ceiling — kernel memory layout regression",
            planar_bench::mem::fmt_bytes(row.peak_rss_bytes),
            planar_bench::mem::fmt_bytes(CEILING_BYTES),
        );
        std::process::exit(1);
    }
    println!(
        "peak RSS {} within the {} ceiling",
        planar_bench::mem::fmt_bytes(row.peak_rss_bytes),
        planar_bench::mem::fmt_bytes(CEILING_BYTES),
    );
}

/// The test-only canary skew `--canary` arms (any non-zero value works;
/// this one is recognizable in artifacts).
const CANARY_SKEW: u64 = 0xDEAD_BEEF_0BAD_CAFE;

/// `harness dst [--swarm <count>] [--seed <base>] [--canary]
/// [--artifacts <dir>]`: swarm mode with `--swarm`, single-seed
/// bit-identical replay without. Exits 1 if any scenario violated an
/// oracle (except under `--canary`, where violations are the expected
/// outcome and *zero* divergences would be the failure), 2 on bad flags.
fn run_dst(args: &[String]) {
    let mut swarm: Option<usize> = None;
    let mut seed: u64 = 0;
    let mut canary = false;
    let mut artifacts = String::from("dst-artifacts");
    let mut it = args.iter().map(String::as_str).peekable();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| match it.next() {
            Some(v) => v.to_string(),
            None => {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            }
        };
        match arg {
            "dst" => {}
            "--swarm" => {
                swarm = Some(value_of("--swarm").parse().unwrap_or_else(|_| {
                    eprintln!("--swarm needs an integer count");
                    std::process::exit(2);
                }));
            }
            "--seed" => {
                seed = value_of("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("--seed needs a u64");
                    std::process::exit(2);
                });
            }
            "--canary" => canary = true,
            "--artifacts" => artifacts = value_of("--artifacts"),
            "--help" => {
                print!("{}", planar_bench::cli::usage());
                return;
            }
            other => {
                eprintln!("unknown dst flag `{other}`");
                eprint!("{}", planar_bench::cli::usage());
                std::process::exit(2);
            }
        }
    }
    let skew = if canary { CANARY_SKEW } else { 0 };

    let Some(count) = swarm else {
        // Single-seed replay: the bit-identical reproduction path for a
        // failing seed reported by a swarm.
        let run = planar_dst::run_one(seed, skew, planar_dst::DEFAULT_BUDGET);
        println!("{}", run.progress_line());
        print!("{}", planar_dst::run_artifact(&run));
        if !run.report.violations.is_empty() && !canary {
            std::process::exit(1);
        }
        return;
    };

    println!(
        "== dst: {count} scenarios from seed {seed}{} ==",
        if canary { " (canary armed)" } else { "" }
    );
    let options = planar_dst::SwarmOptions {
        base_seed: seed,
        count,
        canary_skew: skew,
        ..planar_dst::SwarmOptions::default()
    };
    let report = planar_dst::run_swarm(&options, |run| println!("{}", run.progress_line()));

    let dir = std::path::Path::new(&artifacts);
    std::fs::create_dir_all(dir).expect("create artifact directory");
    for run in &report.runs {
        let path = dir.join(format!("dst_{}.json", run.seed));
        std::fs::write(&path, planar_dst::run_artifact(run)).expect("write run artifact");
    }
    let summary = std::path::Path::new("BENCH_dst.json");
    std::fs::write(summary, report.to_json()).expect("write BENCH_dst.json");
    println!(
        "wrote {} and {} artifacts under {}",
        summary.display(),
        report.runs.len(),
        dir.display()
    );

    let violating = report.violating();
    if canary {
        // Self-test mode: the armed canary must be caught on every faulty
        // scenario whose fate function is actually consulted; zero catches
        // means the oracles are blind.
        println!("canary mode: {violating}/{count} scenarios caught the armed canary");
        if violating == 0 {
            eprintln!("canary escaped every scenario — shadow oracles are not looking");
            std::process::exit(1);
        }
    } else if violating > 0 {
        eprintln!(
            "{violating} scenario(s) violated an oracle: seeds {:?} (replay with \
             `harness dst --seed <seed>`; minimized reproducers are in the artifacts)",
            report.violating_seeds()
        );
        std::process::exit(1);
    }
}

/// The committed incremental-coverage baseline: the delta planner keeps
/// a majority of ChurnGen's applied deltas off the full path. The gate
/// fails a soak whose coverage drops below this (override per run with
/// `--min-coverage`).
const SERVICE_MIN_COVERAGE: f64 = 0.5;

/// Classes need this many measured latency pairs before their dividend
/// gate arms — a near-empty cell's p50 is noise, not evidence.
const SERVICE_CLASS_GATE_MIN_COUNT: usize = 8;

/// `harness service [--fleet <count>] [--deltas <count>] [--min-coverage
/// <frac>] [--large]`: multi-tenant churn soak with the full re-embed
/// oracle armed on every delta. Exits 1 on any incremental-vs-oracle
/// divergence, if incremental coverage drops below the committed
/// baseline, or if any class with enough evidence (headline family
/// included) fails to beat the full re-embed; 2 on bad flags.
fn run_service(args: &[String], large: bool) {
    let mut opts = planar_bench::servicebench::ServiceBenchOptions::default();
    let mut min_coverage = SERVICE_MIN_COVERAGE;
    if large {
        opts.tenant_n *= 2;
    }
    let mut it = args.iter().map(String::as_str).peekable();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> usize {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => v,
                None => {
                    eprintln!("{flag} needs an integer value");
                    std::process::exit(2);
                }
            }
        };
        match arg {
            "service" | "--large" => {}
            "--fleet" => opts.fleet = value_of("--fleet"),
            "--deltas" => opts.deltas = value_of("--deltas"),
            "--min-coverage" => {
                min_coverage = match it.next().and_then(|v| v.parse::<f64>().ok()) {
                    Some(v) if (0.0..=1.0).contains(&v) => v,
                    _ => {
                        eprintln!("--min-coverage needs a fraction in [0, 1]");
                        std::process::exit(2);
                    }
                }
            }
            "--help" => {
                print!("{}", planar_bench::cli::usage());
                return;
            }
            other => {
                eprintln!("unknown service flag `{other}`");
                eprint!("{}", planar_bench::cli::usage());
                std::process::exit(2);
            }
        }
    }

    println!(
        "== service: {} tenants x {} deltas (n ~ {}), full re-embed oracle armed ==",
        opts.fleet, opts.deltas, opts.tenant_n
    );
    let report = planar_bench::servicebench::service_soak(&opts);
    let data: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.family.to_string(),
                r.tenants.to_string(),
                r.applied.to_string(),
                r.incremental.to_string(),
                r.tree_preserving.to_string(),
                r.tree_repairable.to_string(),
                r.vertex_set.to_string(),
                r.full_fallbacks.to_string(),
                r.rejected_nonplanar.to_string(),
                format!("{:.0}", r.p50_service_us),
                format!("{:.0}", r.p99_service_us),
                format!("{:.0}", r.p50_incremental_us),
                format!("{:.0}", r.p50_full_us),
                format!("{:.2}x", r.speedup_p50),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "family", "tenants", "applied", "incr", "treeP", "treeR", "vset", "fallback",
                "rejected", "p50(us)", "p99(us)", "incrP50", "fullP50", "speedup"
            ],
            &data
        )
    );
    let class_data: Vec<Vec<String>> = report
        .classes
        .iter()
        .map(|c| {
            vec![
                c.class.code().to_string(),
                c.count.to_string(),
                format!("{:.0}", c.p50_incremental_us),
                format!("{:.0}", c.p50_full_us),
                format!("{:.2}x", c.speedup_p50),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["class", "count", "incrP50", "fullP50", "speedup"],
            &class_data
        )
    );
    println!(
        "fleet: {} tenants, {} embeddings in {:.2}s service time = {:.0} embeddings/sec, \
         incremental coverage {:.1}% (baseline {:.0}%)",
        report.fleet,
        report.total_embeddings,
        report.service_secs,
        report.embeddings_per_sec,
        report.incremental_coverage * 100.0,
        min_coverage * 100.0
    );
    let path = std::path::Path::new("BENCH_service.json");
    planar_bench::servicebench::write_json(path, &report).expect("write BENCH_service.json");
    println!("wrote {}", path.display());

    if report.divergences > 0 {
        eprintln!(
            "{} incremental re-embedding(s) diverged from the full re-embed oracle — \
             the bit-identity contract is broken",
            report.divergences
        );
        std::process::exit(1);
    }
    if report.incremental_coverage < min_coverage {
        eprintln!(
            "incremental coverage {:.1}% fell below the committed baseline {:.0}% — \
             the delta planner is sending too many deltas to the full path",
            report.incremental_coverage * 100.0,
            min_coverage * 100.0
        );
        std::process::exit(1);
    }
    let mut gate_failed = false;
    for c in &report.classes {
        if c.count >= SERVICE_CLASS_GATE_MIN_COUNT && c.speedup_p50 <= 1.0 {
            eprintln!(
                "class {} claims the incremental path but pays no dividend \
                 ({:.2}x over {} deltas)",
                c.class.code(),
                c.speedup_p50,
                c.count
            );
            gate_failed = true;
        }
    }
    if let Some(headline) = report.headline() {
        if headline.speedup_p50 <= 1.0 {
            eprintln!(
                "incremental re-embedding is not faster than a full re-embed at the \
                 headline cell ({}: {:.2}x)",
                headline.family, headline.speedup_p50
            );
            gate_failed = true;
        }
    }
    if gate_failed {
        std::process::exit(1);
    }
}
