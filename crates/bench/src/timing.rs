//! Minimal wall-clock benchmarking: a criterion stand-in for the offline
//! build environment (criterion cannot be vendored; see `shims/README.md`).
//!
//! Bench targets stay `harness = false` binaries; each calls [`bench`] per
//! case and gets a criterion-style `name  time: [min median max]` line plus
//! a structured [`Sample`] for further aggregation (the kernel benchmark
//! turns these into a JSON perf record).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark case: timing distribution over `iters` measured runs.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Case label, e.g. `"t1_embed_distributed/grid16"`.
    pub name: String,
    /// Number of measured iterations (after one warm-up run).
    pub iters: usize,
    /// Fastest iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

impl Sample {
    /// Median time in seconds.
    pub fn median_secs(&self) -> f64 {
        self.median.as_secs_f64()
    }
}

/// Runs `f` once to warm up, then `iters` measured times, and prints a
/// criterion-style summary line. The closure's result is passed through
/// [`black_box`] so the optimizer cannot elide the work.
pub fn bench<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) -> Sample {
    assert!(iters > 0, "need at least one measured iteration");
    black_box(f());
    let mut times: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        times.push(t0.elapsed());
    }
    times.sort();
    let sample = Sample {
        name: name.to_string(),
        iters,
        min: times[0],
        median: times[times.len() / 2],
        max: times[times.len() - 1],
    };
    println!(
        "{:<44} time: [{:>10.3?} {:>10.3?} {:>10.3?}]  ({} iters)",
        sample.name, sample.min, sample.median, sample.max, sample.iters
    );
    sample
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_ordered_distribution() {
        let s = bench("noop", 5, || 1 + 1);
        assert_eq!(s.iters, 5);
        assert!(s.min <= s.median && s.median <= s.max);
    }
}
