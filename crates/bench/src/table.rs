//! Minimal fixed-width text-table rendering for the harness output.

/// Renders a table: a header row plus data rows, columns padded to the
/// widest cell, separated by two spaces.
///
/// # Example
///
/// ```
/// use planar_bench::table::render;
///
/// let out = render(
///     &["n", "rounds"],
///     &[vec!["64".into(), "123".into()], vec!["256".into(), "456".into()]],
/// );
/// assert!(out.contains("n    rounds"));
/// ```
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let s = render(&["a", "bb"], &[vec!["xxx".into(), "1".into()]]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a  "));
        assert!(lines[2].starts_with("xxx"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_bad_rows() {
        render(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
