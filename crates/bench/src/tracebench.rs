//! Trace sweep: the full embedding pipeline under the trace auditor — the
//! record behind `BENCH_trace.json`.
//!
//! For each substrate (`grid`, `tri-grid`) × size × mode (fault-free,
//! faulty with reliable delivery), one full `embed_distributed` run
//! (certification on) executes with an [`AuditSink`] attached: every
//! kernel segment's event stream is replayed, its `Metrics` are
//! independently recomputed, and any drift against the kernel-reported
//! numbers **panics the sweep** — the CI trace job is a conformance gate,
//! not just a profiler.
//!
//! Reported per cell: the audited segment counts, the recomputed traffic
//! totals, the per-phase round breakdown, and the full per-round profile
//! (messages / words / max-edge-words for every delivering round of every
//! kernel segment, in stream order).

use congest_sim::{AuditSink, FaultPlan, RoundProfile, SimConfig, TraceHandle};
use planar_embedding::{embed_distributed, EmbedError, EmbedderConfig, ReliableConfig};
use planar_lib::gen;

use crate::parallel::par_map;

/// Drop rate of the faulty cells (duplicate = rate/2, delay = rate, max
/// delay 3 rounds) — the mid rate of the chaos sweep.
pub const FAULT_RATE: f64 = 0.03;

/// One audited cell of the trace sweep.
#[derive(Clone, Debug)]
pub struct TraceRow {
    /// Substrate family (`"grid"` or `"tri-grid"`).
    pub family: &'static str,
    /// Vertex count.
    pub n: usize,
    /// Whether this cell ran under the seeded fault plan + reliability.
    pub faulty: bool,
    /// `"ok"` or `"degraded"` (any other outcome panics the sweep).
    pub outcome: &'static str,
    /// Kernel segments completed and audited.
    pub segments: usize,
    /// Segments that aborted (watchdog) — profiled but not diffed.
    pub aborted_segments: usize,
    /// Auditor-recomputed sequential round total across segments.
    pub rounds: usize,
    /// Auditor-recomputed delivered messages.
    pub messages: usize,
    /// Auditor-recomputed delivered words.
    pub words: usize,
    /// Messages dropped by the fault plan (recomputed).
    pub dropped: usize,
    /// Reliable-wrapper retransmissions (from the post-run trace events).
    pub retransmissions: usize,
    /// Rounds simulated per driver phase, aggregated from the profile.
    pub phases: Vec<(&'static str, usize)>,
    /// Per-round rows across all segments, in stream order.
    pub profile: Vec<RoundProfile>,
}

fn substrate(family: &'static str, n: usize) -> planar_graph::Graph {
    let side = (n as f64).sqrt().round() as usize;
    match family {
        "grid" => gen::grid(side, side),
        "tri-grid" => gen::triangulated_grid(side, side),
        other => unreachable!("unknown trace substrate {other}"),
    }
}

/// Runs one audited cell.
///
/// # Panics
///
/// Panics if the trace audit finds any accounting drift, or if the run
/// ends in something other than a verified embedding or a typed
/// [`EmbedError::Degraded`].
pub fn trace_cell(family: &'static str, n: usize, faulty: bool) -> TraceRow {
    let g = substrate(family, n);
    let audit = AuditSink::new();
    let cfg = EmbedderConfig {
        sim: SimConfig {
            faults: if faulty {
                FaultPlan::uniform(42, FAULT_RATE, FAULT_RATE / 2.0, FAULT_RATE, 3)
            } else {
                FaultPlan::default()
            },
            trace: TraceHandle::to(audit.clone()),
            ..SimConfig::default()
        },
        check_invariants: false,
        reliability: faulty.then(ReliableConfig::default),
        certify: true,
        ..EmbedderConfig::default()
    };
    let outcome = match embed_distributed(&g, &cfg) {
        Ok(out) => {
            assert!(
                out.certification.is_some_and(|c| c.accepted()),
                "trace cell {family}/n={n}: certification must accept"
            );
            "ok"
        }
        Err(EmbedError::Degraded { .. }) => "degraded",
        Err(other) => panic!("trace cell {family}/n={n}/faulty={faulty}: {other}"),
    };
    let report = audit.report();
    assert!(
        report.mismatches.is_empty(),
        "trace cell {family}/n={n}/faulty={faulty}: accounting drift: {:?}",
        report.mismatches
    );
    TraceRow {
        family,
        n,
        faulty,
        outcome,
        segments: report.segments,
        aborted_segments: report.aborted_segments,
        rounds: report.totals.rounds,
        messages: report.totals.messages,
        words: report.totals.words,
        dropped: report.totals.dropped,
        retransmissions: report.totals.retransmissions,
        phases: report.phase_rounds(),
        profile: report.profile,
    }
}

/// Runs the full sweep (substrates × `sizes` × fault-free/faulty) through
/// [`par_map`], printing one summary line per cell. Deterministic.
pub fn trace_sweep(sizes: &[usize]) -> Vec<TraceRow> {
    let cells: Vec<(&'static str, usize, bool)> = ["grid", "tri-grid"]
        .into_iter()
        .flat_map(|family| {
            sizes
                .iter()
                .flat_map(move |&n| [false, true].map(|faulty| (family, n, faulty)))
        })
        .collect();
    let rows = par_map(cells, |(family, n, faulty)| trace_cell(family, n, faulty));
    for r in &rows {
        println!(
            "trace/{:<9} n={:<6} faulty={:<5} {:<8} segments={} rounds={} words={} retx={} phases={:?}",
            r.family, r.n, r.faulty, r.outcome, r.segments, r.rounds, r.words, r.retransmissions, r.phases,
        );
    }
    rows
}

/// Renders rows as the `BENCH_trace.json` document (hand-rolled JSON, as
/// the other BENCH files: every field numeric or a known-safe literal).
pub fn to_json(rows: &[TraceRow]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"embedding-trace\",\n");
    s.push_str(
        "  \"metric\": \"audited per-round profile of the full embedding pipeline; \
         every cell's kernel metrics verified against an independent recomputation \
         from its trace\",\n",
    );
    s.push_str("  \"cells\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\"family\": \"{}\", \"n\": {}, \"faulty\": {}, ",
                "\"outcome\": \"{}\", \"segments\": {}, \"aborted_segments\": {}, ",
                "\"rounds\": {}, \"messages\": {}, \"words\": {}, \"dropped\": {}, ",
                "\"retransmissions\": {},\n     \"phase_rounds\": {{"
            ),
            r.family,
            r.n,
            r.faulty,
            r.outcome,
            r.segments,
            r.aborted_segments,
            r.rounds,
            r.messages,
            r.words,
            r.dropped,
            r.retransmissions,
        ));
        for (j, (phase, rounds)) in r.phases.iter().enumerate() {
            s.push_str(&format!(
                "\"{phase}\": {rounds}{}",
                if j + 1 < r.phases.len() { ", " } else { "" }
            ));
        }
        s.push_str("},\n     \"profile\": [");
        for (j, p) in r.profile.iter().enumerate() {
            if j % 4 == 0 {
                s.push_str("\n      ");
            }
            s.push_str(&format!(
                "[\"{}\",{},{},{},{},{}]{}",
                p.phase,
                p.segment,
                p.round,
                p.messages,
                p.words,
                p.max_words_edge,
                if j + 1 < r.profile.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "]}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(
        "  \"profile_columns\": [\"phase\", \"segment\", \"round\", \"messages\", \
         \"words\", \"max_words_edge\"]\n",
    );
    s.push_str("}\n");
    s
}

/// Writes [`to_json`] to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_json(path: &std::path::Path, rows: &[TraceRow]) -> std::io::Result<()> {
    std::fs::write(path, to_json(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_cell_audits_clean_and_profiles_every_round() {
        let r = trace_cell("grid", 64, false);
        assert_eq!(r.outcome, "ok");
        assert_eq!(r.aborted_segments, 0);
        assert!(r.segments > 0);
        assert_eq!(
            r.profile.len(),
            r.rounds,
            "one profile row per delivering round"
        );
        assert_eq!(r.retransmissions, 0);
        assert_eq!(r.dropped, 0);
        let total: usize = r.phases.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, r.rounds, "every profiled round carries a phase");
        assert!(
            r.phases.iter().any(|&(p, _)| p == "cert"),
            "certification rounds must be attributed: {:?}",
            r.phases
        );
    }

    #[test]
    fn faulty_cell_audits_clean_with_wrapper_traffic() {
        let r = trace_cell("tri-grid", 64, true);
        assert!(r.outcome == "ok" || r.outcome == "degraded");
        assert!(r.dropped > 0, "seeded faults must drop something");
    }

    #[test]
    fn json_record_is_well_formed_enough() {
        let rows = vec![trace_cell("grid", 64, false)];
        let j = to_json(&rows);
        assert!(j.contains("\"phase_rounds\""));
        assert!(j.contains("\"profile\""));
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
