//! # planar-bench
//!
//! The benchmark harness regenerating every quantitative claim of the paper
//! (see DESIGN.md §4 for the experiment index). The paper is a theory paper
//! without a measurement section; each experiment below validates one of
//! its stated results:
//!
//! * **T1** — Theorem 1.1: rounds scale as `O(D · min{log n, D})` across
//!   planar families, vs. the trivial `O(n)` baseline (footnote 2).
//! * **T2** — round growth is linear in `D` at (near-)fixed `n`, including
//!   the regime change at `D ~ n / log n` where the trivial baseline takes
//!   over.
//! * **T3** — Lemmas 4.2/4.3: part sizes `<= 2|T_s|/3`, part diameters
//!   below the subtree depth, recursion depth `<= min{log_{3/2} n, D}`.
//! * **T4** — Lemma 5.3: O(1)-round symmetry breaking with guaranteed star
//!   structure and merge progress on outerplanar graphs.
//! * **T5** — the `Omega(D)` lower-bound instance (footnote 1): subdivided
//!   `K_4`, rounds at least `D`, output globally consistent.
//! * **T6** — the CONGEST discipline: max words per edge per round never
//!   exceeds the budget; message/bit audit.
//! * **F-obs32** — Observation 3.2 / Figures 2–4: exhaustively verified
//!   interface characterization on small parts.
//! * **F-safe** — Definition 3.1 / Figure 6: partitions are safe at every
//!   recursion level (run with invariant checking on).
//!
//! Independent trials of a sweep are fanned out through [`parallel::par_map`]
//! (deterministic, input-order results). [`kernelbench`] measures the
//! simulation kernel's message throughput against the preserved seed kernel
//! and emits `BENCH_kernel.json`; [`chaos`] sweeps the embedder under
//! seeded fault injection and emits `BENCH_chaos.json`; [`tracebench`]
//! runs the pipeline under the trace auditor and emits the per-round
//! profile as `BENCH_trace.json`; [`schedbench`] times the
//! level-synchronous scheduler against the sequential oracle and emits
//! `BENCH_sched.json`; [`servicebench`] soaks the multi-tenant embedding
//! service under seeded churn with the full re-embed oracle armed and
//! emits `BENCH_service.json`.
//!
//! Run everything with `cargo run --release -p planar-bench --bin harness`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certbench;
pub mod chaos;
pub mod cli;
pub mod experiments;
pub mod kernelbench;
pub mod mem;
pub mod parallel;
pub mod schedbench;
pub mod servicebench;
pub mod table;
pub mod timing;
pub mod tracebench;

pub use experiments::*;
