//! Criterion benchmarks of the individual substrates: the centralized DMP
//! embedder (the baseline's solver and the merge skeleton solver), the
//! CONGEST kernel protocols (T3's building blocks), the routing scheduler,
//! and the Lemma 5.3 symmetry breaking (T4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use congest_sim::protocols::LeaderBfs;
use congest_sim::routing::{schedule, Transfer};
use congest_sim::{run, SimConfig};
use planar_bench::greedy_coloring;
use planar_embedding::symmetry::symmetry_break;
use planar_lib::gen;

fn bench_dmp(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmp_embed");
    group.sample_size(10);
    for n in [64usize, 256, 1024] {
        let g = gen::random_maximal_planar(n, 9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| planar_lib::embed(g).unwrap().vertex_count())
        });
    }
    group.finish();
}

fn bench_kernel_leader_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_leader_bfs");
    group.sample_size(10);
    for side in [8usize, 16, 32] {
        let g = gen::grid(side, side);
        group.bench_with_input(BenchmarkId::from_parameter(side * side), &g, |b, g| {
            b.iter(|| {
                let programs: Vec<LeaderBfs> = g
                    .vertices()
                    .map(|v| LeaderBfs::new(v, g.neighbors(v).to_vec()))
                    .collect();
                run(g, programs, &SimConfig::default()).unwrap().metrics.rounds
            })
        });
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_schedule");
    group.sample_size(10);
    for n in [128usize, 512] {
        let g = gen::path(n);
        // All-to-root convergecast-style transfer pattern.
        let transfers: Vec<Transfer> = (1..n as u32)
            .map(|i| Transfer::new((0..=i).rev().map(planar_graph::VertexId).collect(), 2))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &transfers, |b, ts| {
            b.iter(|| schedule(&g, ts, 8).unwrap().rounds)
        });
    }
    group.finish();
}

fn bench_symmetry(c: &mut Criterion) {
    let mut group = c.benchmark_group("t4_symmetry_break");
    group.sample_size(10);
    for n in [256usize, 1024] {
        let g = gen::random_outerplanar(n, 5);
        let colors = greedy_coloring(&g);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(g, colors), |b, (g, colors)| {
            b.iter(|| symmetry_break(g, colors, &SimConfig::default()).unwrap().rounds)
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dmp,
    bench_kernel_leader_bfs,
    bench_routing,
    bench_symmetry
);
criterion_main!(benches);
