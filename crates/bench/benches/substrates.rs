//! Wall-clock benchmarks of the individual substrates: the centralized DMP
//! embedder (the baseline's solver and the merge skeleton solver), the
//! CONGEST kernel protocols (T3's building blocks), the routing scheduler,
//! and the Lemma 5.3 symmetry breaking (T4). Timing is hand-rolled via
//! `planar_bench::timing` since criterion cannot be vendored offline.

use congest_sim::protocols::LeaderBfs;
use congest_sim::routing::{schedule, Transfer};
use congest_sim::{run, SimConfig};
use planar_bench::greedy_coloring;
use planar_bench::timing::bench;
use planar_embedding::symmetry::symmetry_break;
use planar_lib::gen;

const SAMPLES: usize = 10;

fn bench_dmp() {
    for n in [64usize, 256, 1024] {
        let g = gen::random_maximal_planar(n, 9);
        bench(&format!("dmp_embed/{n}"), SAMPLES, || {
            planar_lib::embed(&g).unwrap().vertex_count()
        });
    }
}

fn bench_kernel_leader_bfs() {
    for side in [8usize, 16, 32] {
        let g = gen::grid(side, side);
        bench(
            &format!("kernel_leader_bfs/{}", side * side),
            SAMPLES,
            || {
                let programs: Vec<LeaderBfs> = g
                    .vertices()
                    .map(|v| LeaderBfs::new(v, g.neighbors(v).to_vec()))
                    .collect();
                run(&g, programs, &SimConfig::default())
                    .unwrap()
                    .metrics
                    .rounds
            },
        );
    }
}

fn bench_routing() {
    for n in [128usize, 512] {
        let g = gen::path(n);
        // All-to-root convergecast-style transfer pattern.
        let transfers: Vec<Transfer> = (1..n as u32)
            .map(|i| Transfer::new((0..=i).rev().map(planar_graph::VertexId).collect(), 2))
            .collect();
        bench(&format!("routing_schedule/{n}"), SAMPLES, || {
            schedule(&g, &transfers, 8).unwrap().rounds
        });
    }
}

fn bench_symmetry() {
    for n in [256usize, 1024] {
        let g = gen::random_outerplanar(n, 5);
        let colors = greedy_coloring(&g);
        bench(&format!("t4_symmetry_break/{n}"), SAMPLES, || {
            symmetry_break(&g, &colors, &SimConfig::default())
                .unwrap()
                .rounds
        });
    }
}

fn main() {
    bench_dmp();
    bench_kernel_leader_bfs();
    bench_routing();
    bench_symmetry();
}
