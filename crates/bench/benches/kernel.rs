//! Simulation-kernel throughput benchmark:
//! `cargo bench -p planar-bench --bench kernel`.
//!
//! Floods grid and triangulated-grid substrates at n ~ {1k, 10k, 100k} on
//! both the arc-indexed kernel and the preserved seed kernel
//! (`congest_sim::reference`), reporting delivered messages per second, and
//! refreshes `BENCH_kernel.json` at the workspace root. See
//! `planar_bench::kernelbench` for the workload definition.

fn main() {
    let sizes = [1024usize, 10_000, 100_000];
    let rows = planar_bench::kernelbench::kernel_bench(&sizes);
    let embeds = planar_bench::kernelbench::embed_mem_stage(&[100_000, 1_000_000]);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernel.json");
    planar_bench::kernelbench::write_json(&path, &rows, &embeds).expect("write BENCH_kernel.json");
    println!("wrote {}", path.display());
}
