//! Criterion wall-clock benchmarks for the T1/T2 experiments: the
//! distributed embedder vs the trivial baseline across families and sizes.
//! (Round counts — the paper's metric — come from the `harness` binary;
//! these benches track the simulator's own performance.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use planar_embedding::{embed_baseline, embed_distributed, EmbedderConfig};
use planar_lib::gen;

fn fast_config() -> EmbedderConfig {
    EmbedderConfig { check_invariants: false, ..Default::default() }
}

fn bench_t1_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_embed_distributed");
    group.sample_size(10);
    for (name, g) in [
        ("grid16", gen::grid(16, 16)),
        ("fan256", gen::fan(256)),
        ("outerplanar256", gen::random_outerplanar(256, 42)),
        ("tree256", gen::random_tree(256, 42)),
        ("k4subdiv16", gen::k4_subdivided(16)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| embed_distributed(g, &fast_config()).unwrap().metrics.rounds)
        });
    }
    group.finish();

    let mut group = c.benchmark_group("t1_baseline");
    group.sample_size(10);
    for (name, g) in [("grid16", gen::grid(16, 16)), ("fan256", gen::fan(256))] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| embed_baseline(g, &Default::default()).unwrap().metrics.rounds)
        });
    }
    group.finish();
}

fn bench_t2_aspect(c: &mut Criterion) {
    let mut group = c.benchmark_group("t2_grid_aspect");
    group.sample_size(10);
    for (r, cdim) in [(32usize, 32usize), (16, 64), (8, 128)] {
        let g = gen::grid(r, cdim);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{r}x{cdim}")),
            &g,
            |b, g| b.iter(|| embed_distributed(g, &fast_config()).unwrap().metrics.rounds),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_t1_families, bench_t2_aspect);
criterion_main!(benches);
