//! Wall-clock benchmarks for the T1/T2 experiments: the distributed
//! embedder vs the trivial baseline across families and sizes. (Round
//! counts — the paper's metric — come from the `harness` binary; these
//! benches track the simulator's own performance.) Timing is hand-rolled
//! via `planar_bench::timing` since criterion cannot be vendored offline.

use planar_bench::timing::bench;
use planar_embedding::{embed_baseline, embed_distributed, EmbedderConfig};
use planar_lib::gen;

const SAMPLES: usize = 10;

fn fast_config() -> EmbedderConfig {
    EmbedderConfig {
        check_invariants: false,
        ..Default::default()
    }
}

fn bench_t1_families() {
    for (name, g) in [
        ("grid16", gen::grid(16, 16)),
        ("fan256", gen::fan(256)),
        ("outerplanar256", gen::random_outerplanar(256, 42)),
        ("tree256", gen::random_tree(256, 42)),
        ("k4subdiv16", gen::k4_subdivided(16)),
    ] {
        bench(&format!("t1_embed_distributed/{name}"), SAMPLES, || {
            embed_distributed(&g, &fast_config())
                .unwrap()
                .metrics
                .rounds
        });
    }

    for (name, g) in [("grid16", gen::grid(16, 16)), ("fan256", gen::fan(256))] {
        bench(&format!("t1_baseline/{name}"), SAMPLES, || {
            embed_baseline(&g, &Default::default())
                .unwrap()
                .metrics
                .rounds
        });
    }
}

fn bench_t2_aspect() {
    for (r, cdim) in [(32usize, 32usize), (16, 64), (8, 128)] {
        let g = gen::grid(r, cdim);
        bench(&format!("t2_grid_aspect/{r}x{cdim}"), SAMPLES, || {
            embed_distributed(&g, &fast_config())
                .unwrap()
                .metrics
                .rounds
        });
    }
}

fn main() {
    bench_t1_families();
    bench_t2_aspect();
}
