//! Certificate splicing: carry unchanged per-node certificates across an
//! incremental re-embedding instead of re-distributing the full set.
//!
//! When an edge delta re-embeds a resident graph, most nodes end up with
//! the *same* certificate as before — face labels are lexicographic orbit
//! minima, so faces untouched by the delta keep their labels, and the
//! spanning-forest counters of nodes far from the delta's certification
//! forest path are unchanged. [`splice_certificates`] exploits this: it
//! takes the resident (old) certificate set and a freshly built scratch
//! set for the new rotation, and assembles the output by *keeping the old
//! certificate object wherever it equals the scratch one*, replacing only
//! the certificates that actually changed.
//!
//! Two properties make this sound and useful:
//!
//! * **Equality to scratch by construction** — every output entry is
//!   `==` the scratch entry for that node (either it *is* the scratch
//!   entry, or it is an old entry that compares equal), so the spliced set
//!   is bit-identical to what a from-scratch certification would
//!   distribute, and the distributed verifier's verdict on it is the
//!   from-scratch verdict. The incremental path therefore never weakens
//!   the proof-labeling scheme.
//! * **Re-distribution accounting** — in the distributed reading, only
//!   *rebuilt* certificates must be shipped to their nodes; nodes whose
//!   certificate is reused already hold it. [`SpliceStats`] reports how
//!   many certificates (and how many `O(Δ log n)`-bit words) the splice
//!   avoided re-distributing — the measured locality of the delta.
//!
//! The scratch build itself is a cheap host-side `O(n + m)` pass
//! ([`build_certificates`](crate::build_certificates)); what splicing
//! saves is the per-node re-distribution, and what the incremental driver
//! saves independently is the kernel re-simulation of clean recursion
//! subtrees.

use crate::certificate::Certificate;

/// Outcome accounting of one [`splice_certificates`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpliceStats {
    /// Nodes whose resident certificate survived the delta unchanged
    /// (no re-distribution needed).
    pub reused: usize,
    /// Nodes whose certificate changed and must be re-shipped.
    pub rebuilt: usize,
    /// Total certificate words *not* re-distributed thanks to reuse
    /// (the sum of [`Certificate::words`] over reused nodes).
    pub words_reused: u64,
}

impl SpliceStats {
    /// Fraction of nodes whose certificate was reused (`0.0` for an
    /// empty graph).
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.reused + self.rebuilt;
        if total == 0 {
            0.0
        } else {
            self.reused as f64 / total as f64
        }
    }
}

/// Splices a resident certificate set with a freshly built scratch set:
/// per node, keeps the old certificate when it equals the new one and
/// adopts the scratch certificate otherwise. Returns the spliced set —
/// element-wise equal to `scratch` by construction — plus reuse
/// accounting.
///
/// `old` and `scratch` may have different lengths (a node delta changes
/// the vertex count); nodes beyond the old set's length are always
/// rebuilt.
pub fn splice_certificates(
    old: &[Certificate],
    scratch: Vec<Certificate>,
) -> (Vec<Certificate>, SpliceStats) {
    let mut stats = SpliceStats::default();
    let spliced = scratch
        .into_iter()
        .enumerate()
        .map(|(i, fresh)| match old.get(i) {
            Some(resident) if *resident == fresh => {
                stats.reused += 1;
                stats.words_reused += resident.words() as u64;
                resident.clone()
            }
            _ => {
                stats.rebuilt += 1;
                fresh
            }
        })
        .collect();
    (spliced, stats)
}

/// [`splice_certificates`] for a *departure* delta: the resident graph
/// lost vertex `removed`, so resident ids above it shifted down by one in
/// the new graph. Scratch certificate `i` is compared against resident
/// certificate `i` below the removal point and `i + 1` at or above it —
/// nodes whose certificate content survived the renumbering (faces and
/// counters away from the departed vertex) still splice, which a naive
/// index-aligned comparison would miss for every id above `removed`.
pub fn splice_certificates_shifted(
    old: &[Certificate],
    scratch: Vec<Certificate>,
    removed: usize,
) -> (Vec<Certificate>, SpliceStats) {
    let mut stats = SpliceStats::default();
    let spliced = scratch
        .into_iter()
        .enumerate()
        .map(|(i, fresh)| {
            let old_index = if i < removed { i } else { i + 1 };
            match old.get(old_index) {
                Some(resident) if *resident == fresh => {
                    stats.reused += 1;
                    stats.words_reused += resident.words() as u64;
                    resident.clone()
                }
                _ => {
                    stats.rebuilt += 1;
                    fresh
                }
            }
        })
        .collect();
    (spliced, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_certificates;
    use planar_graph::VertexId;
    use planar_lib::{embed, gen};

    #[test]
    fn splice_against_identical_set_reuses_everything() {
        let g = gen::grid(4, 4);
        let rot = embed(&g).unwrap();
        let old = build_certificates(&g, &rot).unwrap();
        let scratch = build_certificates(&g, &rot).unwrap();
        let (spliced, stats) = splice_certificates(&old, scratch.clone());
        assert_eq!(spliced, scratch);
        assert_eq!(stats.reused, g.vertex_count());
        assert_eq!(stats.rebuilt, 0);
        assert!(stats.words_reused > 0);
        assert_eq!(stats.reuse_ratio(), 1.0);
    }

    #[test]
    fn splice_after_edge_delta_equals_scratch_and_reuses_far_nodes() {
        let mut g = gen::grid(5, 5);
        let rot_old = embed(&g).unwrap();
        let old = build_certificates(&g, &rot_old).unwrap();
        // Delete one corner-adjacent grid edge; the far side of the grid
        // keeps its faces.
        g.remove_edge(VertexId(0), VertexId(1)).unwrap();
        let rot_new = embed(&g).unwrap();
        let scratch = build_certificates(&g, &rot_new).unwrap();
        let (spliced, stats) = splice_certificates(&old, scratch.clone());
        assert_eq!(spliced, scratch, "spliced set must be scratch-identical");
        assert_eq!(stats.reused + stats.rebuilt, g.vertex_count());
        assert!(stats.rebuilt > 0, "the delta must touch some certificate");
    }

    #[test]
    fn splice_handles_vertex_count_changes() {
        let g_old = gen::path(4);
        let g_new = gen::path(6);
        let old = build_certificates(&g_old, &embed(&g_old).unwrap()).unwrap();
        let scratch = build_certificates(&g_new, &embed(&g_new).unwrap()).unwrap();
        let (spliced, stats) = splice_certificates(&old, scratch.clone());
        assert_eq!(spliced, scratch);
        assert_eq!(stats.reused + stats.rebuilt, 6);
    }
}
