//! # planar-cert
//!
//! Distributed certification of planar embeddings: a *proof-labeling
//! scheme* in the style of Feuilloley, Fraigniaud, Montealegre, Rapaport,
//! Rémila & Todinca, *Compact Distributed Certification of Planar Graphs*
//! (PODC 2020), specialized to certify the rotation systems produced by the
//! `planar-embedding` driver.
//!
//! This layer is *our addition beyond the source paper* (Ghaffari &
//! Haeupler, PODC 2016): the paper's output — each node holding its
//! clockwise edge order — was previously only checkable by a centralized
//! pass that collects the whole rotation, which contradicts the CONGEST
//! setting. Here, a prover (the [`certificate`] builder, run by the party
//! that computed the embedding) assigns each node `O(Δ log n)` bits of
//! certificate, and the [`verifier`] — an ordinary
//! [`NodeProgram`](congest_sim::NodeProgram) for the CONGEST kernels —
//! checks the embedding in **2 rounds** (one exchange of certificate
//! openings, one of subtree counters) using only local information:
//!
//! * **Rotation / face closure** — each node checks its rotation is a
//!   permutation of its true neighbor set, and that the face label claimed
//!   for every incoming arc matches the label of that arc's face successor,
//!   which the node owns. Accepting everywhere forces labels constant on
//!   every face orbit, so at most one arc per face counts as its *leader*.
//! * **Counter consistency** — spanning-forest parent pointers plus
//!   depth checks force an exact forest; every node checks its claimed
//!   subtree (vertex, arc, face-leader) counters equal its own local
//!   contribution plus its children's claims, making the root's counters
//!   exact sums by induction.
//! * **Euler bound** — each component root checks `f = m − n + 2` on its
//!   component (the per-component form of `f = m − n + 1 + c`). Since the
//!   claimed face count is at most the true face count and rotations on an
//!   orientable surface satisfy `f = m − n + 2 − 2·genus`, equality forces
//!   genus 0: the embedding is planar.
//!
//! **Soundness**: any corruption of the rotation that changes its genus to
//! a positive value, or of any certificate field, makes at least one node
//! reject (see the seeded [`mutate`] harness and `tests/soundness.rs`).
//! **Completeness**: the honest builder's certificates are accepted at
//! every node for every planar rotation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certificate;
pub mod error;
pub mod mutate;
pub mod splice;
pub mod verifier;

pub use certificate::{build_certificates, build_certificates_with_tree, Certificate};
pub use error::CertError;
pub use mutate::{apply_mutation, mutation_classes, Mutation, MutationClass};
pub use splice::{splice_certificates, splice_certificates_shifted, SpliceStats};
pub use verifier::{
    verify_distributed, verify_distributed_reference, verify_distributed_with, verify_orders_with,
    CertMsg, CertVerifier, Kernel, Verdict, VerifyReport, Violation,
};
