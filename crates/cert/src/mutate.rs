//! Seeded corruption harness for soundness testing.
//!
//! Each [`MutationClass`] injects one adversarial change into an honest
//! `(rotation, certificates)` pair; the soundness claim — checked by
//! `tests/soundness.rs` on both kernels — is that every applied mutation
//! makes **at least one node reject**. Selection is driven by a local
//! splitmix64 stream, so `(inputs, class, seed)` fully determines the
//! mutation and the verifier outcome is replayable bit-for-bit.
//!
//! Mutated rotations are returned as raw per-vertex orders (not a
//! [`RotationSystem`]) because some corruptions — duplicating a rotation
//! entry, say — are exactly the malformed inputs `RotationSystem::new`
//! refuses to represent; feed them to
//! [`verify_orders_with`](crate::verifier::verify_orders_with).

use planar_graph::{Graph, RotationSystem, VertexId};

use crate::certificate::{build_certificates, Certificate};

/// The corruption classes of the soundness suite. Each targets a distinct
/// verifier check (see the per-variant docs for the node guaranteed to
/// reject).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MutationClass {
    /// Transpose two adjacent entries of one rotation so the resulting
    /// rotation system has positive genus, then *rebuild the certificates
    /// honestly* for the corrupted rotation — the strongest adversary for
    /// this class. Rejection: the component root's Euler check
    /// (`f = m − n + 2 − 2·genus` with genus ≥ 1). Unavailable when no
    /// such swap exists (e.g. trees, where every rotation is planar).
    RotationSwap,
    /// Overwrite one rotation entry with its cyclic successor, so the
    /// rotation is no longer a permutation of the neighbor set.
    /// Rejection: `RotationNotPermutation` at the mutated node.
    RotationDuplicate,
    /// Swap the endpoints of one face label (never a fixed point: the
    /// graph is simple, so `u ≠ v`). Rejection: the face-closure check at
    /// the arc's head (and/or `LabelNotCanonical` at the tail).
    FaceLabelCorrupt,
    /// Add 1 to one component of one node's subtree counter triple.
    /// Rejection: the counter-consistency check at the mutated node (its
    /// local-plus-children sum no longer matches its claim).
    CounterCorrupt,
    /// Repoint one non-root node's parent at a different neighbor.
    /// Rejection: the *old* parent's counter check — it still claims the
    /// rewired child's subtree but no longer receives its contribution.
    ParentRewire,
    /// Add 1 to one node's claimed depth. Rejection: `ParentDepth` at the
    /// mutated node, or `RootFlags` if it is a root (parent `None` forces
    /// depth 0).
    DepthCorrupt,
    /// Replace one non-isolated node's claimed component root. Rejection:
    /// `RootMismatch` at the mutated node (every neighbor opens the true
    /// root).
    RootCorrupt,
}

/// All mutation classes, for matrix-style test loops.
pub fn mutation_classes() -> [MutationClass; 7] {
    [
        MutationClass::RotationSwap,
        MutationClass::RotationDuplicate,
        MutationClass::FaceLabelCorrupt,
        MutationClass::CounterCorrupt,
        MutationClass::ParentRewire,
        MutationClass::DepthCorrupt,
        MutationClass::RootCorrupt,
    ]
}

/// A description of one applied corruption, for test diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mutation {
    /// The class that was applied.
    pub class: MutationClass,
    /// The node whose rotation or certificate was corrupted.
    pub vertex: VertexId,
    /// Human-readable detail (which slot / field / neighbor).
    pub detail: String,
}

/// splitmix64: tiny, seedable, and good enough to pick corruption sites.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pick<T: Copy>(candidates: &[T], rng: &mut u64) -> Option<T> {
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[(splitmix64(rng) % candidates.len() as u64) as usize])
    }
}

/// Applies one seeded corruption of the given class to an honest
/// `(rotation, certificates)` pair.
///
/// Returns the mutated per-vertex rotation orders, the mutated
/// certificates, and a [`Mutation`] describing what changed — or `None`
/// when the class has no valid site on this input (e.g.
/// [`MutationClass::RotationSwap`] on a tree, or
/// [`MutationClass::ParentRewire`] when every non-root has degree 1).
/// The inputs are never modified.
pub fn apply_mutation(
    g: &Graph,
    rot: &RotationSystem,
    certs: &[Certificate],
    class: MutationClass,
    seed: u64,
) -> Option<(Vec<Vec<VertexId>>, Vec<Certificate>, Mutation)> {
    // Mix the class into the stream so different classes at the same seed
    // pick independent sites.
    let mut rng = seed ^ (class as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    let orders: Vec<Vec<VertexId>> = g.vertices().map(|v| rot.order_at(v).to_vec()).collect();
    let mut certs = certs.to_vec();

    match class {
        MutationClass::RotationSwap => {
            let mut candidates = Vec::new();
            for v in g.vertices() {
                let d = orders[v.index()].len();
                if d < 3 {
                    // Transposing a rotation of length ≤ 2 leaves the
                    // cyclic order (hence the embedding) unchanged.
                    continue;
                }
                for i in 0..d {
                    let mut m = orders.clone();
                    m[v.index()].swap(i, (i + 1) % d);
                    if let Ok(rs) = RotationSystem::new(g, m) {
                        if !rs.is_planar_embedding() {
                            candidates.push((v, i));
                        }
                    }
                }
            }
            let (v, i) = pick(&candidates, &mut rng)?;
            let d = orders[v.index()].len();
            let mut m = orders;
            m[v.index()].swap(i, (i + 1) % d);
            let rs = RotationSystem::new(g, m.clone()).expect("swap preserves the permutation");
            let honest = build_certificates(g, &rs).expect("rebuild on valid rotation");
            Some((
                m,
                honest,
                Mutation {
                    class,
                    vertex: v,
                    detail: format!("swapped rotation slots {i} and {}", (i + 1) % d),
                },
            ))
        }
        MutationClass::RotationDuplicate => {
            let candidates: Vec<VertexId> = g
                .vertices()
                .filter(|v| orders[v.index()].len() >= 2)
                .collect();
            let v = pick(&candidates, &mut rng)?;
            let d = orders[v.index()].len();
            let i = (splitmix64(&mut rng) % d as u64) as usize;
            let mut m = orders;
            m[v.index()][i] = m[v.index()][(i + 1) % d];
            Some((
                m,
                certs,
                Mutation {
                    class,
                    vertex: v,
                    detail: format!("duplicated rotation entry into slot {i}"),
                },
            ))
        }
        MutationClass::FaceLabelCorrupt => {
            let candidates: Vec<VertexId> = g
                .vertices()
                .filter(|v| !certs[v.index()].labels.is_empty())
                .collect();
            let v = pick(&candidates, &mut rng)?;
            let d = certs[v.index()].labels.len();
            let slot = (splitmix64(&mut rng) % d as u64) as usize;
            let (a, b) = certs[v.index()].labels[slot];
            certs[v.index()].labels[slot] = (b, a);
            Some((
                orders,
                certs,
                Mutation {
                    class,
                    vertex: v,
                    detail: format!("reversed face label at slot {slot}: ({a:?},{b:?})"),
                },
            ))
        }
        MutationClass::CounterCorrupt => {
            let v = VertexId::from_index((splitmix64(&mut rng) % g.vertex_count() as u64) as usize);
            let field = splitmix64(&mut rng) % 3;
            let c = &mut certs[v.index()];
            let name = match field {
                0 => {
                    c.sub_vertices = c.sub_vertices.wrapping_add(1);
                    "sub_vertices"
                }
                1 => {
                    c.sub_arcs = c.sub_arcs.wrapping_add(1);
                    "sub_arcs"
                }
                _ => {
                    c.sub_faces = c.sub_faces.wrapping_add(1);
                    "sub_faces"
                }
            };
            Some((
                orders,
                certs,
                Mutation {
                    class,
                    vertex: v,
                    detail: format!("incremented {name}"),
                },
            ))
        }
        MutationClass::ParentRewire => {
            let mut candidates = Vec::new();
            for v in g.vertices() {
                if let Some(p) = certs[v.index()].parent {
                    for &q in &orders[v.index()] {
                        if q != p {
                            candidates.push((v, q));
                        }
                    }
                }
            }
            let (v, q) = pick(&candidates, &mut rng)?;
            let old = certs[v.index()].parent;
            certs[v.index()].parent = Some(q);
            Some((
                orders,
                certs,
                Mutation {
                    class,
                    vertex: v,
                    detail: format!("rewired parent {old:?} -> Some({q:?})"),
                },
            ))
        }
        MutationClass::DepthCorrupt => {
            let v = VertexId::from_index((splitmix64(&mut rng) % g.vertex_count() as u64) as usize);
            certs[v.index()].depth = certs[v.index()].depth.wrapping_add(1);
            Some((
                orders,
                certs,
                Mutation {
                    class,
                    vertex: v,
                    detail: "incremented depth".to_string(),
                },
            ))
        }
        MutationClass::RootCorrupt => {
            // Isolated vertices are excluded: with no neighbors to compare
            // roots against, a lone root change that also dodges the local
            // id == root check is impossible anyway (changing root on a
            // parentless node trips RootFlags), but degree ≥ 1 keeps the
            // guaranteed rejector simple: RootMismatch at the mutated node.
            let candidates: Vec<VertexId> = g
                .vertices()
                .filter(|v| !orders[v.index()].is_empty())
                .collect();
            let v = pick(&candidates, &mut rng)?;
            let old = certs[v.index()].root;
            let new = VertexId(old.0.wrapping_add(1));
            certs[v.index()].root = new;
            Some((
                orders,
                certs,
                Mutation {
                    class,
                    vertex: v,
                    detail: format!("root {old:?} -> {new:?}"),
                },
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4_minus_edge() -> (Graph, RotationSystem) {
        // Planar, 2-connected, with vertices of degree 3 — rich enough
        // that every mutation class has a site. Rotation from the drawing
        // with the triangle 0-1-2 outside and 3 inside adjacent to 1, 2.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]).unwrap();
        let rot = RotationSystem::new(
            &g,
            vec![
                vec![VertexId(1), VertexId(2)],
                vec![VertexId(0), VertexId(3), VertexId(2)],
                vec![VertexId(1), VertexId(3), VertexId(0)],
                vec![VertexId(1), VertexId(2)],
            ],
        )
        .unwrap();
        assert!(rot.is_planar_embedding());
        (g, rot)
    }

    #[test]
    fn mutations_are_deterministic_per_seed() {
        let (g, rot) = k4_minus_edge();
        let certs = build_certificates(&g, &rot).unwrap();
        for class in mutation_classes() {
            let a = apply_mutation(&g, &rot, &certs, class, 42);
            let b = apply_mutation(&g, &rot, &certs, class, 42);
            assert_eq!(a, b, "{class:?} must be replayable");
        }
    }

    #[test]
    fn every_class_has_a_site_on_a_rich_graph() {
        let (g, rot) = k4_minus_edge();
        let certs = build_certificates(&g, &rot).unwrap();
        for class in mutation_classes() {
            for seed in 0..8 {
                let m = apply_mutation(&g, &rot, &certs, class, seed);
                assert!(m.is_some(), "{class:?} found no site at seed {seed}");
                let (orders, mcerts, _) = m.unwrap();
                // Something must actually have changed.
                let honest: Vec<Vec<VertexId>> =
                    g.vertices().map(|v| rot.order_at(v).to_vec()).collect();
                assert!(
                    orders != honest || mcerts != certs,
                    "{class:?} at seed {seed} was a no-op"
                );
            }
        }
    }

    #[test]
    fn rotation_swap_is_unavailable_on_trees() {
        // Every rotation of a tree is planar, so no genus-raising swap
        // exists and the class must decline rather than emit a no-op.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (2, 4)]).unwrap();
        let rot = RotationSystem::sorted_default(&g);
        let certs = build_certificates(&g, &rot).unwrap();
        assert!(apply_mutation(&g, &rot, &certs, MutationClass::RotationSwap, 7).is_none());
    }
}
