//! Error type of the certification subsystem.

use std::error::Error;
use std::fmt;

use congest_sim::SimError;
use planar_graph::GraphError;

/// Errors produced while building certificates or running the distributed
/// verifier.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum CertError {
    /// The inputs handed to the builder or verifier are inconsistent with
    /// each other (rotation/graph mismatch, wrong certificate count, a
    /// supplied tree that is not a spanning forest of the graph, ...).
    /// Prover-side misuse, not a property of the embedding.
    BadInput(String),
    /// The kernel simulation running the verifier aborted (budget or round
    /// violations); surfaced rather than hidden.
    Sim(SimError),
    /// An underlying graph error.
    Graph(GraphError),
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::BadInput(msg) => write!(f, "invalid certification input: {msg}"),
            CertError::Sim(e) => write!(f, "verifier simulation error: {e}"),
            CertError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for CertError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CertError::Sim(e) => Some(e),
            CertError::Graph(e) => Some(e),
            CertError::BadInput(_) => None,
        }
    }
}

#[doc(hidden)]
impl From<SimError> for CertError {
    fn from(e: SimError) -> Self {
        CertError::Sim(e)
    }
}

#[doc(hidden)]
impl From<GraphError> for CertError {
    fn from(e: GraphError) -> Self {
        CertError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CertError>();
        let e = CertError::BadInput("x".into());
        assert!(e.to_string().contains("invalid certification input"));
        assert!(e.source().is_none());
        let s: CertError = SimError::WatchdogTimeout { limit: 3 }.into();
        assert!(s.source().is_some());
    }
}
