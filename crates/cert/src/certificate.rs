//! The certificate builder (the *prover* side of the proof-labeling
//! scheme).
//!
//! Given a graph and a rotation system — the embedding output each node of
//! the distributed algorithm holds — the builder assigns every node a
//! [`Certificate`]:
//!
//! * a **spanning-forest opening**: the id of the node's component root, a
//!   tree-parent pointer, and the node's tree depth (one root per
//!   component, chosen as the component's maximum id — the same leader
//!   convention the embedding driver's setup phase uses);
//! * **subtree counters** `(sub_vertices, sub_arcs, sub_faces)`: the sums,
//!   over the node's tree subtree, of `1`, `deg(v)`, and the number of
//!   *face-leader* arcs at `v` (out-arcs that are the lexicographically
//!   minimal directed arc of their face orbit). At the root these equal
//!   `(n, 2m, f)` of the component, which is exactly what the verifier's
//!   Euler check needs;
//! * **per-arc face labels**, in rotation order: for each out-arc, the
//!   lexicographically minimal directed arc on that arc's face orbit
//!   (2 words each, `O(Δ log n)` bits per node in total).
//!
//! All fields are `O(log n)`-bit quantities, so the whole certificate fits
//! the CONGEST word model; [`Certificate::words`] reports the exact wire
//! size used by the size benchmarks.

use std::collections::VecDeque;

use planar_graph::{Graph, RotationSystem, VertexId};
use serde::{Deserialize, Serialize};

use crate::error::CertError;

/// One node's certificate. See the [module docs](self) for the format.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// Id of this node's component root (maximum id in the component for
    /// builder-produced certificates).
    pub root: VertexId,
    /// Tree parent in the spanning forest; `None` exactly at roots.
    pub parent: Option<VertexId>,
    /// Tree depth (0 at roots).
    pub depth: u32,
    /// Vertices in this node's tree subtree.
    pub sub_vertices: u64,
    /// Sum of degrees over the subtree (arc halves; `2m` at the root).
    pub sub_arcs: u64,
    /// Face-leader arcs owned by the subtree (`f` at the root).
    pub sub_faces: u64,
    /// Face label of each out-arc, in *rotation order*: the
    /// lexicographically minimal directed arc of the arc's face orbit.
    pub labels: Vec<(VertexId, VertexId)>,
}

impl Certificate {
    /// Exact on-wire size of this certificate in `O(log n)`-bit words:
    /// `O(1) + 2·deg` (i.e. `O(Δ log n)` bits).
    pub fn words(&self) -> usize {
        // root (1) + parent tag+id (1..2) + depth (1) + three u64 counters
        // (2 each) + labels (2 per arc).
        1 + if self.parent.is_some() { 2 } else { 1 } + 1 + 6 + 2 * self.labels.len()
    }
}

/// Per-vertex face labels in rotation order, paired with per-vertex
/// face-leader counts.
type FaceLabelTables = (Vec<Vec<(VertexId, VertexId)>>, Vec<u64>);

/// Per-vertex face labels (rotation order) and face-leader counts,
/// computed by tracing every face orbit once over the arc index.
fn face_labels(g: &Graph, rot: &RotationSystem) -> Result<FaceLabelTables, CertError> {
    let ai = g.arc_index();
    let two_m = ai.arc_count();
    // Flat tables indexed by arc id / rotation position.
    let mut rot_arc = vec![0u32; two_m]; // arc at rotation position p of v
    let mut pos_of = vec![0usize; two_m]; // rotation position of an arc at its tail
    let mut tail_of = vec![VertexId(0); two_m];
    for v in g.vertices() {
        let order = rot.order_at(v);
        if order.len() != g.degree(v) {
            return Err(CertError::BadInput(format!(
                "rotation at {v} has {} entries, vertex has degree {}",
                order.len(),
                g.degree(v)
            )));
        }
        let base = ai.first_arc(v).index();
        for (p, &w) in order.iter().enumerate() {
            let a = ai.arc(v, w).ok_or_else(|| {
                CertError::BadInput(format!("rotation at {v} names non-neighbor {w}"))
            })?;
            rot_arc[base + p] = a.0;
            pos_of[a.index()] = p;
            tail_of[a.index()] = v;
        }
    }

    // Trace each face orbit once; every arc's label is the orbit's
    // lexicographically minimal (tail, head) pair.
    let mut label = vec![(VertexId(0), VertexId(0)); two_m];
    let mut visited = vec![false; two_m];
    let mut orbit = Vec::new();
    for a0 in 0..two_m {
        if visited[a0] {
            continue;
        }
        orbit.clear();
        let mut a = a0;
        let mut min_pair = (tail_of[a0], ai.head(planar_graph::ArcId(a0 as u32)));
        loop {
            visited[a] = true;
            orbit.push(a);
            let aid = planar_graph::ArcId(a as u32);
            let pair = (tail_of[a], ai.head(aid));
            if pair < min_pair {
                min_pair = pair;
            }
            // Successor of (u, v): the arc (v, w) with w following u in the
            // rotation at v.
            let v = ai.head(aid);
            let p = pos_of[ai.rev(aid).index()];
            let d = ai.degree(v);
            a = rot_arc[ai.first_arc(v).index() + (p + 1) % d] as usize;
            if a == a0 {
                break;
            }
        }
        for &b in &orbit {
            label[b] = min_pair;
        }
    }

    let mut labels = Vec::with_capacity(g.vertex_count());
    let mut leaders = vec![0u64; g.vertex_count()];
    for v in g.vertices() {
        let base = ai.first_arc(v).index();
        let order = rot.order_at(v);
        let mut per_v = Vec::with_capacity(order.len());
        for (p, &w) in order.iter().enumerate() {
            let l = label[rot_arc[base + p] as usize];
            if l == (v, w) {
                leaders[v.index()] += 1;
            }
            per_v.push(l);
        }
        labels.push(per_v);
    }
    Ok((labels, leaders))
}

/// Assembles certificates from a validated spanning forest plus the face
/// labels of the rotation.
fn assemble(
    g: &Graph,
    labels: Vec<Vec<(VertexId, VertexId)>>,
    leaders: &[u64],
    parent: &[Option<VertexId>],
    depth: &[u32],
    root_of: &[VertexId],
) -> Vec<Certificate> {
    let n = g.vertex_count();
    // Leaf-up aggregation: process vertices by decreasing depth so every
    // child is folded into its parent exactly once.
    let mut sub: Vec<(u64, u64, u64)> = g
        .vertices()
        .map(|v| (1u64, g.degree(v) as u64, leaders[v.index()]))
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(depth[v]));
    for &v in &order {
        if let Some(p) = parent[v] {
            let (a, b, c) = sub[v];
            let t = &mut sub[p.index()];
            t.0 += a;
            t.1 += b;
            t.2 += c;
        }
    }
    labels
        .into_iter()
        .enumerate()
        .map(|(v, labels)| Certificate {
            root: root_of[v],
            parent: parent[v],
            depth: depth[v],
            sub_vertices: sub[v].0,
            sub_arcs: sub[v].1,
            sub_faces: sub[v].2,
            labels,
        })
        .collect()
}

/// Builds the certificate of every node for the embedding `rot` of `g`,
/// deriving its own BFS spanning forest (rooted at each component's
/// maximum id, neighbors visited in sorted order — fully deterministic).
///
/// Disconnected graphs are supported: each component gets its own tree and
/// its own Euler check at its root.
///
/// # Errors
///
/// [`CertError::BadInput`] if `rot` does not describe exactly the graph
/// `g` (wrong vertex count, or a rotation entry that is not a neighbor).
pub fn build_certificates(g: &Graph, rot: &RotationSystem) -> Result<Vec<Certificate>, CertError> {
    let n = g.vertex_count();
    if rot.vertex_count() != n {
        return Err(CertError::BadInput(format!(
            "rotation covers {} vertices, graph has {n}",
            rot.vertex_count()
        )));
    }
    // BFS forest: visiting start vertices in decreasing id order makes the
    // first unvisited vertex of each component its maximum id.
    let mut parent: Vec<Option<VertexId>> = vec![None; n];
    let mut depth = vec![0u32; n];
    let mut root_of = vec![VertexId(0); n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    for vi in (0..n).rev() {
        if seen[vi] {
            continue;
        }
        let s = VertexId::from_index(vi);
        seen[vi] = true;
        root_of[vi] = s;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &w in g.neighbors(u) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    parent[w.index()] = Some(u);
                    depth[w.index()] = depth[u.index()] + 1;
                    root_of[w.index()] = s;
                    queue.push_back(w);
                }
            }
        }
    }
    let (labels, leaders) = face_labels(g, rot)?;
    Ok(assemble(g, labels, &leaders, &parent, &depth, &root_of))
}

/// [`build_certificates`] with a caller-supplied spanning forest — e.g.
/// the global BFS tree the embedding driver's setup phase already
/// computed, so certification reuses the tree every node knows its parent
/// in rather than deriving a second one.
///
/// # Errors
///
/// [`CertError::BadInput`] if the rotation does not match `g` (as
/// [`build_certificates`]) or if `(parent, depth)` is not a spanning
/// forest of `g`: wrong lengths, a parent that is not a neighbor, a depth
/// that is not `parent's depth + 1`, or a component with any number of
/// roots other than exactly one.
pub fn build_certificates_with_tree(
    g: &Graph,
    rot: &RotationSystem,
    parent: &[Option<VertexId>],
    depth: &[u32],
) -> Result<Vec<Certificate>, CertError> {
    let n = g.vertex_count();
    if rot.vertex_count() != n || parent.len() != n || depth.len() != n {
        return Err(CertError::BadInput(format!(
            "inconsistent input sizes: graph {n}, rotation {}, parent {}, depth {}",
            rot.vertex_count(),
            parent.len(),
            depth.len()
        )));
    }
    for v in g.vertices() {
        match parent[v.index()] {
            Some(p) => {
                if g.neighbor_slot(v, p).is_none() {
                    return Err(CertError::BadInput(format!(
                        "tree parent {p} of {v} is not a neighbor"
                    )));
                }
                if depth[v.index()] != depth[p.index()] + 1 {
                    return Err(CertError::BadInput(format!(
                        "depth of {v} is not its parent's depth + 1"
                    )));
                }
            }
            None => {
                if depth[v.index()] != 0 {
                    return Err(CertError::BadInput(format!("root {v} has nonzero depth")));
                }
            }
        }
    }
    // Resolve each vertex's root by chasing parents in depth order (a
    // parent always has strictly smaller depth, so one pass suffices).
    let mut root_of = vec![VertexId(0); n];
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| depth[v]);
    for &v in &order {
        root_of[v] = match parent[v] {
            None => VertexId::from_index(v),
            Some(p) => root_of[p.index()],
        };
    }
    // Exactly one root per connected component (otherwise the "forest"
    // does not span and the verifier would reject — surface it here).
    for v in g.vertices() {
        for &w in g.neighbors(v) {
            if root_of[v.index()] != root_of[w.index()] {
                return Err(CertError::BadInput(format!(
                    "tree does not span: neighbors {v} and {w} have different roots"
                )));
            }
        }
    }
    let (labels, leaders) = face_labels(g, rot)?;
    Ok(assemble(g, labels, &leaders, parent, depth, &root_of))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid3() -> (Graph, RotationSystem) {
        // 3x3 grid with a planar rotation (row-major ids).
        let mut edges = Vec::new();
        for r in 0..3u32 {
            for c in 0..3u32 {
                if c + 1 < 3 {
                    edges.push((r * 3 + c, r * 3 + c + 1));
                }
                if r + 1 < 3 {
                    edges.push((r * 3 + c, (r + 1) * 3 + c));
                }
            }
        }
        let g = Graph::from_edges(9, edges).unwrap();
        // Clockwise geometric order: up, right, down, left.
        let rot = RotationSystem::new(
            &g,
            (0..9u32)
                .map(|v| {
                    let (r, c) = (v / 3, v % 3);
                    let mut order = Vec::new();
                    if r > 0 {
                        order.push(VertexId(v - 3));
                    }
                    if c + 1 < 3 {
                        order.push(VertexId(v + 1));
                    }
                    if r + 1 < 3 {
                        order.push(VertexId(v + 3));
                    }
                    if c > 0 {
                        order.push(VertexId(v - 1));
                    }
                    order
                })
                .collect(),
        )
        .unwrap();
        assert!(rot.is_planar_embedding());
        (g, rot)
    }

    #[test]
    fn root_counters_match_component_totals() {
        let (g, rot) = grid3();
        let certs = build_certificates(&g, &rot).unwrap();
        let root = &certs[8]; // max id
        assert_eq!(root.parent, None);
        assert_eq!(root.depth, 0);
        assert_eq!(root.root, VertexId(8));
        assert_eq!(root.sub_vertices, 9);
        assert_eq!(root.sub_arcs, 2 * g.edge_count() as u64);
        assert_eq!(root.sub_faces, rot.face_count() as u64);
        // Euler: f = m - n + 2.
        assert_eq!(
            root.sub_faces as i64,
            g.edge_count() as i64 - 9 + 2,
            "grid rotation is planar"
        );
    }

    #[test]
    fn labels_are_orbit_minima_in_rotation_order() {
        let (g, rot) = grid3();
        let certs = build_certificates(&g, &rot).unwrap();
        let faces = rot.faces();
        for v in g.vertices() {
            let order = rot.order_at(v);
            assert_eq!(certs[v.index()].labels.len(), order.len());
            for (p, &w) in order.iter().enumerate() {
                let face = faces.iter().find(|f| f.contains(&(v, w))).unwrap();
                let min = face.iter().min().unwrap();
                assert_eq!(certs[v.index()].labels[p], *min);
            }
        }
        // Root counters sum the leaders of the whole component: the total
        // over all roots is exactly the number of faces.
        let total: u64 = certs
            .iter()
            .filter(|c| c.parent.is_none())
            .map(|c| c.sub_faces)
            .sum();
        assert_eq!(total, faces.len() as u64);
    }

    #[test]
    fn disconnected_components_get_separate_roots() {
        let g = Graph::from_edges(7, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        let rot = RotationSystem::sorted_default(&g);
        let certs = build_certificates(&g, &rot).unwrap();
        assert_eq!(certs[0].root, VertexId(2));
        assert_eq!(certs[4].root, VertexId(5));
        // Vertex 6 is isolated: its own root, empty subtree counters.
        assert_eq!(certs[6].root, VertexId(6));
        assert_eq!(
            (certs[6].sub_vertices, certs[6].sub_arcs, certs[6].sub_faces),
            (1, 0, 0)
        );
        assert!(certs[6].labels.is_empty());
    }

    #[test]
    fn certificate_size_is_linear_in_degree() {
        let (g, rot) = grid3();
        let certs = build_certificates(&g, &rot).unwrap();
        for v in g.vertices() {
            let c = &certs[v.index()];
            assert!(c.words() <= 10 + 2 * g.degree(v), "cert too large: {c:?}");
        }
    }

    #[test]
    fn with_tree_accepts_own_forest_and_rejects_bad_ones() {
        let (g, rot) = grid3();
        let base = build_certificates(&g, &rot).unwrap();
        let parent: Vec<Option<VertexId>> = base.iter().map(|c| c.parent).collect();
        let depth: Vec<u32> = base.iter().map(|c| c.depth).collect();
        let again = build_certificates_with_tree(&g, &rot, &parent, &depth).unwrap();
        assert_eq!(base, again);

        // Parent that is not a neighbor.
        let mut bad = parent.clone();
        bad[0] = Some(VertexId(8));
        assert!(matches!(
            build_certificates_with_tree(&g, &rot, &bad, &depth),
            Err(CertError::BadInput(_))
        ));
        // Depth that skips a level.
        let mut bad_depth = depth.clone();
        bad_depth[0] += 1;
        assert!(matches!(
            build_certificates_with_tree(&g, &rot, &parent, &bad_depth),
            Err(CertError::BadInput(_))
        ));
        // Two roots in one component (cut the tree).
        let mut two_roots = parent.clone();
        let orphan = (0..9).find(|&v| parent[v].is_some()).unwrap();
        two_roots[orphan] = None;
        let mut orphan_depth = depth.clone();
        orphan_depth[orphan] = 0;
        assert!(matches!(
            build_certificates_with_tree(&g, &rot, &two_roots, &orphan_depth),
            Err(CertError::BadInput(_))
        ));
    }

    #[test]
    fn rotation_graph_mismatch_is_rejected() {
        let (g, _) = grid3();
        let other = Graph::from_edges(9, [(0, 1)]).unwrap();
        let rot = RotationSystem::sorted_default(&other);
        assert!(matches!(
            build_certificates(&g, &rot),
            Err(CertError::BadInput(_))
        ));
    }
}
