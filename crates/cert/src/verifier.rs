//! The O(1)-round distributed verifier (the *verifier* side of the
//! proof-labeling scheme).
//!
//! [`CertVerifier`] is an ordinary event-driven
//! [`NodeProgram`](congest_sim::NodeProgram): it runs unchanged on the
//! fast kernel, the reference kernel, and inside the reliable-delivery
//! wrapper. Fault-free it takes exactly **2 rounds** regardless of `n`:
//!
//! * **init** — purely local checks (rotation is a permutation of the true
//!   neighbor set, label count and canonicity, root/parent/depth flag
//!   consistency), then one `Opening` message (≤ 6 words: root, parent,
//!   depth, face label of the arc) per incident edge;
//! * **round 1** — openings arrive; each node answers with its subtree
//!   `Counters` (6 words) to every neighbor;
//! * **round 2** — counters arrive; each node runs the neighborhood checks
//!   (face closure, root uniformity, parent/child depths, counter sums,
//!   and — at component roots — the Euler bound `f = m − n + 2`) and fixes
//!   its verdict.
//!
//! Both message variants fit the default 8-word CONGEST budget. The
//! program is event-driven (no round-number arithmetic), so delayed or
//! retransmitted deliveries under the reliable wrapper change nothing; a
//! node that never hears from every neighbor simply stays
//! [`Verdict::Incomplete`], which the report treats as non-acceptance.

use std::collections::BTreeMap;

use congest_sim::protocols::{run_reliable, Reliable, ReliableConfig};
use congest_sim::{reference, run, Metrics, NodeCtx, NodeProgram, SimConfig, SimOutcome, Words};
use planar_graph::{Graph, RotationSystem, VertexId};

use crate::certificate::Certificate;
use crate::error::CertError;

/// Messages exchanged by the verifier; both variants fit the default
/// 8-word budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertMsg {
    /// Round-0 certificate opening, sent over every incident edge.
    Opening {
        /// Sender's claimed component root.
        root: VertexId,
        /// Sender's claimed tree parent.
        parent: Option<VertexId>,
        /// Sender's claimed tree depth.
        depth: u32,
        /// Sender's face label for the arc this message travels on.
        label: (VertexId, VertexId),
    },
    /// Round-1 subtree counters, sent to every neighbor.
    Counters {
        /// Claimed subtree vertex count.
        vertices: u64,
        /// Claimed subtree degree sum.
        arcs: u64,
        /// Claimed subtree face-leader count.
        faces: u64,
    },
}

impl Words for CertMsg {
    fn words(&self) -> usize {
        match self {
            CertMsg::Opening { parent, .. } => 1 + parent.words() + 1 + 2,
            CertMsg::Counters { .. } => 6,
        }
    }
}

/// A single failed check, attributed to the node that detected it.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// The node's rotation is not a permutation of its true neighbor set.
    RotationNotPermutation,
    /// The certificate does not carry exactly one label per incident arc.
    LabelCountMismatch,
    /// A face label is lexicographically larger than the arc it labels
    /// (labels must be orbit minima, hence `<=` every orbit member).
    LabelNotCanonical {
        /// Rotation position of the offending label.
        slot: usize,
    },
    /// The label received for an incoming arc differs from this node's
    /// label for that arc's face successor — the face orbit is broken.
    FaceClosure {
        /// The neighbor whose arc failed the closure check.
        from: VertexId,
    },
    /// A neighbor claims a different component root.
    RootMismatch {
        /// The disagreeing neighbor.
        neighbor: VertexId,
    },
    /// The claimed tree parent is not a neighbor.
    ParentNotNeighbor,
    /// The parent's claimed depth is not this node's depth minus one.
    ParentDepth,
    /// A neighbor claiming this node as parent has the wrong depth.
    ChildDepth {
        /// The offending child.
        child: VertexId,
    },
    /// Root/parent/depth flags are inconsistent (a root with a parent or
    /// nonzero depth, a non-root without a parent, ...).
    RootFlags,
    /// The claimed subtree counters do not equal the node's local
    /// contribution plus its children's claims.
    CounterMismatch,
    /// At a component root: the aggregated counters violate Euler's
    /// formula `f = m − n + 2` (or the isolated-vertex convention).
    EulerViolation,
}

/// Final state of one node after the verifier ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Every check passed.
    Accept,
    /// At least one check failed (see [`CertVerifier::violations`]).
    Reject,
    /// The node never received both messages from every neighbor (message
    /// loss without reliable delivery); treated as non-acceptance.
    Incomplete,
}

/// The fields of a received [`CertMsg::Opening`]: `(root, parent, depth,
/// label of the connecting arc)`.
type OpeningFields = (VertexId, Option<VertexId>, u32, (VertexId, VertexId));

/// Per-node verifier program. Construct one per vertex with that vertex's
/// rotation order and certificate, then run on any kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct CertVerifier {
    rotation: Vec<VertexId>,
    cert: Certificate,
    openings: BTreeMap<VertexId, OpeningFields>,
    counters: BTreeMap<VertexId, (u64, u64, u64)>,
    sent_counters: bool,
    done: bool,
    violations: Vec<Violation>,
}

impl CertVerifier {
    /// Creates the verifier for one node from its local embedding output
    /// (claimed clockwise rotation order) and its certificate. The
    /// rotation is taken as claimed — checking it against the true
    /// neighbor set is the verifier's first job.
    pub fn new(rotation: Vec<VertexId>, cert: Certificate) -> Self {
        CertVerifier {
            rotation,
            cert,
            openings: BTreeMap::new(),
            counters: BTreeMap::new(),
            sent_counters: false,
            done: false,
            violations: Vec::new(),
        }
    }

    /// The node's verdict after the run.
    pub fn verdict(&self) -> Verdict {
        if !self.done {
            Verdict::Incomplete
        } else if self.violations.is_empty() {
            Verdict::Accept
        } else {
            Verdict::Reject
        }
    }

    /// Every check this node failed, in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Whether the rotation is usable for positional lookups (a
    /// permutation of the true neighbors, with one label per entry).
    fn rotation_ok(&self, neighbors: &[VertexId]) -> bool {
        let mut sorted = self.rotation.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len() == self.rotation.len()
            && sorted == neighbors
            && self.cert.labels.len() == self.rotation.len()
    }

    /// Local (round-0) checks: everything decidable from the node's own
    /// rotation and certificate.
    fn local_checks(&mut self, ctx: &NodeCtx<'_>) {
        let mut sorted = self.rotation.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != self.rotation.len() || sorted != ctx.neighbors {
            self.violations.push(Violation::RotationNotPermutation);
        }
        if self.cert.labels.len() != self.rotation.len() {
            self.violations.push(Violation::LabelCountMismatch);
        } else {
            for (slot, (&w, &label)) in self
                .rotation
                .iter()
                .zip(self.cert.labels.iter())
                .enumerate()
            {
                if label > (ctx.id, w) {
                    self.violations.push(Violation::LabelNotCanonical { slot });
                }
            }
        }
        match self.cert.parent {
            Some(p) => {
                if ctx.neighbors.binary_search(&p).is_err() {
                    self.violations.push(Violation::ParentNotNeighbor);
                }
                if self.cert.depth == 0 || ctx.id == self.cert.root {
                    self.violations.push(Violation::RootFlags);
                }
            }
            None => {
                if self.cert.depth != 0 || ctx.id != self.cert.root {
                    self.violations.push(Violation::RootFlags);
                }
            }
        }
    }

    /// Neighborhood checks, run once both messages have arrived from every
    /// neighbor.
    fn neighborhood_checks(&mut self, ctx: &NodeCtx<'_>) {
        let deg = ctx.neighbors.len();
        let rotation_ok = self.rotation_ok(ctx.neighbors);
        let mut viols = Vec::new();
        for (&nb, &(root, nb_parent, nb_depth, label)) in &self.openings {
            if root != self.cert.root {
                viols.push(Violation::RootMismatch { neighbor: nb });
            }
            // Face closure: the label opened on the incoming arc (nb, v)
            // must equal this node's label for that arc's face successor
            // (v, w), where w follows nb in the rotation at v.
            if rotation_ok {
                let p = self
                    .rotation
                    .iter()
                    .position(|&x| x == nb)
                    .expect("rotation_ok guarantees membership");
                if label != self.cert.labels[(p + 1) % deg] {
                    viols.push(Violation::FaceClosure { from: nb });
                }
            }
            if nb_parent == Some(ctx.id) && nb_depth != self.cert.depth.wrapping_add(1) {
                viols.push(Violation::ChildDepth { child: nb });
            }
        }
        if let Some(p) = self.cert.parent {
            match self.openings.get(&p) {
                Some(&(_, _, p_depth, _)) if p_depth.checked_add(1) == Some(self.cert.depth) => {}
                _ => viols.push(Violation::ParentDepth),
            }
        }
        // Counter consistency: the claimed subtree must equal this node's
        // own contribution plus the claims of every neighbor naming it as
        // parent. Wrapping arithmetic: corrupt claims may sit near
        // `u64::MAX` and must produce a mismatch, not a panic.
        let leaders = if rotation_ok {
            self.rotation
                .iter()
                .zip(self.cert.labels.iter())
                .filter(|&(&w, &l)| l == (ctx.id, w))
                .count() as u64
        } else {
            0
        };
        let mut sum = (1u64, deg as u64, leaders);
        for (&nb, &(_, nb_parent, _, _)) in &self.openings {
            if nb_parent == Some(ctx.id) {
                let (a, b, c) = self.counters[&nb];
                sum.0 = sum.0.wrapping_add(a);
                sum.1 = sum.1.wrapping_add(b);
                sum.2 = sum.2.wrapping_add(c);
            }
        }
        if sum
            != (
                self.cert.sub_vertices,
                self.cert.sub_arcs,
                self.cert.sub_faces,
            )
        {
            viols.push(Violation::CounterMismatch);
        }
        self.violations.append(&mut viols);
        if self.cert.parent.is_none() && ctx.id == self.cert.root {
            self.euler_check();
        }
    }

    /// The component root's Euler check on the aggregated counters.
    fn euler_check(&mut self) {
        let (n, a, f) = (
            self.cert.sub_vertices as i128,
            self.cert.sub_arcs as i128,
            self.cert.sub_faces as i128,
        );
        let ok = if n == 1 {
            // Isolated vertex: no arcs, no faces (genus 0 by convention).
            a == 0 && f == 0
        } else {
            // f = m − n + 2 with m = a / 2; claimed faces never exceed the
            // true face count, so equality forces genus 0.
            a % 2 == 0 && f == a / 2 - n + 2
        };
        if !ok {
            self.violations.push(Violation::EulerViolation);
        }
    }
}

impl NodeProgram for CertVerifier {
    type Msg = CertMsg;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, Self::Msg)> {
        self.local_checks(ctx);
        if ctx.neighbors.is_empty() {
            // Degree-0 node: nothing to exchange; the verdict is local.
            // Counters must be exactly the isolated-vertex contribution.
            if (
                self.cert.sub_vertices,
                self.cert.sub_arcs,
                self.cert.sub_faces,
            ) != (1, 0, 0)
            {
                self.violations.push(Violation::CounterMismatch);
            }
            self.euler_check();
            self.done = true;
            return Vec::new();
        }
        let fallback = (ctx.id, ctx.id);
        ctx.neighbors
            .iter()
            .map(|&w| {
                // Open the label of the arc towards w. A corrupt rotation
                // may not mention w (or mention it twice — first position
                // wins); send a placeholder so neighbors still terminate.
                // This node already recorded RotationNotPermutation.
                let label = self
                    .rotation
                    .iter()
                    .position(|&x| x == w)
                    .and_then(|p| self.cert.labels.get(p).copied())
                    .unwrap_or(fallback);
                (
                    w,
                    CertMsg::Opening {
                        root: self.cert.root,
                        parent: self.cert.parent,
                        depth: self.cert.depth,
                        label,
                    },
                )
            })
            .collect()
    }

    fn on_round(
        &mut self,
        ctx: &NodeCtx<'_>,
        inbox: &[(VertexId, Self::Msg)],
    ) -> Vec<(VertexId, Self::Msg)> {
        for (from, msg) in inbox {
            match *msg {
                // First delivery wins; duplicates (possible under fault
                // injection) are ignored, keeping the program idempotent.
                CertMsg::Opening {
                    root,
                    parent,
                    depth,
                    label,
                } => {
                    self.openings
                        .entry(*from)
                        .or_insert((root, parent, depth, label));
                }
                CertMsg::Counters {
                    vertices,
                    arcs,
                    faces,
                } => {
                    self.counters
                        .entry(*from)
                        .or_insert((vertices, arcs, faces));
                }
            }
        }
        let mut out = Vec::new();
        if !self.sent_counters {
            self.sent_counters = true;
            let msg = CertMsg::Counters {
                vertices: self.cert.sub_vertices,
                arcs: self.cert.sub_arcs,
                faces: self.cert.sub_faces,
            };
            out.extend(ctx.neighbors.iter().map(|&w| (w, msg.clone())));
        }
        if !self.done
            && self.openings.len() == ctx.neighbors.len()
            && self.counters.len() == ctx.neighbors.len()
        {
            self.neighborhood_checks(ctx);
            self.done = true;
        }
        out
    }
}

/// Which simulation kernel runs the verifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// The allocation-free production kernel ([`congest_sim::run`]).
    Fast,
    /// The seed kernel kept as executable specification
    /// ([`congest_sim::reference::run_reference`]).
    Reference,
}

/// Outcome of a distributed verification run.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyReport {
    /// Whether every node accepted. `false` if any node rejected *or*
    /// stayed incomplete.
    pub accepted: bool,
    /// Rejecting nodes with the checks they failed, ascending by id.
    pub rejections: Vec<(VertexId, Vec<Violation>)>,
    /// Nodes that never completed the exchange (lost messages), ascending.
    pub incomplete: Vec<VertexId>,
    /// Kernel cost of the verification; `phase_rounds.cert` is stamped
    /// with the round count (O(1): 2 rounds fault-free).
    pub metrics: Metrics,
    /// Largest per-node certificate, in words.
    pub max_cert_words: usize,
    /// Total certificate volume across all nodes, in words.
    pub total_cert_words: usize,
}

/// Runs the distributed verifier on *raw* per-vertex rotation orders —
/// the general entry point, accepting corrupted rotations that
/// [`RotationSystem::new`] would refuse to represent (the mutation
/// soundness suite needs exactly that).
///
/// # Errors
///
/// [`CertError::BadInput`] if the order or certificate count does not
/// match `g`; [`CertError::Sim`] if the kernel aborts.
pub fn verify_orders_with(
    g: &Graph,
    orders: &[Vec<VertexId>],
    certs: &[Certificate],
    cfg: &SimConfig,
    reliability: Option<&ReliableConfig>,
    kernel: Kernel,
) -> Result<VerifyReport, CertError> {
    let n = g.vertex_count();
    if orders.len() != n || certs.len() != n {
        return Err(CertError::BadInput(format!(
            "graph has {n} vertices, rotation orders {}, certificates {}",
            orders.len(),
            certs.len()
        )));
    }
    let programs: Vec<CertVerifier> = g
        .vertices()
        .map(|v| CertVerifier::new(orders[v.index()].clone(), certs[v.index()].clone()))
        .collect();
    let out = run_verifier_kernel(g, programs, cfg, reliability, kernel)?;

    let mut rejections = Vec::new();
    let mut incomplete = Vec::new();
    for (v, p) in out.programs.iter().enumerate() {
        match p.verdict() {
            Verdict::Accept => {}
            Verdict::Reject => {
                rejections.push((VertexId::from_index(v), p.violations().to_vec()));
            }
            Verdict::Incomplete => incomplete.push(VertexId::from_index(v)),
        }
    }
    let mut metrics = out.metrics;
    metrics.phase_rounds.cert = metrics.rounds;
    let max_cert_words = certs.iter().map(Certificate::words).max().unwrap_or(0);
    let total_cert_words = certs.iter().map(Certificate::words).sum();
    Ok(VerifyReport {
        accepted: rejections.is_empty() && incomplete.is_empty(),
        rejections,
        incomplete,
        metrics,
        max_cert_words,
        total_cert_words,
    })
}

/// Runs the distributed verifier on the kernel of your choice, optionally
/// inside the reliable-delivery wrapper (with the standard `3B + 2`
/// widened budget, exactly like the embedding phases under faults).
///
/// # Errors
///
/// As [`verify_orders_with`].
pub fn verify_distributed_with(
    g: &Graph,
    rot: &RotationSystem,
    certs: &[Certificate],
    cfg: &SimConfig,
    reliability: Option<&ReliableConfig>,
    kernel: Kernel,
) -> Result<VerifyReport, CertError> {
    if rot.vertex_count() != g.vertex_count() {
        return Err(CertError::BadInput(format!(
            "graph has {} vertices, rotation system {}",
            g.vertex_count(),
            rot.vertex_count()
        )));
    }
    let orders: Vec<Vec<VertexId>> = g.vertices().map(|v| rot.order_at(v).to_vec()).collect();
    verify_orders_with(g, &orders, certs, cfg, reliability, kernel)
}

/// Dispatches to the chosen kernel, wrapping in [`Reliable`] when
/// requested (budget widened to `3B + 2`, retransmissions folded into the
/// metrics — the same lift [`run_reliable`] performs for the fast kernel).
fn run_verifier_kernel(
    g: &Graph,
    programs: Vec<CertVerifier>,
    cfg: &SimConfig,
    reliability: Option<&ReliableConfig>,
    kernel: Kernel,
) -> Result<SimOutcome<CertVerifier>, CertError> {
    match (kernel, reliability) {
        (Kernel::Fast, None) => Ok(run(g, programs, cfg)?),
        (Kernel::Reference, None) => Ok(reference::run_reference(g, programs, cfg)?),
        (Kernel::Fast, Some(rel)) => {
            let mut wrapped_cfg = cfg.clone();
            wrapped_cfg.budget_words = 3 * cfg.budget_words + 2;
            Ok(run_reliable(g, programs, &wrapped_cfg, rel)?)
        }
        (Kernel::Reference, Some(rel)) => {
            let mut wrapped_cfg = cfg.clone();
            wrapped_cfg.budget_words = 3 * cfg.budget_words + 2;
            let wrapped: Vec<Reliable<CertVerifier>> = programs
                .into_iter()
                .map(|p| Reliable::new(p, rel.clone()))
                .collect();
            let out = reference::run_reference(g, wrapped, &wrapped_cfg)?;
            let mut metrics = out.metrics;
            let mut inner = Vec::with_capacity(out.programs.len());
            for w in out.programs {
                metrics.retransmissions += w.retransmissions();
                inner.push(w.into_inner());
            }
            Ok(SimOutcome {
                programs: inner,
                metrics,
            })
        }
    }
}

/// [`verify_distributed_with`] on the fast kernel without reliability —
/// the common case.
///
/// # Errors
///
/// As [`verify_distributed_with`].
pub fn verify_distributed(
    g: &Graph,
    rot: &RotationSystem,
    certs: &[Certificate],
    cfg: &SimConfig,
) -> Result<VerifyReport, CertError> {
    verify_distributed_with(g, rot, certs, cfg, None, Kernel::Fast)
}

/// [`verify_distributed_with`] on the reference kernel without
/// reliability — the conformance oracle.
///
/// # Errors
///
/// As [`verify_distributed_with`].
pub fn verify_distributed_reference(
    g: &Graph,
    rot: &RotationSystem,
    certs: &[Certificate],
    cfg: &SimConfig,
) -> Result<VerifyReport, CertError> {
    verify_distributed_with(g, rot, certs, cfg, None, Kernel::Reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::build_certificates;

    fn ring(n: u32) -> (Graph, RotationSystem) {
        let g = Graph::from_edges(n as usize, (0..n).map(|i| (i, (i + 1) % n))).unwrap();
        let rot = RotationSystem::sorted_default(&g);
        assert!(rot.is_planar_embedding());
        (g, rot)
    }

    #[test]
    fn honest_certificates_accept_in_two_rounds() {
        let (g, rot) = ring(12);
        let certs = build_certificates(&g, &rot).unwrap();
        let report = verify_distributed(&g, &rot, &certs, &SimConfig::default()).unwrap();
        assert!(report.accepted, "rejections: {:?}", report.rejections);
        assert_eq!(report.metrics.rounds, 2, "verification must be O(1)");
        assert_eq!(report.metrics.phase_rounds.cert, 2);
        // Ring: degree 2 everywhere → 10 fixed words + 2·2 label words.
        assert!(report.max_cert_words <= 10 + 4);
    }

    #[test]
    fn fast_and_reference_agree() {
        let (g, rot) = ring(9);
        let certs = build_certificates(&g, &rot).unwrap();
        let a = verify_distributed(&g, &rot, &certs, &SimConfig::default()).unwrap();
        let b = verify_distributed_reference(&g, &rot, &certs, &SimConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn nonplanar_rotation_with_honest_certificates_is_rejected() {
        // K4's sorted-default rotation has genus 1; the honest builder's
        // counters then fail the root's Euler check.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let rot = RotationSystem::sorted_default(&g);
        assert!(!rot.is_planar_embedding());
        let certs = build_certificates(&g, &rot).unwrap();
        let report = verify_distributed(&g, &rot, &certs, &SimConfig::default()).unwrap();
        assert!(!report.accepted);
        assert!(report
            .rejections
            .iter()
            .any(|(_, vs)| vs.contains(&Violation::EulerViolation)));
    }

    #[test]
    fn isolated_vertices_verify_locally() {
        let g = Graph::new(3);
        let rot = RotationSystem::sorted_default(&g);
        let certs = build_certificates(&g, &rot).unwrap();
        let report = verify_distributed(&g, &rot, &certs, &SimConfig::default()).unwrap();
        assert!(report.accepted);
        assert_eq!(report.metrics.rounds, 0);
    }

    #[test]
    fn disconnected_graph_verifies_per_component() {
        let g =
            Graph::from_edges(8, [(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 7), (7, 4)]).unwrap();
        let rot = RotationSystem::sorted_default(&g);
        assert!(rot.is_planar_embedding());
        let certs = build_certificates(&g, &rot).unwrap();
        let report = verify_distributed(&g, &rot, &certs, &SimConfig::default()).unwrap();
        assert!(report.accepted, "rejections: {:?}", report.rejections);
    }

    #[test]
    fn message_sizes_fit_the_budget() {
        let opening = CertMsg::Opening {
            root: VertexId(0),
            parent: Some(VertexId(1)),
            depth: 2,
            label: (VertexId(0), VertexId(1)),
        };
        assert!(opening.words() <= congest_sim::DEFAULT_BUDGET_WORDS);
        let counters = CertMsg::Counters {
            vertices: 10,
            arcs: 18,
            faces: 1,
        };
        assert!(counters.words() <= congest_sim::DEFAULT_BUDGET_WORDS);
    }

    #[test]
    fn reliable_wrapper_survives_lossy_verification() {
        use congest_sim::FaultPlan;
        let (g, rot) = ring(10);
        let certs = build_certificates(&g, &rot).unwrap();
        let cfg = SimConfig {
            faults: FaultPlan::uniform(3, 0.2, 0.05, 0.1, 2),
            watchdog: Some(4096),
            ..SimConfig::default()
        };
        let rel = ReliableConfig::default();
        let report =
            verify_distributed_with(&g, &rot, &certs, &cfg, Some(&rel), Kernel::Fast).unwrap();
        assert!(report.accepted, "rejections: {:?}", report.rejections);
        assert!(report.metrics.dropped > 0 || report.metrics.retransmissions > 0);
        // The seeded fault schedule replays bit-identically.
        let again =
            verify_distributed_with(&g, &rot, &certs, &cfg, Some(&rel), Kernel::Fast).unwrap();
        assert_eq!(report, again);
    }

    #[test]
    fn lost_messages_leave_nodes_incomplete_not_accepting() {
        use congest_sim::{FaultPlan, LinkFaults};
        let (g, rot) = ring(6);
        let certs = build_certificates(&g, &rot).unwrap();
        let mut plan = FaultPlan {
            seed: 1,
            ..FaultPlan::default()
        };
        plan.link_overrides.push((
            (VertexId(0), VertexId(1)),
            LinkFaults {
                drop: 1.0,
                duplicate: 0.0,
                delay: 0.0,
                max_delay: 0,
            },
        ));
        let cfg = SimConfig {
            faults: plan,
            watchdog: Some(1024),
            ..SimConfig::default()
        };
        let report = verify_distributed_with(&g, &rot, &certs, &cfg, None, Kernel::Fast).unwrap();
        assert!(!report.accepted);
        assert!(report.incomplete.contains(&VertexId(1)));
    }
}
