//! Completeness and soundness of the certification scheme, end to end:
//!
//! * **completeness** — honest certificates for honestly embedded graphs
//!   are accepted at every node, on the whole generator suite, fault-free
//!   and under seeded chaos with reliable delivery, in O(1) rounds;
//! * **soundness** — every mutation class applied at every seed makes at
//!   least one node reject, with bit-identical rejection sets on the fast
//!   and reference kernels.

use congest_sim::protocols::ReliableConfig;
use congest_sim::{AuditSink, FaultPlan, SimConfig, TraceHandle};
use planar_cert::{
    apply_mutation, build_certificates, mutation_classes, verify_distributed_with,
    verify_orders_with, Kernel, MutationClass,
};
use planar_graph::{Graph, RotationSystem};
use planar_lib::{embed, gen};

/// The generator suite of the acceptance criteria: grid, triangulated
/// grid, outerplanar, random planar — plus a disconnected union.
fn suite() -> Vec<(&'static str, Graph)> {
    let mut graphs = vec![
        ("grid_4x5", gen::grid(4, 5)),
        ("tri_grid_3x4", gen::triangulated_grid(3, 4)),
        ("outerplanar_14", gen::random_outerplanar(14, 11)),
        ("random_planar_16", gen::random_planar(16, 30, 5)),
        ("wheel_9", gen::wheel(9)),
    ];
    // Disconnected: a grid next to an isolated vertex and a triangle.
    let grid = gen::grid(3, 3);
    let mut edges: Vec<(u32, u32)> = grid
        .vertices()
        .flat_map(|u| {
            grid.neighbors(u)
                .iter()
                .filter(move |&&w| u < w)
                .map(move |&w| (u.0, w.0))
                .collect::<Vec<_>>()
        })
        .collect();
    edges.extend([(10, 11), (11, 12), (12, 10)]);
    graphs.push((
        "disconnected_grid_triangle",
        Graph::from_edges(13, edges).unwrap(),
    ));
    graphs
}

fn embedded(g: &Graph) -> RotationSystem {
    let rot = embed(g).expect("suite graphs are planar");
    assert!(rot.is_planar_embedding());
    rot
}

#[test]
fn honest_embeddings_accept_everywhere_on_both_kernels() {
    for (name, g) in suite() {
        let rot = embedded(&g);
        let certs = build_certificates(&g, &rot).unwrap();
        for kernel in [Kernel::Fast, Kernel::Reference] {
            // The verification rounds run under the trace auditor, so this
            // suite also checks the reported metrics against an
            // independent recomputation from the event stream.
            let audit = AuditSink::new();
            let cfg = SimConfig {
                trace: TraceHandle::to(audit.clone()),
                ..SimConfig::default()
            };
            let report = verify_distributed_with(&g, &rot, &certs, &cfg, None, kernel).unwrap();
            assert!(
                audit.ok(),
                "{name} on {kernel:?}: trace audit found drift: {:?}",
                audit.report().mismatches
            );
            assert!(
                report.accepted,
                "{name} on {kernel:?}: rejections {:?}, incomplete {:?}",
                report.rejections, report.incomplete
            );
            assert!(
                report.metrics.rounds <= 2,
                "{name}: verification took {} rounds, must be O(1)",
                report.metrics.rounds
            );
            // O(Δ log n) bits per node: 10 fixed words + 2 per incident arc.
            let max_deg = g.vertices().map(|v| g.neighbors(v).len()).max().unwrap();
            assert!(report.max_cert_words <= 10 + 2 * max_deg, "{name}");
        }
    }
}

#[test]
fn honest_embeddings_accept_under_chaos_with_reliable_delivery() {
    let rel = ReliableConfig::default();
    for (name, g) in suite() {
        let rot = embedded(&g);
        let certs = build_certificates(&g, &rot).unwrap();
        for seed in 0..3u64 {
            let audit = AuditSink::new();
            let cfg = SimConfig {
                faults: FaultPlan::uniform(seed, 0.15, 0.05, 0.1, 2),
                watchdog: Some(8192),
                trace: TraceHandle::to(audit.clone()),
                ..SimConfig::default()
            };
            let report =
                verify_distributed_with(&g, &rot, &certs, &cfg, Some(&rel), Kernel::Fast).unwrap();
            assert!(
                audit.ok(),
                "{name} seed {seed}: trace audit found drift: {:?}",
                audit.report().mismatches
            );
            assert!(
                report.accepted,
                "{name} seed {seed}: rejections {:?}, incomplete {:?}",
                report.rejections, report.incomplete
            );
        }
    }
}

#[test]
fn every_mutation_class_is_rejected_identically_on_both_kernels() {
    let cfg = SimConfig::default();
    for (name, g) in suite() {
        let rot = embedded(&g);
        let certs = build_certificates(&g, &rot).unwrap();
        for class in mutation_classes() {
            let mut applied = 0;
            for seed in 0..4u64 {
                let Some((orders, mcerts, mutation)) =
                    apply_mutation(&g, &rot, &certs, class, seed)
                else {
                    continue;
                };
                applied += 1;
                let fast =
                    verify_orders_with(&g, &orders, &mcerts, &cfg, None, Kernel::Fast).unwrap();
                assert!(
                    !fast.accepted,
                    "{name} / {class:?} seed {seed} accepted despite {mutation:?}"
                );
                assert!(
                    !fast.rejections.is_empty(),
                    "{name} / {class:?} seed {seed}: no rejecting node for {mutation:?}"
                );
                let reference =
                    verify_orders_with(&g, &orders, &mcerts, &cfg, None, Kernel::Reference)
                        .unwrap();
                assert_eq!(
                    fast, reference,
                    "{name} / {class:?} seed {seed}: kernels disagree on {mutation:?}"
                );
            }
            // RotationSwap may lack a site on sparse inputs; every other
            // class must fire on every suite graph.
            if class != MutationClass::RotationSwap {
                assert!(applied > 0, "{name} / {class:?}: no mutation applied");
            }
        }
    }
}

#[test]
fn mutations_are_rejected_even_under_reliable_chaos() {
    // Soundness is not an artifact of fault-free delivery: a corrupted
    // certificate still draws a rejection when messages drop and retry.
    let rel = ReliableConfig::default();
    let g = gen::grid(4, 4);
    let rot = embedded(&g);
    let certs = build_certificates(&g, &rot).unwrap();
    let cfg = SimConfig {
        faults: FaultPlan::uniform(9, 0.15, 0.05, 0.1, 2),
        watchdog: Some(8192),
        ..SimConfig::default()
    };
    for class in mutation_classes() {
        let Some((orders, mcerts, mutation)) = apply_mutation(&g, &rot, &certs, class, 2) else {
            continue;
        };
        let report =
            verify_orders_with(&g, &orders, &mcerts, &cfg, Some(&rel), Kernel::Fast).unwrap();
        assert!(
            !report.accepted,
            "{class:?} accepted under chaos: {mutation:?}"
        );
        assert!(
            !report.rejections.is_empty(),
            "{class:?} drew no rejection under chaos: {mutation:?}"
        );
    }
}

#[test]
fn rejection_sets_are_deterministic_across_runs() {
    let g = gen::triangulated_grid(3, 3);
    let rot = embedded(&g);
    let certs = build_certificates(&g, &rot).unwrap();
    let cfg = SimConfig::default();
    for class in mutation_classes() {
        let Some((orders, mcerts, _)) = apply_mutation(&g, &rot, &certs, class, 1) else {
            continue;
        };
        let a = verify_orders_with(&g, &orders, &mcerts, &cfg, None, Kernel::Fast).unwrap();
        let b = verify_orders_with(&g, &orders, &mcerts, &cfg, None, Kernel::Fast).unwrap();
        assert_eq!(a, b, "{class:?} replay diverged");
    }
}
