//! Failing-seed minimization: greedy delta-debugging over the scenario's
//! dimensions.
//!
//! Given a scenario that violates an oracle and the [`ViolationKind`] it
//! broke, [`minimize`] repeatedly tries smaller candidate scenarios and
//! keeps any candidate that still reproduces *the same kind* of
//! violation. Candidates are ordered biggest-win-first:
//!
//! 1. **Shrink the graph** — request the family's minimum size, half,
//!    three-quarters, size − 1 (crash victims and outage endpoints that
//!    fall off the smaller graph are filtered out, so the shrunk plan
//!    still validates);
//! 2. **Strip fault-plan entries** — drop each crash, each link-down
//!    window, each per-link override; zero the duplicate, delay, and drop
//!    rates;
//! 3. **Drop configuration dimensions** — certification off, reliability
//!    off, threads to 1, scheduler to its default, kernel to its default.
//!
//! After any candidate is adopted the list is rebuilt from the smaller
//! scenario, so graph shrinking gets first refusal again. The process is
//! deterministic and bounded by a run budget: each reproduction attempt is
//! one full [`check_scenario`] (itself four embedder runs), so the budget
//! is counted in oracle calls, not embedder runs.

use planar_embedding::{Kernel, Scheduler};
use planar_lib::gen;

use crate::oracle::{check_scenario, ViolationKind};
use crate::scenario::Scenario;

/// The result of one minimization: the smallest reproducing scenario
/// found, the oracle-call budget spent, and the shrink steps adopted.
#[derive(Clone, Debug, PartialEq)]
pub struct Minimized {
    /// Smallest scenario still violating the original kind.
    pub scenario: Scenario,
    /// The violation kind being reproduced.
    pub kind: ViolationKind,
    /// `check_scenario` calls spent (≤ the budget passed to [`minimize`]).
    pub runs: usize,
    /// Human-readable adopted steps, in order.
    pub steps: Vec<String>,
}

/// Default oracle-call budget: generous for the small scenarios the
/// generator draws, while bounding a pathological shrink to minutes.
pub const DEFAULT_BUDGET: usize = 64;

/// Shrinks `sc` while the violation `kind` still reproduces. The original
/// scenario is assumed to reproduce (the caller observed the violation);
/// the result is the last reproducing candidate adopted.
pub fn minimize(sc: &Scenario, kind: ViolationKind, budget: usize) -> Minimized {
    let mut current = sc.clone();
    let mut runs = 0;
    let mut steps = Vec::new();
    'outer: loop {
        for (desc, candidate) in candidates(&current) {
            if runs >= budget {
                break 'outer;
            }
            runs += 1;
            if reproduces(&candidate, kind) {
                steps.push(desc);
                current = candidate;
                // Restart from the shrunk scenario: graph shrinking gets
                // priority again.
                continue 'outer;
            }
        }
        break;
    }
    Minimized {
        scenario: current,
        kind,
        runs,
        steps,
    }
}

fn reproduces(sc: &Scenario, kind: ViolationKind) -> bool {
    check_scenario(sc).violations.iter().any(|v| v.kind == kind)
}

/// Rebuilds `sc` at a smaller requested size, filtering fault-plan
/// entries that reference vertices beyond the smaller graph so the plan
/// still validates.
fn with_requested_n(sc: &Scenario, requested_n: usize) -> Scenario {
    let mut cand = sc.clone();
    cand.requested_n = requested_n;
    let n = cand.build_graph().vertex_count();
    cand.faults.crashes.retain(|(v, _)| v.index() < n);
    cand.faults
        .link_down
        .retain(|w| w.from.index() < n && w.to.index() < n);
    cand.faults
        .link_overrides
        .retain(|((from, to), _)| from.index() < n && to.index() < n);
    cand
}

fn candidates(sc: &Scenario) -> Vec<(String, Scenario)> {
    let mut out = Vec::new();
    let family = gen::family(sc.family).expect("scenario family is registered");

    // 1. Graph shrinking, most aggressive first.
    let n = sc.requested_n;
    for target in [family.min_n, n / 2, n * 3 / 4, n.saturating_sub(1)] {
        if target >= family.min_n && target < n {
            let cand = with_requested_n(sc, target);
            if !out.iter().any(|(_, c)| *c == cand) {
                out.push((format!("requested_n {n} -> {target}"), cand));
            }
        }
    }

    // 2. Fault-plan stripping.
    for i in 0..sc.faults.crashes.len() {
        let mut cand = sc.clone();
        let (v, round) = cand.faults.crashes.remove(i);
        out.push((format!("drop crash ({v}, round {round})"), cand));
    }
    for i in 0..sc.faults.link_down.len() {
        let mut cand = sc.clone();
        let w = cand.faults.link_down.remove(i);
        out.push((
            format!(
                "drop link-down {}->{} [{}, {})",
                w.from, w.to, w.start, w.end
            ),
            cand,
        ));
    }
    for i in 0..sc.faults.link_overrides.len() {
        let mut cand = sc.clone();
        let ((from, to), _) = cand.faults.link_overrides.remove(i);
        out.push((format!("drop link override {from}->{to}"), cand));
    }
    if sc.faults.link.duplicate > 0.0 {
        let mut cand = sc.clone();
        cand.faults.link.duplicate = 0.0;
        out.push(("zero duplicate rate".into(), cand));
    }
    if sc.faults.link.delay > 0.0 || sc.faults.link.max_delay > 0 {
        let mut cand = sc.clone();
        cand.faults.link.delay = 0.0;
        cand.faults.link.max_delay = 0;
        out.push(("zero delay rate".into(), cand));
    }
    if sc.faults.link.drop > 0.0 {
        let mut cand = sc.clone();
        cand.faults.link.drop = 0.0;
        out.push(("zero drop rate".into(), cand));
    }
    // 2b. Churn shrinking: drop the whole pass first, then halve and
    // decrement the delta count (the churn seed stays fixed — a shorter
    // prefix of the same stream).
    if sc.churn_deltas > 0 {
        let mut cand = sc.clone();
        cand.churn_deltas = 0;
        cand.churn_seed = 0;
        out.push(("drop churn pass".into(), cand));
    }
    for target in [sc.churn_deltas / 2, sc.churn_deltas.saturating_sub(1)] {
        if target >= 1 && target < sc.churn_deltas {
            let mut cand = sc.clone();
            cand.churn_deltas = target;
            if !out.iter().any(|(_, c)| *c == cand) {
                out.push((
                    format!("churn_deltas {} -> {target}", sc.churn_deltas),
                    cand,
                ));
            }
        }
    }
    // 3. Configuration dimensions.
    if sc.certify {
        let mut cand = sc.clone();
        cand.certify = false;
        out.push(("certify off".into(), cand));
    }
    if sc.reliability.is_some() {
        let mut cand = sc.clone();
        cand.reliability = None;
        out.push(("reliability off".into(), cand));
    }
    if sc.threads != 1 {
        let mut cand = sc.clone();
        cand.threads = 1;
        out.push((format!("threads {} -> 1", sc.threads), cand));
    }
    if sc.scheduler != Scheduler::default() {
        let mut cand = sc.clone();
        cand.scheduler = Scheduler::default();
        out.push(("scheduler -> default".into(), cand));
    }
    if sc.kernel != Kernel::default() {
        let mut cand = sc.clone();
        cand.kernel = Kernel::default();
        out.push(("kernel -> default".into(), cand));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The candidate list is strictly shrinking: every candidate differs
    /// from its parent and never grows the fault plan or the graph.
    #[test]
    fn candidates_only_shrink() {
        for seed in 0..40u64 {
            let sc = Scenario::generate(seed);
            for (desc, cand) in candidates(&sc) {
                assert_ne!(cand, sc, "seed {seed}: no-op candidate '{desc}'");
                assert!(cand.requested_n <= sc.requested_n, "seed {seed}: '{desc}'");
                assert!(
                    cand.faults.crashes.len() <= sc.faults.crashes.len(),
                    "seed {seed}: '{desc}'"
                );
                assert!(
                    cand.faults.link_down.len() <= sc.faults.link_down.len(),
                    "seed {seed}: '{desc}'"
                );
                assert!(
                    cand.churn_deltas <= sc.churn_deltas,
                    "seed {seed}: '{desc}'"
                );
                let n = cand.build_graph().vertex_count();
                cand.faults
                    .validate(n)
                    .unwrap_or_else(|e| panic!("seed {seed}: '{desc}' invalidated plan: {e}"));
            }
        }
    }

    /// Shrinking the graph filters out-of-range fault entries instead of
    /// carrying them along.
    #[test]
    fn graph_shrink_filters_dangling_fault_entries() {
        let sc = (0..)
            .map(Scenario::generate)
            .find(|s| !s.faults.crashes.is_empty() && s.requested_n > gen_min(s))
            .unwrap();
        let fam = gen::family(sc.family).unwrap();
        let cand = with_requested_n(&sc, fam.min_n);
        let n = cand.build_graph().vertex_count();
        assert!(cand.faults.crashes.iter().all(|(v, _)| v.index() < n));
        cand.faults.validate(n).unwrap();
    }

    fn gen_min(s: &Scenario) -> usize {
        gen::family(s.family).unwrap().min_n
    }
}
