//! Canonical artifacts: sorted-key JSON rendering and result digests.
//!
//! Every DST run writes machine-diffable JSON. The renderer is hand-rolled
//! (the workspace's `serde` is an offline shim) and **canonical**: object
//! keys come from a `BTreeMap`, so they are always emitted in sorted
//! order, floats use Rust's shortest-roundtrip formatting, and rendering
//! the same value twice yields byte-identical text — `diff` on two
//! artifacts means the runs actually differed.

use std::collections::BTreeMap;

use congest_sim::{splitmix64, FaultPlan};
use planar_embedding::{
    degraded_fingerprint, EmbedError, EmbeddingOutcome, Kernel, OutcomeClass, Scheduler,
};

use crate::oracle::{ChurnSummary, RunSummary, ScenarioReport, Violation};
use crate::scenario::Scenario;

/// A JSON value with canonical (sorted-key) rendering.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Finite float (rendered with shortest-roundtrip formatting).
    F64(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; `BTreeMap` keeps keys sorted, which is what makes the
    /// rendering canonical.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs (keys are sorted on render
    /// regardless of argument order).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the canonical pretty form (2-space indent, sorted keys,
    /// trailing newline at the top level is the caller's choice).
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::F64(f) => {
                debug_assert!(f.is_finite(), "canonical JSON holds finite floats only");
                out.push_str(&format!("{f}"));
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Stable names for the kernel dimension in artifacts.
pub fn kernel_code(k: Kernel) -> &'static str {
    match k {
        Kernel::Fast => "fast",
        Kernel::Reference => "reference",
    }
}

/// Stable names for the scheduler dimension in artifacts.
pub fn scheduler_code(s: Scheduler) -> &'static str {
    match s {
        Scheduler::LevelSync => "level-sync",
        Scheduler::Sequential => "sequential",
    }
}

/// Order-sensitive digest of a full run result: folds the terminal class,
/// the complete rotation, the metrics counters, and the certification
/// verdict through splitmix64. Two results with equal digests are
/// *practically* identical; unequal digests are *definitely* different —
/// exactly what artifact-level bit-identity comparison needs.
pub fn outcome_digest(result: &Result<EmbeddingOutcome, EmbedError>) -> u64 {
    let mut h: u64 = 0;
    let mut fold = |x: u64| h = splitmix64(h ^ splitmix64(x));
    match result {
        Ok(out) => {
            fold(1);
            for v in 0..out.rotation.vertex_count() {
                let v = planar_graph::VertexId::from_index(v);
                fold(u64::from(v.0));
                for &w in out.rotation.order_at(v) {
                    fold(u64::from(w.0) + 1);
                }
            }
            let m = &out.metrics;
            for x in [
                m.rounds,
                m.messages,
                m.words,
                m.max_words_edge_round,
                m.dropped,
                m.duplicated,
                m.delayed,
                m.retransmissions,
                m.crashed_nodes,
            ] {
                fold(x as u64);
            }
            match &out.certification {
                Some(cert) => fold(2 + u64::from(cert.accepted())),
                None => fold(4),
            }
        }
        Err(e) => {
            fold(5);
            fold(OutcomeClass::of(result) as u64);
            if let Some((surviving, rounds, verified, cause)) =
                degraded_fingerprint(&Err(e.clone()))
            {
                fold(surviving as u64);
                fold(rounds as u64);
                fold(u64::from(verified));
                for b in cause.bytes() {
                    fold(u64::from(b));
                }
            }
        }
    }
    h
}

fn link_faults_json(f: &congest_sim::LinkFaults) -> Json {
    Json::obj([
        ("drop", Json::F64(f.drop)),
        ("duplicate", Json::F64(f.duplicate)),
        ("delay", Json::F64(f.delay)),
        ("max_delay", Json::U64(f.max_delay as u64)),
    ])
}

/// The fault plan as canonical JSON (the whole schedule is reproducible
/// from this plus the kernel, so the artifact alone documents the run).
pub fn fault_plan_json(plan: &FaultPlan) -> Json {
    Json::obj([
        ("seed", Json::U64(plan.seed)),
        ("link", link_faults_json(&plan.link)),
        (
            "link_overrides",
            Json::Arr(
                plan.link_overrides
                    .iter()
                    .map(|((from, to), f)| {
                        Json::obj([
                            ("from", Json::U64(u64::from(from.0))),
                            ("to", Json::U64(u64::from(to.0))),
                            ("faults", link_faults_json(f)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "crashes",
            Json::Arr(
                plan.crashes
                    .iter()
                    .map(|(v, round)| {
                        Json::obj([
                            ("node", Json::U64(u64::from(v.0))),
                            ("round", Json::U64(*round as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "link_down",
            Json::Arr(
                plan.link_down
                    .iter()
                    .map(|w| {
                        Json::obj([
                            ("from", Json::U64(u64::from(w.from.0))),
                            ("to", Json::U64(u64::from(w.to.0))),
                            ("start", Json::U64(w.start as u64)),
                            ("end", Json::U64(w.end as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("canary_skew", Json::U64(plan.canary_skew)),
    ])
}

/// The scenario as canonical JSON.
pub fn scenario_json(sc: &Scenario) -> Json {
    Json::obj([
        ("seed", Json::U64(sc.seed)),
        ("family", Json::Str(sc.family.to_string())),
        ("requested_n", Json::U64(sc.requested_n as u64)),
        ("graph_seed", Json::U64(sc.graph_seed)),
        ("faults", fault_plan_json(&sc.faults)),
        (
            "reliability",
            match &sc.reliability {
                Some(r) => Json::obj([
                    ("retransmit_after", Json::U64(r.retransmit_after as u64)),
                    ("max_retries", Json::U64(r.max_retries as u64)),
                ]),
                None => Json::Null,
            },
        ),
        ("kernel", Json::Str(kernel_code(sc.kernel).into())),
        ("scheduler", Json::Str(scheduler_code(sc.scheduler).into())),
        ("threads", Json::U64(sc.threads as u64)),
        ("certify", Json::Bool(sc.certify)),
        ("churn_deltas", Json::U64(sc.churn_deltas as u64)),
        ("churn_seed", Json::U64(sc.churn_seed)),
    ])
}

fn run_summary_json(run: &RunSummary) -> Json {
    Json::obj([
        ("class", Json::Str(run.class.code().into())),
        ("rounds", Json::U64(run.rounds as u64)),
        ("messages", Json::U64(run.messages as u64)),
        ("dropped", Json::U64(run.dropped as u64)),
        (
            "degraded",
            match run.degraded {
                Some((surviving, rounds, verified, cause)) => Json::obj([
                    ("surviving_nodes", Json::U64(surviving as u64)),
                    ("rounds_used", Json::U64(rounds as u64)),
                    ("verified", Json::Bool(verified)),
                    ("cause", Json::Str(cause.into())),
                ]),
                None => Json::Null,
            },
        ),
        ("digest", Json::Str(format!("{:016x}", run.digest))),
    ])
}

fn churn_summary_json(c: &ChurnSummary) -> Json {
    Json::obj([
        ("applied", Json::U64(c.applied as u64)),
        ("incremental", Json::U64(c.incremental as u64)),
        ("tree_preserving", Json::U64(c.tree_preserving as u64)),
        ("tree_repairable", Json::U64(c.tree_repairable as u64)),
        ("vertex_set", Json::U64(c.vertex_set as u64)),
        ("full_fallbacks", Json::U64(c.full_fallbacks as u64)),
        ("rejected_nonplanar", Json::U64(c.rejected_nonplanar as u64)),
        ("divergences", Json::U64(c.divergences as u64)),
    ])
}

fn violation_json(v: &Violation) -> Json {
    Json::obj([
        ("kind", Json::Str(v.kind.code().into())),
        (
            "shadow",
            match v.shadow {
                Some(s) => Json::Str(s.into()),
                None => Json::Null,
            },
        ),
        ("detail", Json::Str(v.detail.clone())),
    ])
}

/// The full per-run artifact (`dst_<seed>.json`): scenario, graph shape,
/// primary and shadow summaries, and every violation.
pub fn report_json(report: &ScenarioReport) -> Json {
    Json::obj([
        ("schema", Json::U64(1)),
        ("scenario", scenario_json(&report.scenario)),
        ("n", Json::U64(report.n as u64)),
        ("edges", Json::U64(report.edges as u64)),
        ("primary", run_summary_json(&report.primary)),
        (
            "shadows",
            Json::Arr(
                report
                    .shadows
                    .iter()
                    .map(|(label, run)| {
                        let mut o = match run_summary_json(run) {
                            Json::Obj(o) => o,
                            _ => unreachable!(),
                        };
                        o.insert("shadow".into(), Json::Str((*label).into()));
                        Json::Obj(o)
                    })
                    .collect(),
            ),
        ),
        (
            "churn",
            match &report.churn {
                Some(c) => churn_summary_json(c),
                None => Json::Null,
            },
        ),
        (
            "violations",
            Json::Arr(report.violations.iter().map(violation_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_keys_render_sorted_regardless_of_insertion_order() {
        let a = Json::obj([("zulu", Json::U64(1)), ("alpha", Json::U64(2))]);
        let b = Json::obj([("alpha", Json::U64(2)), ("zulu", Json::U64(1))]);
        assert_eq!(a.render(), b.render());
        let text = a.render();
        assert!(text.find("\"alpha\"").unwrap() < text.find("\"zulu\"").unwrap());
    }

    #[test]
    fn rendering_is_deterministic_and_escapes_strings() {
        let v = Json::obj([
            ("s", Json::Str("a\"b\\c\nd\u{1}".into())),
            ("arr", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::obj([])),
            ("f", Json::F64(0.05)),
        ]);
        let text = v.render();
        assert_eq!(text, v.render());
        assert!(text.contains("\\\"b\\\\c\\nd\\u0001"));
        assert!(text.contains("0.05"));
        assert!(text.contains("[]"));
        assert!(text.contains("{}"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn digest_separates_different_results() {
        use planar_embedding::{embed_distributed, EmbedderConfig};
        let small = planar_lib::gen::grid(3, 3);
        let large = planar_lib::gen::grid(4, 4);
        let cfg = EmbedderConfig::default();
        let a = embed_distributed(&small, &cfg);
        let b = embed_distributed(&large, &cfg);
        assert_ne!(outcome_digest(&a), outcome_digest(&b));
        assert_eq!(outcome_digest(&a), outcome_digest(&a));
    }

    #[test]
    fn scenario_artifact_round_trips_canonically() {
        let sc = crate::scenario::Scenario::generate(7);
        let a = scenario_json(&sc).render();
        let b = scenario_json(&crate::scenario::Scenario::generate(7)).render();
        assert_eq!(a, b);
        assert!(a.contains("\"seed\": 7"));
    }
}
