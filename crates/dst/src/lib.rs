//! # planar-dst
//!
//! Deterministic simulation testing (DST) at swarm scale for the
//! distributed planar embedder: a single `u64` seed determines a complete
//! end-to-end scenario — graph family and size, fault-injection schedule,
//! reliable-delivery wrapper, kernel, scheduler, thread count,
//! certification — which is run with the trace auditor armed and
//! shadow-checked against a stack of independent oracles (DESIGN.md §13):
//!
//! * the **terminal lattice** — fault-free scenarios must embed, faulty
//!   ones may gracefully degrade but never fail with an internal error;
//! * the **centralized oracle** — rotations re-validate against the input
//!   graph and the centralized planarity check;
//! * the **certification oracle** — in-run and independent fault-free
//!   re-certification must accept every successful embedding;
//! * **shadow bit-identity** — the same scenario re-run with the kernel
//!   flipped, the thread count flipped, and the scheduler flipped must
//!   agree (exactly, exactly, and up to the degraded round tally);
//! * the **churn oracle** — fault-free scenarios may draw a seeded churn
//!   dimension: the graph is hosted as a tenant of the multi-tenant
//!   embedding service (`planar-service`) and every delta's incremental
//!   re-embedding is diffed against a full re-embed of the mutated graph
//!   (rotation, certification verdict, planarity outcome).
//!
//! Any violation triggers automatic failing-seed minimization
//! ([`minimize`]): greedy delta-debugging over graph size, fault-plan
//! entries, and configuration dimensions, keeping the violation kind
//! reproducible. Every run renders to canonical sorted-key JSON
//! ([`artifact::Json`]), so artifacts diff cleanly across machines, and
//! `harness dst --seed N` replays any scenario bit-identically.
//!
//! The suite proves its own teeth: [`Scenario::arm_canary`] arms a
//! deliberately broken fate function in the fast kernel (honest in the
//! reference kernel), and the crate's tests assert the oracles catch the
//! divergence and the minimizer shrinks it to a small reproducer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod minimize;
pub mod oracle;
pub mod scenario;
pub mod swarm;

pub use artifact::Json;
pub use minimize::{minimize, Minimized, DEFAULT_BUDGET};
pub use oracle::{
    check_scenario, ChurnSummary, RunSummary, ScenarioReport, Violation, ViolationKind,
};
pub use scenario::{Scenario, MAX_N, MIN_N, THREAD_CHOICES};
pub use swarm::{run_artifact, run_one, run_swarm, SwarmOptions, SwarmReport, SwarmRun};
