//! The seeded scenario generator: one `u64` determines a complete
//! end-to-end configuration of the distributed embedder.
//!
//! A [`Scenario`] is the unit of deterministic simulation testing. Every
//! dimension — graph family and size, fault plan, reliable-delivery
//! wrapper, kernel, scheduler, thread count, certification — is drawn from
//! sub-seeds derived with the workspace's audited mixer
//! ([`congest_sim::mix_seed`]), so `Scenario::generate(seed)` is a pure
//! function: the same seed reproduces the same scenario on any machine,
//! and a failing seed printed by the swarm runner replays bit-identically
//! with `harness dst --seed N`.
//!
//! Generated fault plans always pass [`congest_sim::FaultPlan::validate`]
//! (probabilities in range, link-down windows non-empty, crash victims in
//! range) — the generator asserts this, so a validation failure is a bug
//! in the generator, never a property of a seed.

use congest_sim::{mix_seed, FaultPlan, LinkDown, LinkFaults, SimConfig};
use planar_embedding::{EmbedderConfig, Kernel, ReliableConfig, Scheduler};
use planar_graph::{Graph, VertexId};
use planar_lib::gen;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Smallest requested vertex count the generator draws.
pub const MIN_N: usize = 8;
/// Largest requested vertex count the generator draws. Small on purpose:
/// the swarm's power comes from scenario *count*, and small instances both
/// run fast and minimize well. Raised from 48 so the draw range covers
/// multi-level recursion and the kernel's blocked-delivery boundary
/// (blocks of 256 recipients) while staying minimizer-friendly.
pub const MAX_N: usize = 96;

/// Dimension tags for sub-seed derivation: `mix_seed(seed, &[DIM_*])`.
/// Stable — renumbering silently re-rolls every scenario ever reported.
const DIM_FAMILY: u64 = 1;
const DIM_SIZE: u64 = 2;
const DIM_GRAPH: u64 = 3;
const DIM_FAULT_DRAWS: u64 = 4;
const DIM_FAULT_PLAN: u64 = 5;
const DIM_EXEC: u64 = 6;
const DIM_CHURN_DRAWS: u64 = 7;
const DIM_CHURN_SEED: u64 = 8;

/// Thread counts the scenario engine cycles through for the fast kernel's
/// parallel round execution (`Some(t)` pins, bypassing host detection).
pub const THREAD_CHOICES: [usize; 3] = [1, 2, 4];

/// One fully-determined end-to-end run configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// The scenario seed everything below is derived from.
    pub seed: u64,
    /// Graph family name, resolvable via [`gen::family`].
    pub family: &'static str,
    /// Requested vertex count (families round to their nearest valid
    /// shape; see `gen::FAMILIES`).
    pub requested_n: usize,
    /// Seed passed to the family's builder (inert for deterministic
    /// families).
    pub graph_seed: u64,
    /// The complete fault-injection schedule (empty ⇒ fault-free run).
    pub faults: FaultPlan,
    /// Reliable-delivery wrapper configuration, if armed.
    pub reliability: Option<ReliableConfig>,
    /// Which simulation kernel executes the phases.
    pub kernel: Kernel,
    /// How the driver walks the recursion.
    pub scheduler: Scheduler,
    /// Pinned worker-thread count for the fast kernel.
    pub threads: usize,
    /// Whether the run appends the distributed certification phase.
    pub certify: bool,
    /// Seeded churn deltas applied through the multi-tenant service after
    /// the primary embedding, each judged incremental-vs-full-oracle
    /// (`0` ⇒ no churn pass). Drawn only for fault-free scenarios — the
    /// service hosts long-lived embeddings, not chaos runs.
    pub churn_deltas: usize,
    /// Seed of the churn stream (inert when `churn_deltas == 0`).
    pub churn_seed: u64,
}

impl Scenario {
    /// Draws the complete scenario for `seed`. Pure and total: every
    /// `u64` maps to a valid scenario.
    ///
    /// # Panics
    ///
    /// Panics if the generator produced a fault plan its own validator
    /// rejects — a generator bug by definition.
    pub fn generate(seed: u64) -> Scenario {
        let fam_idx = (mix_seed(seed, &[DIM_FAMILY]) % gen::FAMILIES.len() as u64) as usize;
        let family = &gen::FAMILIES[fam_idx];

        let span = (MAX_N - MIN_N + 1) as u64;
        let requested_n = (MIN_N + (mix_seed(seed, &[DIM_SIZE]) % span) as usize).max(family.min_n);
        let graph_seed = mix_seed(seed, &[DIM_GRAPH]);
        let g = (family.build)(requested_n, graph_seed);
        let n = g.vertex_count();

        let faults = draw_faults(
            mix_seed(seed, &[DIM_FAULT_DRAWS]),
            mix_seed(seed, &[DIM_FAULT_PLAN]),
            &g,
        );
        faults
            .validate(n)
            .expect("scenario generator emitted an invalid fault plan");

        let mut exec = StdRng::seed_from_u64(mix_seed(seed, &[DIM_EXEC]));
        let lossy = faults.link != LinkFaults::NONE
            || !faults.link_overrides.is_empty()
            || !faults.link_down.is_empty();
        let reliability = if lossy && exec.gen_range(0u32..100) < 75 {
            Some(ReliableConfig {
                retransmit_after: exec.gen_range(2usize..=5),
                max_retries: exec.gen_range(6usize..=10),
            })
        } else {
            None
        };
        let kernel = if exec.gen_range(0u32..100) < 60 {
            Kernel::Fast
        } else {
            Kernel::Reference
        };
        let scheduler = if exec.gen_range(0u32..100) < 50 {
            Scheduler::LevelSync
        } else {
            Scheduler::Sequential
        };
        let threads = THREAD_CHOICES[exec.gen_range(0usize..THREAD_CHOICES.len())];
        let certify = exec.gen_range(0u32..100) < 50;

        // Churn is a fault-free-only dimension: the embedding service
        // rejects fault plans (tenants are long-lived embeddings), so
        // drawing churn for faulty scenarios would silently no-op.
        let mut churn = StdRng::seed_from_u64(mix_seed(seed, &[DIM_CHURN_DRAWS]));
        let (churn_deltas, churn_seed) = if faults.is_empty() && churn.gen_range(0u32..100) < 40 {
            (
                churn.gen_range(1usize..=6),
                mix_seed(seed, &[DIM_CHURN_SEED]),
            )
        } else {
            (0, 0)
        };

        Scenario {
            seed,
            family: family.name,
            requested_n,
            graph_seed,
            faults,
            reliability,
            kernel,
            scheduler,
            threads,
            certify,
            churn_deltas,
            churn_seed,
        }
    }

    /// Rebuilds the scenario's input graph (deterministic in the stored
    /// family/size/seed).
    pub fn build_graph(&self) -> Graph {
        let family = gen::family(self.family).expect("scenario family is registered");
        (family.build)(self.requested_n, self.graph_seed)
    }

    /// Whether the scenario injects any fault at all — the bit the
    /// allowed-terminal lattice keys on.
    pub fn faulty(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Whether the scenario runs the churn pass (service-hosted seeded
    /// deltas with incremental-vs-full-oracle judging).
    pub fn churned(&self) -> bool {
        self.churn_deltas > 0
    }

    /// Assembles the [`EmbedderConfig`] for one run of this scenario with
    /// the given execution overrides (the shadow oracles flip these).
    /// Framework invariant checking stays off — the DST oracles are the
    /// check, and they must observe the production code path.
    pub fn config(&self, kernel: Kernel, scheduler: Scheduler, threads: usize) -> EmbedderConfig {
        EmbedderConfig {
            sim: SimConfig {
                faults: self.faults.clone(),
                threads: Some(threads),
                ..SimConfig::default()
            },
            check_invariants: false,
            reliability: self.reliability.clone(),
            certify: self.certify,
            kernel,
            scheduler,
        }
    }

    /// Arms the test-only canary: the fast kernel will resolve message
    /// fates through a deliberately skewed seed while the reference kernel
    /// stays honest, so any non-empty link-fault schedule makes the two
    /// kernels diverge. Exists so the DST suite can prove its own oracles
    /// and minimizer catch a real cross-kernel divergence.
    pub fn arm_canary(&mut self, skew: u64) {
        self.faults.canary_skew = skew;
    }
}

/// Draws the fault dimension: ~30% of scenarios run fault-free, the rest
/// combine uniform link faults with optional crash-stops, link outages,
/// and a per-link override. Crash victims and outage endpoints are drawn
/// from the *actual built graph*, so every plan validates against it.
fn draw_faults(draw_seed: u64, plan_seed: u64, g: &Graph) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(draw_seed);
    if rng.gen_range(0u32..100) < 30 {
        return FaultPlan::default();
    }
    let n = g.vertex_count();
    let mut plan = FaultPlan {
        seed: plan_seed,
        ..FaultPlan::default()
    };
    // Rates in per-mille, capped well below the regime where nothing ever
    // terminates usefully. A draw of all zeros is legitimate: the plan may
    // then consist of crashes/outages only, or collapse to empty.
    plan.link = LinkFaults {
        drop: rng.gen_range(0u32..=60) as f64 / 1000.0,
        duplicate: rng.gen_range(0u32..=30) as f64 / 1000.0,
        delay: rng.gen_range(0u32..=60) as f64 / 1000.0,
        max_delay: rng.gen_range(1usize..=3),
    };
    if rng.gen_range(0u32..100) < 30 {
        for _ in 0..rng.gen_range(1usize..=2) {
            let victim = VertexId(rng.gen_range(0u32..n as u32));
            let round = rng.gen_range(0usize..=12);
            plan.crashes.push((victim, round));
        }
    }
    let directed: Vec<(VertexId, VertexId)> = g
        .edges()
        .flat_map(|e| {
            let (u, v) = e.endpoints();
            [(u, v), (v, u)]
        })
        .collect();
    if rng.gen_range(0u32..100) < 25 && !directed.is_empty() {
        for _ in 0..rng.gen_range(1usize..=2) {
            let (from, to) = directed[rng.gen_range(0..directed.len())];
            let start = rng.gen_range(1usize..=8);
            let len = rng.gen_range(1usize..=4);
            plan.link_down.push(LinkDown {
                from,
                to,
                start,
                end: start + len,
            });
        }
    }
    if rng.gen_range(0u32..100) < 20 && !directed.is_empty() {
        let (from, to) = directed[rng.gen_range(0..directed.len())];
        plan.link_overrides.push((
            (from, to),
            LinkFaults {
                drop: rng.gen_range(100u32..=300) as f64 / 1000.0,
                duplicate: 0.0,
                delay: 0.0,
                max_delay: 0,
            },
        ));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        for seed in 0..50u64 {
            assert_eq!(Scenario::generate(seed), Scenario::generate(seed));
        }
    }

    #[test]
    fn every_seed_yields_a_valid_scenario() {
        for seed in 0..200u64 {
            let sc = Scenario::generate(seed);
            let g = sc.build_graph();
            assert!(g.vertex_count() >= 2, "seed {seed}: degenerate graph");
            assert!(g.is_connected(), "seed {seed}: disconnected graph");
            sc.faults
                .validate(g.vertex_count())
                .unwrap_or_else(|e| panic!("seed {seed}: invalid plan: {e}"));
            assert!(
                THREAD_CHOICES.contains(&sc.threads),
                "seed {seed}: bad thread count"
            );
            assert!(sc.requested_n <= MAX_N.max(gen::FAMILIES.len()));
        }
    }

    #[test]
    fn the_scenario_space_actually_varies() {
        let scenarios: Vec<Scenario> = (0..120).map(Scenario::generate).collect();
        let families: std::collections::HashSet<_> = scenarios.iter().map(|s| s.family).collect();
        assert!(families.len() >= 8, "family dimension collapsed");
        assert!(scenarios.iter().any(|s| s.faulty()));
        assert!(scenarios.iter().any(|s| !s.faulty()));
        assert!(scenarios.iter().any(|s| s.kernel == Kernel::Fast));
        assert!(scenarios.iter().any(|s| s.kernel == Kernel::Reference));
        assert!(scenarios
            .iter()
            .any(|s| s.scheduler == Scheduler::LevelSync));
        assert!(scenarios
            .iter()
            .any(|s| s.scheduler == Scheduler::Sequential));
        assert!(scenarios.iter().any(|s| s.certify));
        assert!(scenarios.iter().any(|s| !s.certify));
        assert!(scenarios.iter().any(|s| s.churned()));
        assert!(scenarios.iter().any(|s| !s.faulty() && !s.churned()));
        assert!(
            scenarios.iter().all(|s| !(s.faulty() && s.churned())),
            "churn must only be drawn for fault-free scenarios"
        );
        assert!(scenarios.iter().any(|s| s.reliability.is_some()));
        assert!(scenarios
            .iter()
            .any(|s| s.faulty() && s.reliability.is_none()));
        assert!(scenarios.iter().any(|s| !s.faults.crashes.is_empty()));
        assert!(scenarios.iter().any(|s| !s.faults.link_down.is_empty()));
        assert!(scenarios
            .iter()
            .any(|s| !s.faults.link_overrides.is_empty()));
        for t in THREAD_CHOICES {
            assert!(
                scenarios.iter().any(|s| s.threads == t),
                "threads={t} never drawn"
            );
        }
    }

    #[test]
    fn canary_is_disarmed_by_default() {
        for seed in 0..50u64 {
            assert_eq!(Scenario::generate(seed).faults.canary_skew, 0);
        }
        let mut sc = Scenario::generate(0);
        sc.arm_canary(0xDEAD_BEEF);
        assert_eq!(sc.faults.canary_skew, 0xDEAD_BEEF);
    }
}
