//! The oracle stack: everything one scenario run is checked against.
//!
//! A single [`check_scenario`] call runs the scenario's primary
//! configuration plus three shadow configurations, each with the trace
//! auditor armed, and cross-examines the results:
//!
//! 1. **Trace audit** — every run's kernel-reported [`Metrics`] must
//!    survive independent recomputation from the event stream
//!    ([`congest_sim::AuditSink`]); drift is [`ViolationKind::AuditDrift`].
//! 2. **Terminal lattice** — the outcome class must be allowed for the
//!    scenario ([`OutcomeClass::allowed_on_planar_input`]): fault-free
//!    scenarios must embed, faulty ones may degrade but never fail with an
//!    internal error ([`ViolationKind::Lattice`]).
//! 3. **Centralized oracle** — a successful run's rotation must
//!    re-validate against the input graph, be genus 0, and agree with the
//!    centralized planarity check ([`ViolationKind::BadEmbedding`]).
//! 4. **Certification oracle** — certification artifacts must be present
//!    iff requested and accepted, and an independent fault-free
//!    re-certification of the rotation must accept
//!    ([`ViolationKind::Certification`]).
//! 5. **Shadow bit-identity** — the kernel-flipped and thread-flipped
//!    shadows must agree *exactly* (rotation, metrics, stats,
//!    certification, full degraded fingerprint); the scheduler-flipped
//!    shadow must agree exactly on success and on everything except
//!    `rounds_used` when degraded ([`ViolationKind::Divergence`]). The
//!    equality tiers mirror the conformance contracts pinned in
//!    `core/tests/scheduler.rs`.

use congest_sim::AuditSink;
use planar_embedding::{
    certify_embedding, degraded_fingerprint, embed_distributed, verify_embedding, EmbedError,
    EmbedderConfig, EmbeddingOutcome, Kernel, OutcomeClass, Scheduler,
};
use planar_graph::Graph;
use planar_lib::is_planar;

use crate::artifact::outcome_digest;
use crate::scenario::Scenario;

/// The kind of contract a violation broke. Minimization reproduces *by
/// kind*: a shrunk scenario counts as reproducing iff it violates the same
/// kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationKind {
    /// The trace auditor's independent metrics recomputation disagreed
    /// with the kernel's own accounting.
    AuditDrift,
    /// The run terminated in a class the scenario does not allow.
    Lattice,
    /// A successful run's rotation failed centralized re-validation.
    BadEmbedding,
    /// Certification artifacts missing/unexpected/rejected, or the
    /// independent re-certification rejected the rotation.
    Certification,
    /// Two runs of the same scenario that must agree did not.
    Divergence,
    /// The service's incremental re-embedding disagreed with its full
    /// re-embed oracle under churn, or the churn pass failed internally.
    ChurnDivergence,
    /// The delta planner executed a different [`planar_service::DeltaClass`]
    /// than it predicted for an applied churn delta — a staged repair was
    /// rejected by its oracle-grade verification, which a correct planner
    /// never produces.
    ChurnClassMismatch,
}

impl ViolationKind {
    /// Stable identifier for artifacts and log lines.
    pub fn code(self) -> &'static str {
        match self {
            ViolationKind::AuditDrift => "audit-drift",
            ViolationKind::Lattice => "lattice",
            ViolationKind::BadEmbedding => "bad-embedding",
            ViolationKind::Certification => "certification",
            ViolationKind::Divergence => "divergence",
            ViolationKind::ChurnDivergence => "churn-divergence",
            ViolationKind::ChurnClassMismatch => "churn-class-mismatch",
        }
    }
}

/// One oracle violation: the kind, which shadow run surfaced it (`None`
/// for the primary), and a human-readable account.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Broken contract.
    pub kind: ViolationKind,
    /// Shadow label (`"kernel-flip"`, `"thread-flip"`, `"scheduler-flip"`)
    /// or `None` for the primary run.
    pub shadow: Option<&'static str>,
    /// What exactly disagreed.
    pub detail: String,
}

/// A compact, comparable summary of one run for artifacts.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSummary {
    /// Terminal class.
    pub class: OutcomeClass,
    /// Rounds consumed (successful runs) or charged (degraded runs);
    /// 0 for other errors.
    pub rounds: usize,
    /// Messages delivered (successful runs only; 0 otherwise).
    pub messages: usize,
    /// Messages discarded by fault injection (successful runs only).
    pub dropped: usize,
    /// Degraded fingerprint `(surviving, rounds, verified, cause)`, if
    /// degraded.
    pub degraded: Option<(usize, usize, bool, &'static str)>,
    /// Order-sensitive digest of the full result (rotation + metrics +
    /// certification verdicts), for artifact-level bit-identity checks.
    pub digest: u64,
}

impl RunSummary {
    fn of(result: &Result<EmbeddingOutcome, EmbedError>) -> RunSummary {
        let (rounds, messages, dropped) = match result {
            Ok(out) => (
                out.metrics.rounds,
                out.metrics.messages,
                out.metrics.dropped,
            ),
            Err(EmbedError::Degraded { rounds_used, .. }) => (*rounds_used, 0, 0),
            Err(_) => (0, 0, 0),
        };
        RunSummary {
            class: OutcomeClass::of(result),
            rounds,
            messages,
            dropped,
            degraded: degraded_fingerprint(result),
            digest: outcome_digest(result),
        }
    }
}

/// Outcome tally of the churn pass, when the scenario drew one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChurnSummary {
    /// Deltas the service applied (incremental + full fallbacks).
    pub applied: usize,
    /// Applied via the incremental path (affected-subtree re-run).
    pub incremental: usize,
    /// Applied incrementally as `DeltaClass::TreePreserving`.
    pub tree_preserving: usize,
    /// Applied incrementally as `DeltaClass::TreeRepairable`.
    pub tree_repairable: usize,
    /// Applied incrementally as `DeltaClass::VertexSetChange`.
    pub vertex_set: usize,
    /// Applied via a recorded full fallback (tree/vertex-set change).
    pub full_fallbacks: usize,
    /// Deltas rejected as planarity-breaking (gate or embedder).
    pub rejected_nonplanar: usize,
    /// Incremental-vs-full-oracle disagreements (must be 0; any nonzero
    /// value also appears as a [`ViolationKind::ChurnDivergence`]).
    pub divergences: usize,
}

/// Everything [`check_scenario`] learned about one scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioReport {
    /// The scenario as run (canary skew included, if armed).
    pub scenario: Scenario,
    /// Actual vertex count of the built graph.
    pub n: usize,
    /// Edge count of the built graph.
    pub edges: usize,
    /// The primary run.
    pub primary: RunSummary,
    /// The shadow runs, labeled.
    pub shadows: Vec<(&'static str, RunSummary)>,
    /// The churn pass tally, when the scenario drew churn deltas.
    pub churn: Option<ChurnSummary>,
    /// Every violation found, in oracle order. Empty means the scenario
    /// passed all checks.
    pub violations: Vec<Violation>,
}

impl ScenarioReport {
    /// Kind of the first (highest-priority) violation, if any — the kind
    /// the minimizer reproduces.
    pub fn first_violation(&self) -> Option<ViolationKind> {
        self.violations.first().map(|v| v.kind)
    }
}

fn run_once(
    sc: &Scenario,
    g: &Graph,
    kernel: Kernel,
    scheduler: Scheduler,
    threads: usize,
) -> (
    Result<EmbeddingOutcome, EmbedError>,
    std::sync::Arc<AuditSink>,
) {
    let audit = AuditSink::new();
    let mut cfg = sc.config(kernel, scheduler, threads);
    cfg.sim.trace = congest_sim::TraceHandle::to(audit.clone());
    (embed_distributed(g, &cfg), audit)
}

/// Compares two runs of the same scenario. `strict_rounds` is true for
/// kernel/thread flips (full bit-identity) and false for scheduler flips
/// (degraded runs legitimately charge different partial round tallies).
/// Returns a description of the first disagreement.
fn compare_runs(
    a: &Result<EmbeddingOutcome, EmbedError>,
    b: &Result<EmbeddingOutcome, EmbedError>,
    strict_rounds: bool,
) -> Option<String> {
    let (ca, cb) = (OutcomeClass::of(a), OutcomeClass::of(b));
    if ca != cb {
        return Some(format!("class {} vs {}", ca.code(), cb.code()));
    }
    match (a, b) {
        (Ok(oa), Ok(ob)) => {
            if oa.rotation != ob.rotation {
                Some("rotations differ".into())
            } else if oa.metrics != ob.metrics {
                Some(format!(
                    "metrics differ: {:?} vs {:?}",
                    oa.metrics, ob.metrics
                ))
            } else if oa.stats != ob.stats {
                Some("recursion stats differ".into())
            } else if oa.certification != ob.certification {
                Some("certification artifacts differ".into())
            } else {
                None
            }
        }
        (Err(_), Err(_)) => {
            let fa = degraded_fingerprint(a);
            let fb = degraded_fingerprint(b);
            match (fa, fb) {
                (Some(mut fa), Some(mut fb)) => {
                    if !strict_rounds {
                        fa.1 = 0;
                        fb.1 = 0;
                    }
                    if fa != fb {
                        Some(format!("degraded fingerprints differ: {fa:?} vs {fb:?}"))
                    } else {
                        None
                    }
                }
                // Same non-degraded class (e.g. both NonPlanar): agreed.
                _ => None,
            }
        }
        // Class equality above rules out Ok-vs-Err here.
        _ => None,
    }
}

/// Runs the full oracle stack over one scenario: primary + three shadows,
/// audited, lattice-checked, centrally re-validated, re-certified, and
/// cross-compared. Deterministic: the same scenario yields the same
/// report, byte for byte.
pub fn check_scenario(sc: &Scenario) -> ScenarioReport {
    let g = sc.build_graph();
    let n = g.vertex_count();
    let mut violations = Vec::new();

    let (primary, audit) = run_once(sc, &g, sc.kernel, sc.scheduler, sc.threads);
    audit_check(&audit, None, &mut violations);

    // Terminal lattice: the generator guarantees a connected planar input.
    let class = OutcomeClass::of(&primary);
    if !class.allowed_on_planar_input(sc.faulty()) {
        violations.push(Violation {
            kind: ViolationKind::Lattice,
            shadow: None,
            detail: format!(
                "class {} not allowed for a {} scenario on a planar input ({})",
                class.code(),
                if sc.faulty() { "faulty" } else { "fault-free" },
                describe(&primary),
            ),
        });
    }

    if let Ok(out) = &primary {
        // Centralized oracle: re-validate the rotation against the input
        // and against the centralized planarity check.
        if let Err(e) = verify_embedding(&g, &out.rotation) {
            violations.push(Violation {
                kind: ViolationKind::BadEmbedding,
                shadow: None,
                detail: format!("centralized re-validation rejected the rotation: {e}"),
            });
        } else if !out.rotation.is_planar_embedding() {
            violations.push(Violation {
                kind: ViolationKind::BadEmbedding,
                shadow: None,
                detail: "rotation is not genus 0".into(),
            });
        } else if !is_planar(&g) {
            violations.push(Violation {
                kind: ViolationKind::BadEmbedding,
                shadow: None,
                detail: "centralized check calls the embedded input non-planar".into(),
            });
        }

        // Certification oracle: artifacts present iff requested, accepted
        // when present, and an independent fault-free re-certification of
        // the rotation must accept.
        match (&out.certification, sc.certify) {
            (Some(cert), true) => {
                if !cert.accepted() {
                    violations.push(Violation {
                        kind: ViolationKind::Certification,
                        shadow: None,
                        detail: format!(
                            "in-run certification rejected a successful embedding \
                             ({} rejections, {} incomplete)",
                            cert.report.rejections.len(),
                            cert.report.incomplete.len()
                        ),
                    });
                }
            }
            (None, true) => violations.push(Violation {
                kind: ViolationKind::Certification,
                shadow: None,
                detail: "certification requested but missing from the outcome".into(),
            }),
            (Some(_), false) => violations.push(Violation {
                kind: ViolationKind::Certification,
                shadow: None,
                detail: "certification present although never requested".into(),
            }),
            (None, false) => {}
        }
        let clean = EmbedderConfig {
            check_invariants: false,
            kernel: sc.kernel,
            ..EmbedderConfig::default()
        };
        match certify_embedding(&g, &out.rotation, &clean) {
            Ok(cert) if cert.accepted() => {}
            Ok(cert) => violations.push(Violation {
                kind: ViolationKind::Certification,
                shadow: None,
                detail: format!(
                    "independent fault-free re-certification rejected the rotation \
                     ({} rejections)",
                    cert.report.rejections.len()
                ),
            }),
            Err(e) => violations.push(Violation {
                kind: ViolationKind::Certification,
                shadow: None,
                detail: format!("independent re-certification aborted: {e}"),
            }),
        }
    }

    // Shadow runs. Kernel flip and thread flip demand full bit-identity
    // (the PR 1/2 conformance contract: states, metrics, and errors equal;
    // fault schedules replay identically on both kernels). Scheduler flip
    // relaxes only the degraded round tally.
    let flip_kernel = match sc.kernel {
        Kernel::Fast => Kernel::Reference,
        Kernel::Reference => Kernel::Fast,
    };
    let flip_threads = if sc.threads == 1 { 4 } else { 1 };
    let flip_sched = match sc.scheduler {
        Scheduler::LevelSync => Scheduler::Sequential,
        Scheduler::Sequential => Scheduler::LevelSync,
    };
    let shadow_plan: [(&'static str, Kernel, Scheduler, usize, bool); 3] = [
        ("kernel-flip", flip_kernel, sc.scheduler, sc.threads, true),
        ("thread-flip", sc.kernel, sc.scheduler, flip_threads, true),
        ("scheduler-flip", sc.kernel, flip_sched, sc.threads, false),
    ];
    let mut shadows = Vec::with_capacity(shadow_plan.len());
    for (label, kernel, scheduler, threads, strict) in shadow_plan {
        let (result, audit) = run_once(sc, &g, kernel, scheduler, threads);
        audit_check(&audit, Some(label), &mut violations);
        if let Some(diff) = compare_runs(&primary, &result, strict) {
            violations.push(Violation {
                kind: ViolationKind::Divergence,
                shadow: Some(label),
                detail: format!("{label}: {diff}"),
            });
        }
        shadows.push((label, RunSummary::of(&result)));
    }

    // Churn pass: host the scenario graph as a service tenant and drive
    // the seeded delta stream with the incremental-vs-full oracle armed.
    let churn = (sc.churned() && !sc.faulty()).then(|| check_churn(sc, &g, &mut violations));

    ScenarioReport {
        scenario: sc.clone(),
        n,
        edges: g.edge_count(),
        primary: RunSummary::of(&primary),
        shadows,
        churn,
        violations,
    }
}

/// Runs the scenario's churn dimension: admits the built graph as a
/// tenant of a [`planar_service::ServiceState`] with
/// [`planar_service::OracleMode::Always`] (every delta diffed against a
/// full re-embed) and the trace auditor armed, then applies
/// `churn_deltas` draws of the seeded stream. Divergences and internal
/// failures surface as [`ViolationKind::ChurnDivergence`]; audit drift
/// as [`ViolationKind::AuditDrift`].
fn check_churn(sc: &Scenario, g: &Graph, violations: &mut Vec<Violation>) -> ChurnSummary {
    use planar_service::{ChurnGen, OracleMode, ServiceConfig, ServiceState};

    let audit = AuditSink::new();
    let mut cfg = ServiceConfig {
        kernel: sc.kernel,
        certify: sc.certify,
        oracle: OracleMode::Always,
        ..ServiceConfig::default()
    };
    cfg.sim.threads = Some(sc.threads);
    cfg.sim.trace = congest_sim::TraceHandle::to(audit.clone());
    let mut svc = ServiceState::new(cfg);

    let id = match svc.create_tenant(g.clone()) {
        Ok(id) => id,
        Err(e) => {
            // The generator guarantees a connected planar input, so a
            // fault-free admission can never fail.
            violations.push(Violation {
                kind: ViolationKind::ChurnDivergence,
                shadow: Some("churn"),
                detail: format!("service admission failed on a planar input: {e}"),
            });
            return ChurnSummary::default();
        }
    };
    let mut churn = ChurnGen::new(sc.churn_seed);
    for step in 0..sc.churn_deltas {
        let delta = churn.next_delta(svc.tenant(id).unwrap().graph());
        let shown = delta.clone();
        if let Err(e) = svc.apply(id, delta) {
            violations.push(Violation {
                kind: ViolationKind::ChurnDivergence,
                shadow: Some("churn"),
                detail: format!("step {step} ({shown}): service error: {e}"),
            });
            break;
        }
        let record = svc.tenant(id).unwrap().records().last().cloned();
        if let Some(record) = record {
            if let Some(diff) = &record.diverged {
                violations.push(Violation {
                    kind: ViolationKind::ChurnDivergence,
                    shadow: Some("churn"),
                    detail: format!("step {step} ({shown}): {diff}"),
                });
            }
            // The planner's prediction must be the class the engine
            // executed: a planned-vs-taken gap means a staged repair was
            // rejected by its verification — a planner bug by contract.
            if let (Some(planned), Some(taken)) = (record.planned, record.class) {
                if planned != taken {
                    violations.push(Violation {
                        kind: ViolationKind::ChurnClassMismatch,
                        shadow: Some("churn"),
                        detail: format!(
                            "step {step} ({shown}): planned {planned} but took {taken}"
                        ),
                    });
                }
            }
        }
    }
    audit_check(&audit, Some("churn"), violations);

    let stats = svc.tenant(id).unwrap().stats();
    ChurnSummary {
        applied: stats.applied,
        incremental: stats.incremental,
        tree_preserving: stats.tree_preserving,
        tree_repairable: stats.tree_repairable,
        vertex_set: stats.vertex_set,
        full_fallbacks: stats.full_fallbacks,
        rejected_nonplanar: stats.rejected_nonplanar,
        divergences: stats.divergences,
    }
}

fn audit_check(audit: &AuditSink, shadow: Option<&'static str>, out: &mut Vec<Violation>) {
    if !audit.ok() {
        out.push(Violation {
            kind: ViolationKind::AuditDrift,
            shadow,
            detail: format!(
                "trace auditor found accounting drift: {:?}",
                audit.report().mismatches
            ),
        });
    }
}

fn describe(result: &Result<EmbeddingOutcome, EmbedError>) -> String {
    match result {
        Ok(out) => format!("embedded in {} rounds", out.metrics.rounds),
        Err(e) => e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    /// A fault-free scenario passes the whole oracle stack; its report is
    /// reproducible byte for byte.
    #[test]
    fn fault_free_scenario_passes_and_replays() {
        let sc = (0..)
            .map(Scenario::generate)
            .find(|s| !s.faulty() && s.certify)
            .unwrap();
        let a = check_scenario(&sc);
        assert_eq!(a.violations, vec![], "seed {}", sc.seed);
        assert_eq!(a.primary.class, OutcomeClass::Embedded);
        let b = check_scenario(&sc);
        assert_eq!(a, b, "oracle report must replay identically");
    }

    /// A faulty scenario terminates in an allowed class and all shadows
    /// agree — the conformance contracts hold under fault injection.
    #[test]
    fn faulty_scenario_passes_the_oracle_stack() {
        let sc = (0..)
            .map(Scenario::generate)
            .find(|s| s.faulty() && s.reliability.is_some())
            .unwrap();
        let report = check_scenario(&sc);
        assert_eq!(report.violations, vec![], "seed {}", sc.seed);
        assert!(report.primary.class.allowed_on_planar_input(true));
    }

    /// A churned scenario runs the service churn pass cleanly: deltas
    /// are exercised, nothing diverges from the full re-embed oracle,
    /// and the report replays byte for byte.
    #[test]
    fn churned_scenario_passes_the_churn_oracle() {
        let sc = (0..)
            .map(Scenario::generate)
            .find(|s| s.churned() && s.certify)
            .unwrap();
        let report = check_scenario(&sc);
        assert_eq!(report.violations, vec![], "seed {}", sc.seed);
        let churn = report.churn.expect("churned scenario must tally churn");
        assert_eq!(
            churn.applied + churn.rejected_nonplanar,
            sc.churn_deltas,
            "seed {}: every delta must be judged",
            sc.seed
        );
        assert_eq!(churn.divergences, 0);
        assert_eq!(
            churn.tree_preserving + churn.tree_repairable + churn.vertex_set,
            churn.incremental,
            "seed {}: the per-class tallies partition the incremental count",
            sc.seed
        );
        assert_eq!(check_scenario(&sc), report, "churn pass must replay");
    }

    /// Unchurned scenarios carry no churn tally.
    #[test]
    fn unchurned_scenarios_skip_the_churn_pass() {
        let sc = (0..)
            .map(Scenario::generate)
            .find(|s| !s.churned())
            .unwrap();
        assert_eq!(check_scenario(&sc).churn, None);
    }

    #[test]
    fn violation_kind_codes_are_distinct() {
        let kinds = [
            ViolationKind::AuditDrift,
            ViolationKind::Lattice,
            ViolationKind::BadEmbedding,
            ViolationKind::Certification,
            ViolationKind::Divergence,
            ViolationKind::ChurnDivergence,
            ViolationKind::ChurnClassMismatch,
        ];
        let codes: std::collections::HashSet<_> = kinds.iter().map(|k| k.code()).collect();
        assert_eq!(codes.len(), kinds.len());
    }
}
