//! The swarm runner: many scenarios from consecutive seeds, violations
//! minimized, everything summarized as one canonical JSON document.
//!
//! Seeds are consecutive (`base_seed + i`), **not** mixed: a violating
//! seed printed by the swarm replays directly with `harness dst --seed N`
//! — the scenario engine does its own sub-seed mixing internally, so
//! consecutive seeds still cover the scenario space.

use std::collections::BTreeMap;

use crate::artifact::{report_json, scenario_json, Json};
use crate::minimize::{minimize, Minimized, DEFAULT_BUDGET};
use crate::oracle::{check_scenario, ScenarioReport};
use crate::scenario::Scenario;

/// Configuration of one swarm.
#[derive(Clone, Debug, PartialEq)]
pub struct SwarmOptions {
    /// First scenario seed; run `i` uses `base_seed + i` (wrapping).
    pub base_seed: u64,
    /// Number of scenarios.
    pub count: usize,
    /// Non-zero arms the test-only canary (deliberately broken fast-kernel
    /// fate function) on every faulty scenario — the swarm must then find
    /// and minimize divergences. Zero (the default) for honest runs.
    pub canary_skew: u64,
    /// Oracle-call budget per minimization.
    pub minimize_budget: usize,
}

impl Default for SwarmOptions {
    fn default() -> Self {
        SwarmOptions {
            base_seed: 0,
            count: 25,
            canary_skew: 0,
            minimize_budget: DEFAULT_BUDGET,
        }
    }
}

/// One scenario's worth of swarm output.
#[derive(Clone, Debug, PartialEq)]
pub struct SwarmRun {
    /// The scenario seed.
    pub seed: u64,
    /// Full oracle report.
    pub report: ScenarioReport,
    /// Minimization result, present iff the report has violations.
    pub minimized: Option<Minimized>,
}

impl SwarmRun {
    /// One-line progress summary (`harness dst` prints one per scenario).
    pub fn progress_line(&self) -> String {
        let sc = &self.report.scenario;
        let verdict = if self.report.violations.is_empty() {
            "ok".to_string()
        } else {
            format!(
                "VIOLATION[{}]",
                self.report
                    .violations
                    .iter()
                    .map(|v| v.kind.code())
                    .collect::<Vec<_>>()
                    .join(",")
            )
        };
        format!(
            "dst seed={:<6} {:<22} n={:<3} faults={} kernel={:<9} sched={:<10} t={} cert={} -> {:<19} {}",
            self.seed,
            sc.family,
            self.report.n,
            u8::from(sc.faulty()),
            crate::artifact::kernel_code(sc.kernel),
            crate::artifact::scheduler_code(sc.scheduler),
            sc.threads,
            u8::from(sc.certify),
            self.report.primary.class.code(),
            verdict,
        )
    }
}

/// Runs one scenario end to end: generate, arm the canary if requested,
/// check against the full oracle stack, minimize on violation.
pub fn run_one(seed: u64, canary_skew: u64, minimize_budget: usize) -> SwarmRun {
    let mut sc = Scenario::generate(seed);
    if canary_skew != 0 {
        sc.arm_canary(canary_skew);
    }
    let report = check_scenario(&sc);
    let minimized = report
        .first_violation()
        .map(|kind| minimize(&sc, kind, minimize_budget));
    SwarmRun {
        seed,
        report,
        minimized,
    }
}

/// The whole swarm's output.
#[derive(Clone, Debug, PartialEq)]
pub struct SwarmReport {
    /// The options the swarm ran with.
    pub options: SwarmOptions,
    /// Per-scenario outputs, in seed order.
    pub runs: Vec<SwarmRun>,
}

impl SwarmReport {
    /// Number of scenarios with at least one violation.
    pub fn violating(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| !r.report.violations.is_empty())
            .count()
    }

    /// Seeds with at least one violation, in order.
    pub fn violating_seeds(&self) -> Vec<u64> {
        self.runs
            .iter()
            .filter(|r| !r.report.violations.is_empty())
            .map(|r| r.seed)
            .collect()
    }

    /// Histogram of primary terminal classes, by stable code.
    pub fn class_histogram(&self) -> BTreeMap<&'static str, u64> {
        let mut hist = BTreeMap::new();
        for run in &self.runs {
            *hist.entry(run.report.primary.class.code()).or_insert(0) += 1;
        }
        hist
    }

    /// The swarm summary as canonical JSON (`BENCH_dst.json`).
    pub fn to_json(&self) -> String {
        let runs = self
            .runs
            .iter()
            .map(|run| {
                let sc = &run.report.scenario;
                Json::obj([
                    ("seed", Json::U64(run.seed)),
                    ("family", Json::Str(sc.family.into())),
                    ("n", Json::U64(run.report.n as u64)),
                    ("faulty", Json::Bool(sc.faulty())),
                    (
                        "kernel",
                        Json::Str(crate::artifact::kernel_code(sc.kernel).into()),
                    ),
                    (
                        "scheduler",
                        Json::Str(crate::artifact::scheduler_code(sc.scheduler).into()),
                    ),
                    ("threads", Json::U64(sc.threads as u64)),
                    ("certify", Json::Bool(sc.certify)),
                    ("reliability", Json::Bool(sc.reliability.is_some())),
                    ("class", Json::Str(run.report.primary.class.code().into())),
                    ("rounds", Json::U64(run.report.primary.rounds as u64)),
                    (
                        "digest",
                        Json::Str(format!("{:016x}", run.report.primary.digest)),
                    ),
                    (
                        "violations",
                        Json::Arr(
                            run.report
                                .violations
                                .iter()
                                .map(|v| Json::Str(v.kind.code().into()))
                                .collect(),
                        ),
                    ),
                    (
                        "minimized",
                        match &run.minimized {
                            Some(m) => minimized_json(m),
                            None => Json::Null,
                        },
                    ),
                ])
            })
            .collect();
        let classes = Json::Obj(
            self.class_histogram()
                .into_iter()
                .map(|(code, count)| (code.to_string(), Json::U64(count)))
                .collect(),
        );
        let doc = Json::obj([
            ("benchmark", Json::Str("dst-swarm".into())),
            ("schema", Json::U64(1)),
            ("base_seed", Json::U64(self.options.base_seed)),
            ("count", Json::U64(self.options.count as u64)),
            ("canary_skew", Json::U64(self.options.canary_skew)),
            ("classes", classes),
            ("violations", Json::U64(self.violating() as u64)),
            (
                "violating_seeds",
                Json::Arr(self.violating_seeds().into_iter().map(Json::U64).collect()),
            ),
            ("runs", Json::Arr(runs)),
        ]);
        let mut text = doc.render();
        text.push('\n');
        text
    }
}

fn minimized_json(m: &Minimized) -> Json {
    Json::obj([
        ("kind", Json::Str(m.kind.code().into())),
        ("runs", Json::U64(m.runs as u64)),
        (
            "steps",
            Json::Arr(m.steps.iter().map(|s| Json::Str(s.clone())).collect()),
        ),
        ("scenario", scenario_json(&m.scenario)),
    ])
}

/// Runs the whole swarm, invoking `progress` after each scenario (the
/// harness prints; tests pass a no-op).
pub fn run_swarm(options: &SwarmOptions, mut progress: impl FnMut(&SwarmRun)) -> SwarmReport {
    let mut runs = Vec::with_capacity(options.count);
    for i in 0..options.count {
        let seed = options.base_seed.wrapping_add(i as u64);
        let run = run_one(seed, options.canary_skew, options.minimize_budget);
        progress(&run);
        runs.push(run);
    }
    SwarmReport {
        options: options.clone(),
        runs,
    }
}

/// The per-run artifact (`dst_<seed>.json`) including minimization, as
/// canonical JSON text.
pub fn run_artifact(run: &SwarmRun) -> String {
    let mut doc = match report_json(&run.report) {
        Json::Obj(o) => o,
        _ => unreachable!(),
    };
    doc.insert(
        "minimized".into(),
        match &run.minimized {
            Some(m) => minimized_json(m),
            None => Json::Null,
        },
    );
    let mut text = Json::Obj(doc).render();
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swarm_json_is_canonical_and_replayable() {
        let opts = SwarmOptions {
            base_seed: 100,
            count: 3,
            ..SwarmOptions::default()
        };
        let a = run_swarm(&opts, |_| {});
        let b = run_swarm(&opts, |_| {});
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.runs.len(), 3);
        let text = a.to_json();
        assert!(text.contains("\"benchmark\": \"dst-swarm\""));
        assert!(text.ends_with('\n'));
        // Per-run replay: the swarm row equals a standalone single-seed run.
        let solo = run_one(101, 0, DEFAULT_BUDGET);
        assert_eq!(run_artifact(&solo), run_artifact(&a.runs[1]));
    }
}
