//! The canary acceptance test: the DST suite must prove its own teeth.
//!
//! `FaultPlan::canary_skew` (armed via [`Scenario::arm_canary`]) is a
//! deliberately broken fate function behind a test-only flag: the fast
//! kernel resolves message fates with a skewed seed while the reference
//! kernel stays honest, so the two kernels genuinely diverge on any
//! scenario whose link-fault schedule is actually consulted. This file
//! asserts the whole detection pipeline works end to end: the shadow
//! oracles *catch* the divergence, and the failing-seed minimizer
//! *shrinks* it to a small reproducer while the bug keeps reproducing.

use planar_dst::{check_scenario, minimize, run_one, Scenario, ViolationKind};

const SKEW: u64 = 0xDEAD_BEEF_0BAD_CAFE;

/// First seed whose scenario has a lossy link schedule (drop rate high
/// enough that fates are consulted and differ under the skew — a ~1%
/// schedule on a small instance can draw identical fate sets from the
/// skewed and honest streams, so require a few percent).
fn lossy_seed() -> u64 {
    (0u64..500)
        .find(|&seed| {
            let sc = Scenario::generate(seed);
            sc.faulty() && sc.faults.link.drop >= 0.04
        })
        .expect("a lossy scenario exists in the first 500 seeds")
}

#[test]
fn canary_divergence_is_caught_and_minimized() {
    let seed = lossy_seed();
    let mut sc = Scenario::generate(seed);
    sc.arm_canary(SKEW);

    // Caught: the kernel-flip shadow pits the skewed fast kernel against
    // the honest reference kernel, so the runs cannot agree.
    let report = check_scenario(&sc);
    let divergences: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.kind == ViolationKind::Divergence)
        .collect();
    assert!(
        !divergences.is_empty(),
        "seed {seed}: armed canary escaped the shadow oracles: {:?}",
        report.violations
    );
    assert!(
        divergences.iter().any(|v| v.shadow == Some("kernel-flip")),
        "divergence must be attributed to the kernel flip: {divergences:?}"
    );

    // Minimized: the shrinker keeps the divergence reproducible while
    // strictly reducing the scenario.
    let minimized = minimize(&sc, ViolationKind::Divergence, 48);
    assert!(minimized.runs <= 48);
    assert!(
        !minimized.steps.is_empty(),
        "seed {seed}: shrinker failed to remove anything from {sc:?}"
    );
    assert!(minimized.scenario.requested_n <= sc.requested_n);
    let final_report = check_scenario(&minimized.scenario);
    assert!(
        final_report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::Divergence),
        "minimized scenario no longer reproduces: {:?}",
        minimized.scenario
    );
    // The canary only fires while fates are consulted, so the minimal
    // reproducer must still inject link faults — the shrinker learned
    // that zeroing the whole plan kills reproduction.
    assert!(
        minimized.scenario.faulty(),
        "minimized scenario lost its fault plan entirely: {:?}",
        minimized.scenario
    );
    // The graph dimension must actually shrink: the divergence does not
    // depend on the original instance size.
    assert!(
        minimized.scenario.requested_n < sc.requested_n,
        "shrinker never reduced the graph: {} vs {}",
        minimized.scenario.requested_n,
        sc.requested_n
    );
}

/// The swarm pipeline wires catch → minimize automatically: a canary-armed
/// `run_one` produces both the violation and the minimization, and the
/// artifact records them.
#[test]
fn canary_swarm_run_attaches_a_minimized_reproducer() {
    let seed = lossy_seed();
    let run = run_one(seed, SKEW, 48);
    assert!(!run.report.violations.is_empty());
    let minimized = run
        .minimized
        .as_ref()
        .expect("violation triggers minimization");
    assert!(minimized.runs > 0);
    let artifact = planar_dst::run_artifact(&run);
    assert!(artifact.contains("\"divergence\""));
    assert!(artifact.contains("\"minimized\""));
    assert!(artifact.contains(&format!("\"canary_skew\": {SKEW}")));
}

/// Skew zero is byte-identical to the honest path: arming the canary with
/// 0 changes nothing (the production invariant that makes the hook safe
/// to ship).
#[test]
fn zero_skew_is_inert() {
    let seed = lossy_seed();
    let honest = run_one(seed, 0, 8);
    let mut sc = Scenario::generate(seed);
    sc.arm_canary(0);
    let armed = check_scenario(&sc);
    assert_eq!(honest.report.primary, armed.primary);
    assert!(armed.violations.is_empty());
}
