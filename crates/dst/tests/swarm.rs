//! The honest swarm: a contiguous block of seeds through the full oracle
//! stack must produce zero violations, replay bit-identically, and cover
//! the scenario space it claims to cover.

use planar_dst::{run_one, run_swarm, Scenario, SwarmOptions};

const COUNT: usize = 30;

fn opts() -> SwarmOptions {
    SwarmOptions {
        base_seed: 0,
        count: COUNT,
        ..SwarmOptions::default()
    }
}

/// The headline robustness claim: every scenario in the block passes
/// every oracle — trace audit, terminal lattice, centralized
/// re-validation, certification, and all three shadow bit-identity
/// checks.
#[test]
fn honest_swarm_has_zero_violations() {
    let report = run_swarm(&opts(), |_| {});
    for run in &report.runs {
        assert!(
            run.report.violations.is_empty(),
            "seed {}: {:?}",
            run.seed,
            run.report.violations
        );
        assert!(run.minimized.is_none());
    }
    assert_eq!(report.violating(), 0);
    assert_eq!(report.violating_seeds(), Vec::<u64>::new());
}

/// The swarm summary and every per-run artifact replay byte-identically —
/// the canonical-JSON determinism contract behind `harness dst --seed N`.
#[test]
fn swarm_replays_bit_identically() {
    let a = run_swarm(&opts(), |_| {});
    let b = run_swarm(&opts(), |_| {});
    assert_eq!(a.to_json(), b.to_json());
    for (ra, rb) in a.runs.iter().zip(&b.runs) {
        assert_eq!(
            planar_dst::run_artifact(ra),
            planar_dst::run_artifact(rb),
            "seed {} artifact drifted",
            ra.seed
        );
    }
    // Single-seed replay reproduces the swarm row exactly.
    let solo = run_one(a.runs[7].seed, 0, a.options.minimize_budget);
    assert_eq!(
        planar_dst::run_artifact(&solo),
        planar_dst::run_artifact(&a.runs[7])
    );
}

/// The seed block actually exercises the dimensions the engine claims:
/// both kernels, both schedulers, faulty and fault-free scenarios,
/// certification on and off, and several graph families.
#[test]
fn swarm_block_covers_the_scenario_space() {
    let scenarios: Vec<Scenario> = (0..COUNT as u64).map(Scenario::generate).collect();
    assert!(scenarios.iter().any(|s| s.faulty()));
    assert!(scenarios.iter().any(|s| !s.faulty()));
    assert!(scenarios.iter().any(|s| s.certify));
    assert!(scenarios.iter().any(|s| s.reliability.is_some()));
    let families: std::collections::HashSet<_> = scenarios.iter().map(|s| s.family).collect();
    assert!(
        families.len() >= 5,
        "only {} families in the block",
        families.len()
    );
}
