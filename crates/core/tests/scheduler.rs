//! Scheduler conformance: [`Scheduler::LevelSync`] (batched, level-
//! synchronous) must be observationally identical to
//! [`Scheduler::Sequential`] (the original one-run-per-subproblem
//! recursion, kept as the oracle) — bit-identical rotation, metrics,
//! statistics, and certification verdicts, on both kernels, fault-free
//! and under chaos with reliable delivery, with the trace auditor armed
//! so any accounting drift or cross-instance message fails the run.

use congest_sim::protocols::ReliableConfig;
use congest_sim::{AuditSink, FaultPlan, SimConfig, TraceHandle};
use planar_embedding::{
    embed_distributed, DegradedCause, EmbedError, EmbedderConfig, EmbedderConfig as Cfg,
    EmbeddingOutcome, Kernel, Scheduler,
};
use planar_graph::Graph;
use planar_lib::gen;

/// The full generator suite the driver's own tests embed.
fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("path", gen::path(17)),
        ("cycle", gen::cycle(16)),
        ("star", gen::star(15)),
        ("random_tree", gen::random_tree(25, 3)),
        ("grid", gen::grid(5, 5)),
        ("tri_grid", gen::triangulated_grid(4, 4)),
        ("k4_subdivided", gen::k4_subdivided(4)),
        ("theta", gen::theta(3, 5)),
        ("wheel", gen::wheel(10)),
        ("fan", gen::fan(12)),
        ("outerplanar", gen::random_outerplanar(18, 2)),
        ("maximal_planar", gen::random_maximal_planar(18, 5)),
        ("random_planar", gen::random_planar(24, 40, 9)),
        ("wheel_chain", gen::wheel_chain(3, 5)),
    ]
}

/// Runs one scheduler with the audit sink armed; panics on any trace
/// accounting drift (which includes cross-instance sends — the kernel
/// rejects those outright and the auditor re-checks per-instance sums).
fn run_audited(
    g: &Graph,
    scheduler: Scheduler,
    kernel: Kernel,
    chaos: bool,
    label: &str,
) -> Result<EmbeddingOutcome, EmbedError> {
    run_audited_threads(g, scheduler, kernel, chaos, 1, label)
}

/// As [`run_audited`], with the kernel's worker-thread count pinned
/// (`SimConfig::threads`; the reference kernel ignores it).
fn run_audited_threads(
    g: &Graph,
    scheduler: Scheduler,
    kernel: Kernel,
    chaos: bool,
    threads: usize,
    label: &str,
) -> Result<EmbeddingOutcome, EmbedError> {
    let audit = AuditSink::new();
    let cfg = Cfg {
        sim: SimConfig {
            faults: if chaos {
                FaultPlan::uniform(23, 0.05, 0.02, 0.05, 2)
            } else {
                FaultPlan::default()
            },
            trace: TraceHandle::to(audit.clone()),
            threads: Some(threads),
            ..SimConfig::default()
        },
        reliability: chaos.then(ReliableConfig::default),
        certify: true,
        kernel,
        scheduler,
        ..Cfg::default()
    };
    let out = embed_distributed(g, &cfg);
    let report = audit.report();
    assert!(
        report.mismatches.is_empty(),
        "{label}: trace audit drift under {scheduler:?}/{kernel:?}: {:?}",
        report.mismatches
    );
    out
}

/// Asserts the two outcomes agree. `Ok` runs must be bit-identical;
/// `Degraded` runs must agree on the variant, survivor count, and
/// verification verdict (the message-level fault trace differs once the
/// schedulers interleave instances differently after a mid-phase abort).
fn assert_conformant(
    label: &str,
    seq: Result<EmbeddingOutcome, EmbedError>,
    lvl: Result<EmbeddingOutcome, EmbedError>,
) {
    match (seq, lvl) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.rotation, b.rotation, "{label}: rotations differ");
            assert_eq!(a.metrics, b.metrics, "{label}: metrics differ");
            assert_eq!(a.stats, b.stats, "{label}: stats differ");
            assert_eq!(
                a.certification, b.certification,
                "{label}: certification differs"
            );
            // The acceptance criterion spelled out: the level-parallel
            // measured round count equals the join_parallel-composed value
            // the sequential oracle reports.
            assert_eq!(
                b.metrics.rounds, a.metrics.rounds,
                "{label}: level-sync rounds must equal the composed value"
            );
        }
        (
            Err(EmbedError::Degraded {
                surviving_nodes: sa,
                verified: va,
                cause: ca,
                ..
            }),
            Err(EmbedError::Degraded {
                surviving_nodes: sb,
                verified: vb,
                cause: cb,
                ..
            }),
        ) => {
            assert_eq!(sa, sb, "{label}: surviving_nodes differ");
            assert_eq!(va, vb, "{label}: verified differs");
            assert_eq!(
                std::mem::discriminant(&ca),
                std::mem::discriminant(&cb),
                "{label}: degraded causes differ: {ca:?} vs {cb:?}"
            );
            if let (
                DegradedCause::PhaseIncomplete { phase: pa },
                DegradedCause::PhaseIncomplete { phase: pb },
            ) = (&ca, &cb)
            {
                assert_eq!(pa, pb, "{label}: failing phase differs");
            }
        }
        (a, b) => panic!("{label}: outcomes diverged: {a:?} vs {b:?}"),
    }
}

#[test]
fn level_sync_matches_sequential_fault_free() {
    for kernel in [Kernel::Fast, Kernel::Reference] {
        for (name, g) in families() {
            let label = format!("{name}/{kernel:?}/fault-free");
            let seq = run_audited(&g, Scheduler::Sequential, kernel, false, &label);
            let lvl = run_audited(&g, Scheduler::LevelSync, kernel, false, &label);
            assert!(
                seq.is_ok(),
                "{label}: fault-free oracle must succeed: {seq:?}"
            );
            assert_conformant(&label, seq, lvl);
        }
    }
}

#[test]
fn level_sync_matches_sequential_under_chaos() {
    for kernel in [Kernel::Fast, Kernel::Reference] {
        for (name, g) in families() {
            let label = format!("{name}/{kernel:?}/chaos");
            let seq = run_audited(&g, Scheduler::Sequential, kernel, true, &label);
            let lvl = run_audited(&g, Scheduler::LevelSync, kernel, true, &label);
            assert_conformant(&label, seq, lvl);
        }
    }
}

#[test]
fn kernels_agree_per_scheduler() {
    // Orthogonal axis: for a fixed scheduler, the reference kernel is
    // observationally identical to the fast kernel.
    for scheduler in [Scheduler::Sequential, Scheduler::LevelSync] {
        for (name, g) in [("grid", gen::grid(5, 5)), ("wheel", gen::wheel(10))] {
            let label = format!("{name}/{scheduler:?}/kernel-agreement");
            let fast = run_audited(&g, scheduler, Kernel::Fast, false, &label);
            let refr = run_audited(&g, scheduler, Kernel::Reference, false, &label);
            assert_conformant(&label, fast, refr);
        }
    }
}

/// Orthogonal axis: the kernel's parallel round execution
/// (`SimConfig::threads`) must be invisible to the full pipeline —
/// rotation, metrics, statistics, and certification verdicts are
/// bit-identical whether the level-sync batches step their nodes on one
/// worker thread or several, fault-free and under chaos.
#[test]
fn level_sync_is_thread_count_invariant() {
    for (name, g) in [
        ("grid", gen::grid(5, 5)),
        ("tri_grid", gen::triangulated_grid(4, 4)),
        ("random_planar", gen::random_planar(24, 40, 9)),
    ] {
        for chaos in [false, true] {
            for threads in [2, 4] {
                let label = format!("{name}/chaos={chaos}/threads={threads}");
                let one =
                    run_audited_threads(&g, Scheduler::LevelSync, Kernel::Fast, chaos, 1, &label);
                let par = run_audited_threads(
                    &g,
                    Scheduler::LevelSync,
                    Kernel::Fast,
                    chaos,
                    threads,
                    &label,
                );
                assert_conformant(&label, one, par);
            }
        }
    }
}

#[test]
fn default_config_uses_level_sync() {
    assert_eq!(EmbedderConfig::default().scheduler, Scheduler::LevelSync);
    assert_eq!(EmbedderConfig::default().kernel, Kernel::Fast);
}
