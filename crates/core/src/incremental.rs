//! Incremental re-embedding: resident embeddings that absorb edge deltas
//! by re-running only the affected part of the recursion.
//!
//! A [`ResidentEmbedding`] keeps everything one level-synchronous run
//! produced: the global BFS tree, the *retained* recursion arena (every
//! subproblem's partition, solved part, metrics, and merge statistics —
//! see [`RecNode`]), the rotation system, and the certification
//! artifacts, plus a warm [`KernelCache`] so successive kernel runs reuse
//! their mailbox arenas. [`ResidentEmbedding::reembed`] then brings the
//! resident state to a mutated graph at a fraction of a full run's cost:
//!
//! 1. **Setup re-runs** (cheap, `O(D)` rounds) and the new BFS tree is
//!    compared to the resident one. Partition content is a pure function
//!    of the tree — centroid walks are built from tree data and a
//!    subproblem's members are `tree.subtree_members(root)` — so with the
//!    tree unchanged *every* retained partition is still exact and no
//!    partition protocol re-runs at all.
//! 2. **Dirty-merge analysis**: an edge delta `{u, v}` can only be seen
//!    by merges whose subproblem contains `u` or `v` (half-embedded and
//!    attachment edges need an endpoint inside the subproblem's member
//!    set). The subproblems containing a vertex form one root-to-leaf
//!    chain of the recursion, so a delta dirties at most two arena nodes
//!    per level — `O(log n)` of the arena's `O(n)` merges. Only those
//!    merges re-run; every clean node's retained part is reused verbatim.
//! 3. **Epilogue**: the centralized fidelity stand-in
//!    ([`planar_lib::embed`]) produces the rotation exactly as the full
//!    driver does (see the fidelity note in `driver.rs`), and
//!    certification splices the resident certificate set against a
//!    scratch build ([`planar_cert::splice_certificates`]) before one
//!    distributed re-verification — so only changed certificates need
//!    re-distribution.
//!
//! **Bit-identity contract**: the rotation system, the certification
//! verdict, and the planarity outcome of `reembed` are bit-identical to a
//! full re-embedding of the mutated graph ([`embed_distributed`] with the
//! same configuration). The rotation comes from the same centralized
//! epilogue on the same graph; the planarity outcome agrees because the
//! density guard runs in both paths and the epilogue decides the rest;
//! the certification verdict agrees because a spliced certificate set is
//! element-wise equal to the scratch set. What incremental runs *save* is
//! kernel simulation of clean recursion subtrees — metrics and round
//! tallies are intentionally not part of the contract.
//!
//! Deltas the analysis cannot scope — a changed BFS tree (the delta
//! touched tree edges or BFS distances) or a changed vertex set (node
//! arrivals/departures renumber ids) — fall back to a full retained
//! re-run, recorded as such in the [`ReembedReport`]. A rejected delta
//! (the mutated graph is non-planar) leaves the resident state *and* the
//! resident graph untouched: all recomputation is staged in an overlay
//! and committed only after the epilogue accepts.
//!
//! [`embed_distributed`]: crate::embed_distributed

use congest_sim::{KernelCache, Metrics, Phase};
use planar_cert::{build_certificates, splice_certificates, SpliceStats};
use planar_graph::{Graph, RotationSystem, VertexId};

use crate::certify::{certify_embedding, certify_with_certificates, Certification};
use crate::driver::{run_recursion_retained, RecNode};
use crate::error::EmbedError;
use crate::exec::ExecutionContext;
use crate::parts::PartState;
use crate::setup::run_setup_ctx;
use crate::stats::MergeStats;
use crate::tree::GlobalTree;
use crate::Scheduler;
use crate::{EmbedderConfig, Kernel};

/// Why a re-embedding took the full (non-incremental) path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FullCause {
    /// The first build of the resident embedding — nothing to reuse yet.
    InitialBuild,
    /// The delta changed the vertex set (node arrival/departure), which
    /// renumbers ids; the retained arena is not addressable on the new
    /// graph.
    VertexSetChanged,
    /// The delta changed the global BFS tree, invalidating every retained
    /// partition (partition content is a pure function of the tree).
    TreeChanged,
}

/// Which path one [`ResidentEmbedding::reembed`] call took, with its
/// reuse accounting.
#[derive(Clone, Debug, PartialEq)]
pub enum ReembedPath {
    /// A full retained re-run (setup, all partitions, all merges).
    Full {
        /// Why the incremental analysis did not apply.
        cause: FullCause,
    },
    /// The incremental path: setup re-ran, every retained partition was
    /// reused, and only the dirty merges re-ran.
    Incremental {
        /// Merges re-run because their subproblem contains a delta
        /// endpoint (`O(log n)` per delta edge).
        recomputed_merges: usize,
        /// Internal nodes whose retained merge result was reused.
        reused_merges: usize,
        /// Retained partitions reused (every internal node — the tree was
        /// unchanged, so partition content was still exact).
        reused_partitions: usize,
        /// Certificate splice accounting, when certification is on.
        splice: Option<SpliceStats>,
    },
}

/// The outcome report of one build or re-embed.
#[derive(Clone, Debug, PartialEq)]
pub struct ReembedReport {
    /// Which path ran and what it reused.
    pub path: ReembedPath,
    /// Sequential kernel rounds the call consumed (setup + re-run merges
    /// + certification for incremental; the full tally otherwise).
    pub rounds: usize,
}

impl ReembedReport {
    /// `true` if this report came from the incremental path.
    pub fn is_incremental(&self) -> bool {
        matches!(self.path, ReembedPath::Incremental { .. })
    }
}

/// Staged results of the incremental analysis, committed only after the
/// epilogue accepts the mutated graph.
struct Overlay {
    /// `(arena index, merged part, subtree metrics, merge stats)` per
    /// re-run merge.
    merges: Vec<(usize, PartState, Metrics, MergeStats)>,
    rotation: RotationSystem,
    certification: Option<Certification>,
    splice: Option<SpliceStats>,
    recomputed: usize,
}

/// What the incremental attempt decided.
enum Attempt {
    /// Incremental analysis succeeded; commit the overlay.
    Done(Box<Overlay>),
    /// The BFS tree changed; the caller must take the full path.
    TreeChanged,
}

/// A long-lived embedding of one graph, retaining every artifact needed
/// to absorb edge deltas incrementally. See the module docs for the
/// reuse structure and the bit-identity contract.
pub struct ResidentEmbedding {
    graph: Graph,
    cfg: EmbedderConfig,
    tree: GlobalTree,
    nodes: Vec<RecNode>,
    rotation: RotationSystem,
    certification: Option<Certification>,
    cache: Option<KernelCache>,
}

impl std::fmt::Debug for ResidentEmbedding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidentEmbedding")
            .field("vertices", &self.graph.vertex_count())
            .field("edges", &self.graph.edge_count())
            .field("arena_nodes", &self.nodes.len())
            .field("certified", &self.certification.is_some())
            .finish()
    }
}

impl ResidentEmbedding {
    /// Builds the resident embedding of `graph` — a full level-synchronous
    /// run with the recursion arena retained.
    ///
    /// The configuration is normalized to the resident contract: the
    /// scheduler is forced to [`Scheduler::LevelSync`] (the arena *is*
    /// that recursion) and fault plans are rejected — a resident
    /// embedding models a long-lived service tenant, not a chaos run.
    ///
    /// # Errors
    ///
    /// As [`embed_distributed`](crate::embed_distributed) on `graph`,
    /// plus [`EmbedError::Internal`] for a faulted configuration.
    pub fn build(graph: Graph, cfg: &EmbedderConfig) -> Result<(Self, ReembedReport), EmbedError> {
        if !cfg.sim.faults.is_empty() {
            return Err(EmbedError::Internal(
                "resident embeddings require a fault-free configuration".into(),
            ));
        }
        let mut cfg = cfg.clone();
        cfg.scheduler = Scheduler::LevelSync;
        let (tree, nodes, rotation, certification, rounds, cache) =
            full_pass(&graph, &cfg, KernelCache::new()).map_err(|(e, _)| e)?;
        let resident = ResidentEmbedding {
            graph,
            cfg,
            tree,
            nodes,
            rotation,
            certification,
            cache: Some(cache),
        };
        let report = ReembedReport {
            path: ReembedPath::Full {
                cause: FullCause::InitialBuild,
            },
            rounds,
        };
        Ok((resident, report))
    }

    /// The resident graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The resident rotation system.
    pub fn rotation(&self) -> &RotationSystem {
        &self.rotation
    }

    /// The resident certification artifacts (present iff the
    /// configuration certifies).
    pub fn certification(&self) -> Option<&Certification> {
        self.certification.as_ref()
    }

    /// `true` if `{u, v}` is an edge of the resident BFS tree. Deleting
    /// a *non*-tree edge preserves every BFS distance and parent choice,
    /// so such deltas are guaranteed to take the incremental path —
    /// callers (benchmarks, tests) use this to construct
    /// incremental-friendly workloads without re-deriving the driver's
    /// deterministic tree.
    pub fn is_tree_edge(&self, u: VertexId, v: VertexId) -> bool {
        let tree_parent = |x: VertexId| self.tree.parent.get(x.index()).copied().flatten();
        tree_parent(u) == Some(v) || tree_parent(v) == Some(u)
    }

    /// The configuration the resident embedding runs under.
    pub fn config(&self) -> &EmbedderConfig {
        &self.cfg
    }

    /// The kernel executing resident runs.
    pub fn kernel(&self) -> Kernel {
        self.cfg.kernel
    }

    /// Heap bytes held warm by the resident kernel cache between deltas
    /// (zero while a re-embed is in flight and the cache is loaned to the
    /// execution context). The service layer reports this per tenant.
    pub fn kernel_memory_bytes(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.memory_bytes())
    }

    /// Re-embeds onto `new_graph` (the resident graph after one or more
    /// deltas), incrementally when the delta analysis applies and by a
    /// full retained re-run otherwise (recorded in the report).
    ///
    /// On error — most importantly [`EmbedError::NonPlanar`] when the
    /// delta broke planarity — the resident state is unchanged: the old
    /// graph, rotation, arena, and certificates all stay resident, so the
    /// caller can reject the delta and continue serving.
    ///
    /// # Errors
    ///
    /// As [`embed_distributed`](crate::embed_distributed) on `new_graph`.
    pub fn reembed(&mut self, new_graph: Graph) -> Result<ReembedReport, EmbedError> {
        let cache = self.cache.take().unwrap_or_default();
        if new_graph.vertex_count() != self.graph.vertex_count() {
            return self.reembed_full(new_graph, cache, FullCause::VertexSetChanged);
        }

        let (attempt, rounds, cache) = {
            let mut ctx = ExecutionContext::with_kernel_cache(&new_graph, &self.cfg, cache);
            let attempt = self.try_incremental(&new_graph, &mut ctx);
            let rounds = ctx.rounds_used();
            (attempt, rounds, ctx.into_kernel_cache())
        };
        match attempt {
            Ok(Attempt::Done(overlay)) => {
                let Overlay {
                    merges,
                    rotation,
                    certification,
                    splice,
                    recomputed,
                } = *overlay;
                let internal = self.nodes.iter().filter(|n| n.partition.is_some()).count();
                for (ni, part, metrics, stats) in merges {
                    self.nodes[ni].part = Some(part);
                    self.nodes[ni].metrics = metrics;
                    self.nodes[ni].merge_stats = Some(stats);
                }
                self.graph = new_graph;
                self.rotation = rotation;
                self.certification = certification;
                self.cache = Some(cache);
                Ok(ReembedReport {
                    path: ReembedPath::Incremental {
                        recomputed_merges: recomputed,
                        reused_merges: internal - recomputed,
                        reused_partitions: internal,
                        splice,
                    },
                    rounds,
                })
            }
            Ok(Attempt::TreeChanged) => self.reembed_full(new_graph, cache, FullCause::TreeChanged),
            Err(e) => {
                self.cache = Some(cache);
                Err(e)
            }
        }
    }

    /// The full fallback: a retained re-run on `new_graph`, committing
    /// only on success (a rejected delta leaves the resident state
    /// untouched, exactly like the incremental path).
    fn reembed_full(
        &mut self,
        new_graph: Graph,
        cache: KernelCache,
        cause: FullCause,
    ) -> Result<ReembedReport, EmbedError> {
        match full_pass(&new_graph, &self.cfg, cache) {
            Ok((tree, nodes, rotation, certification, rounds, cache)) => {
                self.graph = new_graph;
                self.tree = tree;
                self.nodes = nodes;
                self.rotation = rotation;
                self.certification = certification;
                self.cache = Some(cache);
                Ok(ReembedReport {
                    path: ReembedPath::Full { cause },
                    rounds,
                })
            }
            Err((e, cache)) => {
                self.cache = Some(cache);
                Err(e)
            }
        }
    }

    /// The incremental analysis: setup, tree comparison, dirty-merge
    /// re-runs, epilogue — all staged into an [`Overlay`], never touching
    /// the resident state.
    fn try_incremental(
        &self,
        new_graph: &Graph,
        ctx: &mut ExecutionContext<'_>,
    ) -> Result<Attempt, EmbedError> {
        let n = new_graph.vertex_count();
        ctx.enter(Phase::Setup);
        let (setup, setup_metrics) = run_setup_ctx(ctx)?;
        ctx.charge(&setup_metrics);
        // The same density guard the full driver runs before recursing.
        if n >= 3 && new_graph.edge_count() > 3 * n - 6 {
            return Err(EmbedError::NonPlanar);
        }
        if !same_tree(&self.tree, &setup.tree) {
            return Ok(Attempt::TreeChanged);
        }

        // Vertices incident to any changed edge; the merges that can see
        // them are exactly the arena nodes whose subtree contains one.
        let dirty_vertices = edge_delta_endpoints(&self.graph, new_graph);
        let (tin, tout) = preorder_spans(&self.tree);
        let in_subtree = |root: VertexId, v: VertexId| {
            tin[root.index()] <= tin[v.index()] && tin[v.index()] < tout[root.index()]
        };

        let mut merges: Vec<(usize, PartState, Metrics, MergeStats)> = Vec::new();
        let part_of =
            |nodes: &[RecNode], merges: &[(usize, PartState, Metrics, MergeStats)], ci: usize| {
                merges
                    .iter()
                    .find(|(mi, ..)| *mi == ci)
                    .map(|(_, p, m, _)| (p.clone(), *m))
                    .unwrap_or_else(|| {
                        (
                            nodes[ci].part.clone().expect("child solved"),
                            nodes[ci].metrics,
                        )
                    })
            };
        // Bottom-up over the retained arena (children have higher indices
        // than their parents), re-merging only the dirty internal nodes.
        for ni in (0..self.nodes.len()).rev() {
            let Some(partition) = self.nodes[ni].partition.as_ref() else {
                continue; // leaf: its part is graph-independent
            };
            let root = self.nodes[ni].root;
            let dirty = dirty_vertices.iter().any(|&v| in_subtree(root, v))
                || merges
                    .iter()
                    .any(|(mi, ..)| self.nodes[ni].children.contains(mi));
            if !dirty {
                continue;
            }
            let mut children_metrics = Metrics::new();
            let mut hanging = Vec::with_capacity(self.nodes[ni].children.len());
            for &ci in &self.nodes[ni].children {
                let (part, m) = part_of(&self.nodes, &merges, ci);
                children_metrics.join_parallel(m);
                hanging.push(part);
            }
            ctx.enter(Phase::Merge);
            let merged = crate::merge::merge_parts_ctx(
                ctx,
                partition.p0.clone(),
                hanging,
                self.cfg.check_invariants,
            )?;
            ctx.charge(&merged.metrics);
            let mut total = partition.metrics;
            total.add(children_metrics);
            total.add(merged.metrics);
            merges.push((ni, merged.part, total, merged.stats));
        }
        let recomputed = merges.len();

        let (root_part, _) = part_of(&self.nodes, &merges, 0);
        if root_part.len() != n {
            return Err(EmbedError::Internal(format!(
                "incremental recursion merged only {} of {n} vertices",
                root_part.len()
            )));
        }

        // Centralized fidelity epilogue — the same call, on the same
        // graph, as the full driver's (`driver.rs` fidelity note), so the
        // resulting rotation is bit-identical by construction.
        let rotation = planar_lib::embed(new_graph)?;
        debug_assert!(rotation.is_planar_embedding());

        let (certification, splice) = if self.cfg.certify {
            ctx.enter(Phase::Cert);
            let scratch = build_certificates(new_graph, &rotation)
                .map_err(|e| EmbedError::Internal(format!("certification: {e}")))?;
            let old = self
                .certification
                .as_ref()
                .map(|c| c.certificates.as_slice())
                .unwrap_or(&[]);
            let (spliced, stats) = splice_certificates(old, scratch);
            let cert = certify_with_certificates(new_graph, &rotation, spliced, &self.cfg)?;
            ctx.charge(&cert.report.metrics);
            if !cert.accepted() {
                return Err(EmbedError::Internal(format!(
                    "distributed certification rejected the re-embedding: rejections {:?}, incomplete {:?}",
                    cert.report.rejections, cert.report.incomplete
                )));
            }
            (Some(cert), Some(stats))
        } else {
            (None, None)
        };

        Ok(Attempt::Done(Box::new(Overlay {
            merges,
            rotation,
            certification,
            splice,
            recomputed,
        })))
    }
}

/// One full retained run: recursion with the arena kept, centralized
/// epilogue, optional certification. Returns the cache even on error so
/// the caller's warm buffers survive a rejected delta.
type FullPassOk = (
    GlobalTree,
    Vec<RecNode>,
    RotationSystem,
    Option<Certification>,
    usize,
    KernelCache,
);

fn full_pass(
    graph: &Graph,
    cfg: &EmbedderConfig,
    cache: KernelCache,
) -> Result<FullPassOk, (EmbedError, KernelCache)> {
    let mut ctx = ExecutionContext::with_kernel_cache(graph, cfg, cache);
    let result = run_full(graph, cfg, &mut ctx);
    let rounds = ctx.rounds_used();
    let cache = ctx.into_kernel_cache();
    match result {
        Ok((tree, nodes, rotation, certification)) => {
            Ok((tree, nodes, rotation, certification, rounds, cache))
        }
        Err(e) => Err((e, cache)),
    }
}

#[allow(clippy::type_complexity)]
fn run_full(
    graph: &Graph,
    cfg: &EmbedderConfig,
    ctx: &mut ExecutionContext<'_>,
) -> Result<
    (
        GlobalTree,
        Vec<RecNode>,
        RotationSystem,
        Option<Certification>,
    ),
    EmbedError,
> {
    let (tree, nodes, _metrics, _stats) = run_recursion_retained(graph, cfg, ctx)?;
    let rotation = planar_lib::embed(graph)?;
    debug_assert!(rotation.is_planar_embedding());
    let certification = if cfg.certify {
        ctx.enter(Phase::Cert);
        let cert = certify_embedding(graph, &rotation, cfg)?;
        ctx.charge(&cert.report.metrics);
        if !cert.accepted() {
            return Err(EmbedError::Internal(format!(
                "distributed certification rejected the embedding: rejections {:?}, incomplete {:?}",
                cert.report.rejections, cert.report.incomplete
            )));
        }
        Some(cert)
    } else {
        None
    };
    Ok((tree, nodes, rotation, certification))
}

/// Field-wise equality of two global BFS trees. `GlobalTree` has no
/// `PartialEq` (it is a derived artifact, not a value type), but the
/// incremental analysis needs exactly this: identical trees mean every
/// retained partition is still exact.
fn same_tree(a: &GlobalTree, b: &GlobalTree) -> bool {
    a.root == b.root
        && a.parent == b.parent
        && a.children == b.children
        && a.depth == b.depth
        && a.subtree_size == b.subtree_size
}

/// Endpoints of the symmetric difference of the two graphs' edge sets —
/// the vertices whose incident structure a delta changed. Both edge
/// iterators yield canonical sorted order, so a single merge walk
/// suffices.
fn edge_delta_endpoints(old: &Graph, new: &Graph) -> Vec<VertexId> {
    let mut out = Vec::new();
    let mut a = old.edges().peekable();
    let mut b = new.edges().peekable();
    let mut push = |e: planar_graph::EdgeId| {
        out.push(e.lo());
        out.push(e.hi());
    };
    loop {
        match (a.peek(), b.peek()) {
            (Some(&x), Some(&y)) if x == y => {
                a.next();
                b.next();
            }
            (Some(&x), Some(&y)) if x < y => {
                push(x);
                a.next();
            }
            (Some(_), Some(&y)) => {
                push(y);
                b.next();
            }
            (Some(&x), None) => {
                push(x);
                a.next();
            }
            (None, Some(&y)) => {
                push(y);
                b.next();
            }
            (None, None) => break,
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Preorder entry/exit spans of the tree, for `O(1)` subtree-membership
/// tests (`v` is in the subtree of `r` iff `tin[r] <= tin[v] < tout[r]`).
fn preorder_spans(tree: &GlobalTree) -> (Vec<usize>, Vec<usize>) {
    let n = tree.parent.len();
    let mut tin = vec![0usize; n];
    let mut tout = vec![0usize; n];
    let mut timer = 0usize;
    let mut stack: Vec<(VertexId, bool)> = vec![(tree.root, false)];
    while let Some((v, done)) = stack.pop() {
        if done {
            tout[v.index()] = timer;
        } else {
            tin[v.index()] = timer;
            timer += 1;
            stack.push((v, true));
            for &c in tree.children[v.index()].iter().rev() {
                stack.push((c, false));
            }
        }
    }
    (tin, tout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed_distributed;
    use planar_lib::gen;

    fn cfg(certify: bool) -> EmbedderConfig {
        EmbedderConfig {
            certify,
            ..EmbedderConfig::default()
        }
    }

    /// The resident build equals a one-shot embed on the same graph.
    #[test]
    fn build_matches_embed_distributed() {
        let g = gen::grid(4, 5);
        let (resident, report) = ResidentEmbedding::build(g.clone(), &cfg(true)).unwrap();
        let full = embed_distributed(&g, &cfg(true)).unwrap();
        assert_eq!(resident.rotation(), &full.rotation);
        assert_eq!(
            resident.certification().map(|c| c.accepted()),
            full.certification.as_ref().map(|c| c.accepted())
        );
        assert!(matches!(
            report.path,
            ReembedPath::Full {
                cause: FullCause::InitialBuild
            }
        ));
    }

    /// A non-tree edge delta takes the incremental path and matches the
    /// full oracle bit for bit (rotation, certification verdict).
    #[test]
    fn incremental_edge_delta_matches_oracle() {
        let g = gen::grid(8, 8);
        let (mut resident, _) = ResidentEmbedding::build(g.clone(), &cfg(true)).unwrap();
        // Delete a non-tree edge: removing it leaves every tree path (and
        // hence every BFS distance and deterministic parent choice)
        // intact, so setup reproduces the resident tree and the delta
        // takes the incremental path.
        let mut mutated = g.clone();
        let victim = g
            .edges()
            .find(|e| {
                resident.tree.parent[e.lo().index()] != Some(e.hi())
                    && resident.tree.parent[e.hi().index()] != Some(e.lo())
            })
            .expect("a grid has non-tree edges");
        mutated.remove_edge(victim.lo(), victim.hi()).unwrap();

        let report = resident.reembed(mutated.clone()).unwrap();
        assert!(report.is_incremental(), "path: {:?}", report.path);
        if let ReembedPath::Incremental {
            recomputed_merges,
            reused_merges,
            splice,
            ..
        } = &report.path
        {
            assert!(*recomputed_merges > 0);
            assert!(
                reused_merges > recomputed_merges,
                "most merges must be reused ({reused_merges} reused, {recomputed_merges} re-run)"
            );
            assert!(splice.as_ref().unwrap().reused > 0);
        }
        let oracle = embed_distributed(&mutated, &cfg(true)).unwrap();
        assert_eq!(resident.rotation(), &oracle.rotation);
        assert_eq!(
            resident.certification().unwrap().report.accepted,
            oracle.certification.unwrap().report.accepted
        );
        assert_eq!(resident.graph(), &mutated);
    }

    /// A planarity-breaking delta is rejected with the resident state
    /// fully intact (graph, rotation, certificates).
    #[test]
    fn rejected_delta_leaves_resident_untouched() {
        let g = gen::grid(4, 4);
        let (mut resident, _) = ResidentEmbedding::build(g.clone(), &cfg(true)).unwrap();
        let before_rotation = resident.rotation().clone();
        // K5 on the first five vertices makes the graph non-planar.
        let mut mutated = g.clone();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                if !mutated.has_edge(VertexId(u), VertexId(v)) {
                    mutated.add_edge(VertexId(u), VertexId(v)).unwrap();
                }
            }
        }
        let err = resident.reembed(mutated).unwrap_err();
        assert!(matches!(err, EmbedError::NonPlanar));
        assert_eq!(resident.graph(), &g);
        assert_eq!(resident.rotation(), &before_rotation);
        // And the resident can still serve further deltas.
        let mut ok = g.clone();
        ok.add_edge(VertexId(0), VertexId(5)).unwrap_or(());
        // (edge may exist in the grid; reembed on the unchanged graph is
        // also a valid no-op delta)
        let report = resident.reembed(ok).unwrap();
        assert!(report.rounds > 0);
    }

    /// A vertex delta (changed vertex set) falls back to the full path
    /// and still matches the oracle.
    #[test]
    fn vertex_delta_falls_back_to_full() {
        let g = gen::wheel(10);
        let (mut resident, _) = ResidentEmbedding::build(g.clone(), &cfg(true)).unwrap();
        let mut mutated = g.clone();
        let v = mutated.add_vertex();
        mutated.add_edge(v, VertexId(0)).unwrap();
        let report = resident.reembed(mutated.clone()).unwrap();
        assert!(matches!(
            report.path,
            ReembedPath::Full {
                cause: FullCause::VertexSetChanged
            }
        ));
        let oracle = embed_distributed(&mutated, &cfg(true)).unwrap();
        assert_eq!(resident.rotation(), &oracle.rotation);
    }

    /// A delta that removes a BFS-tree edge changes the tree and is
    /// recorded as a tree-changed full fallback.
    #[test]
    fn tree_edge_delta_falls_back_to_full() {
        let g = gen::grid(4, 4);
        let (mut resident, _) = ResidentEmbedding::build(g.clone(), &cfg(false)).unwrap();
        let victim = g
            .edges()
            .find(|e| {
                let mut m = g.clone();
                m.remove_edge(e.lo(), e.hi()).unwrap();
                if !m.is_connected() {
                    return false;
                }
                let (probe, _) = ResidentEmbedding::build(m, &cfg(false)).unwrap();
                !same_tree(&probe.tree, &resident.tree)
            })
            .expect("some grid edge changes the BFS tree");
        let mut mutated = g.clone();
        mutated.remove_edge(victim.lo(), victim.hi()).unwrap();
        let report = resident.reembed(mutated.clone()).unwrap();
        assert!(matches!(
            report.path,
            ReembedPath::Full {
                cause: FullCause::TreeChanged
            }
        ));
        let oracle = embed_distributed(&mutated, &EmbedderConfig::default()).unwrap();
        assert_eq!(resident.rotation(), &oracle.rotation);
    }

    /// Faulted configurations are rejected up front.
    #[test]
    fn faulted_config_is_rejected() {
        let mut c = cfg(false);
        c.sim.faults = congest_sim::FaultPlan::uniform(3, 0.1, 0.0, 0.0, 1);
        assert!(matches!(
            ResidentEmbedding::build(gen::path(4), &c),
            Err(EmbedError::Internal(_))
        ));
    }
}
